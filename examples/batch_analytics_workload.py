"""Batch analytics: share work across a dashboard refresh of analytical queries.

The paper motivates MQO with systems that batch hundreds of queries to
reduce execution cost via shared computation (e.g. SharedDB).  This
example builds such a scenario end to end:

1. a synthetic star-schema catalog with table statistics,
2. a batch of reporting queries, each with a few alternative join plans
   costed by the relational cost model,
3. sharing opportunities between plans that scan or join the same tables,
4. plan selection with the quantum-annealing pipeline versus iterated
   hill climbing, reporting the realised savings.

Run with:  python examples/batch_analytics_workload.py
"""

from repro import DecomposedQuantumMQO, IteratedHillClimbing, MQOProblem, QuantumMQO
from repro.exceptions import EmbeddingNotFoundError
from repro.mqo.cost_model import CatalogStatistics, RelationalCostModel, TableStats
from repro.utils.rng import ensure_rng


def build_catalog() -> CatalogStatistics:
    """A small star schema: one fact table plus dimension tables."""
    catalog = CatalogStatistics()
    catalog.add_table(TableStats("sales", num_rows=4_000_000, row_bytes=120))
    catalog.add_table(TableStats("customers", num_rows=200_000, row_bytes=200))
    catalog.add_table(TableStats("products", num_rows=50_000, row_bytes=150))
    catalog.add_table(TableStats("stores", num_rows=2_000, row_bytes=100))
    catalog.add_table(TableStats("dates", num_rows=3_650, row_bytes=40))
    for dimension in ("customers", "products", "stores", "dates"):
        catalog.set_join_selectivity("sales", dimension, 1.0 / catalog.tables[dimension].num_rows)
    return catalog


def build_workload(num_reports: int = 18, plans_per_report: int = 3, seed: int = 5):
    """A dashboard refresh: every report joins the fact table with dimensions."""
    rng = ensure_rng(seed)
    catalog = build_catalog()
    model = RelationalCostModel(catalog)
    dimensions = ["customers", "products", "stores", "dates"]

    plan_costs = []
    plan_tables = []  # tables touched per plan, used to find sharing pairs
    for _ in range(num_reports):
        chosen = list(rng.choice(dimensions, size=2, replace=False))
        tables = ["sales"] + chosen
        costs = model.alternative_plan_costs(tables, plans_per_report, seed=rng)
        plan_costs.append([cost / 1000.0 for cost in costs])  # scale to friendly units
        plan_tables.append([frozenset(tables)] * plans_per_report)

    # Two plans (of different reports) that touch the same fact/dimension
    # combination can share the scan + join of those tables.
    savings = {}
    flat_tables = [tables for per_report in plan_tables for tables in per_report]
    for p1 in range(len(flat_tables)):
        for p2 in range(p1 + 1, len(flat_tables)):
            if p1 // plans_per_report == p2 // plans_per_report:
                continue
            shared = flat_tables[p1] & flat_tables[p2]
            if len(shared) >= 3 and rng.random() < 0.4:
                # Sharing the fact-table scan and one join saves a sizeable
                # fraction of the cheaper plan's work.
                flat_costs = [cost for per_report in plan_costs for cost in per_report]
                savings[(p1, p2)] = round(
                    0.3 * min(flat_costs[p1], flat_costs[p2]), 1
                )
    return MQOProblem(plan_costs, savings, name="dashboard-refresh")


def main() -> None:
    problem = build_workload()
    print(problem.describe())
    no_sharing_cost = sum(
        min(problem.plan_cost(p) for p in query.plan_indices) for query in problem.queries
    )
    print(f"\nCheapest plans without any sharing would cost {no_sharing_cost:.1f}")

    # The sharing structure of this workload does not map onto the hardware
    # as a single QUBO (too many plan variables for a fully connected TRIAD),
    # so we fall back to the decomposition solver: queries are clustered by
    # their sharing structure and one QUBO is annealed per cluster — the
    # "series of QUBO problems" route from the paper's outlook.
    quantum = QuantumMQO(seed=3)
    try:
        qa_result = quantum.solve(problem, num_reads=300, num_gauges=10)
        qa_cost = qa_result.best_solution.cost
        qa_time = qa_result.device_time_ms
        print(f"\nQA (single QUBO) cost: {qa_cost:.1f} "
              f"({qa_time:.0f} ms device time, "
              f"{qa_result.qubits_per_variable:.2f} qubits/variable)")
    except EmbeddingNotFoundError:
        decomposer = DecomposedQuantumMQO(pipeline=quantum, max_queries_per_cluster=6)
        decomposed = decomposer.solve(problem, num_reads=300, num_gauges=10)
        qa_cost = decomposed.solution.cost
        qa_time = decomposed.total_device_time_ms
        print(f"\nSingle-QUBO embedding does not fit; solved as a series of "
              f"{decomposed.num_clusters} cluster QUBOs instead.")
        print(f"QA (decomposed) cost: {qa_cost:.1f} "
              f"({qa_time:.0f} ms device time, "
              f"max {decomposed.max_qubits_used} qubits per cluster)")

    climb = IteratedHillClimbing().solve(problem, time_budget_ms=2_000, seed=3)
    print(f"CLIMB selection cost: {climb.best_cost:.1f} "
          f"({climb.total_time_ms:.0f} ms wall-clock)")

    best = min(qa_cost, climb.best_cost)
    print(f"\nWork sharing saves {no_sharing_cost - best:.1f} cost units "
          f"({100 * (no_sharing_cost - best) / no_sharing_cost:.1f} % of the no-sharing plan).")


if __name__ == "__main__":
    main()
