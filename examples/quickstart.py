"""Quickstart: solve a multiple-query-optimization problem on the simulated annealer.

This walks through the paper's worked example (Section 4, Example 1) and a
small generated workload:

1. describe an MQO problem (queries, alternative plans, sharing savings),
2. map it to a QUBO energy formula and inspect the penalty weights,
3. solve it end-to-end with the QuantumMQO pipeline (simulated D-Wave 2X),
4. cross-check against the exact integer-programming baseline.

Run with:  python examples/quickstart.py
"""

from repro import (
    IntegerProgrammingMQOSolver,
    MQOProblem,
    QuantumMQO,
    generate_paper_testcase,
    map_mqo_to_qubo,
)


def solve_paper_example() -> None:
    """The 2-query, 4-plan example from Section 4 of the paper."""
    print("=" * 70)
    print("Paper Example 1: two queries, four plans, one sharing opportunity")
    print("=" * 70)
    problem = MQOProblem(
        plans_per_query=[[2.0, 4.0], [3.0, 1.0]],  # costs of p1..p4
        savings={(1, 2): 5.0},  # p2 and p3 share an intermediate result
        name="paper-example-1",
    )
    print(problem.describe())

    mapping = map_mqo_to_qubo(problem)
    print(f"\nPenalty weights: w_L = {mapping.weight_at_least_one:.2f}, "
          f"w_M = {mapping.weight_at_most_one:.2f}")
    print(f"Logical QUBO: {mapping.qubo.num_variables} variables, "
          f"{mapping.qubo.num_interactions} interactions")

    result = QuantumMQO(seed=0).solve(problem, num_reads=100, num_gauges=10)
    selected = sorted(result.best_solution.selected_plans)
    print(f"\nQuantum annealer selected plans {selected} "
          f"with cost {result.best_solution.cost:.1f}")
    print(f"(the paper's optimum selects plans [1, 2] with cost 2.0)")
    print(f"Device time: {result.device_time_ms:.2f} ms for "
          f"{result.sample_set.num_reads} reads; "
          f"qubits per variable: {result.qubits_per_variable:.2f}")


def solve_generated_workload() -> None:
    """A generated 15-query batch in the style of the paper's evaluation."""
    print()
    print("=" * 70)
    print("Generated workload: 15 queries, 2 plans each")
    print("=" * 70)
    problem = generate_paper_testcase(num_queries=15, plans_per_query=2, seed=7)
    print(problem.describe())

    quantum = QuantumMQO(seed=1)
    result = quantum.solve(problem, num_reads=200, num_gauges=10)
    print(f"\nQA best cost:      {result.best_solution.cost:.1f} "
          f"(device time {result.device_time_ms:.1f} ms)")

    ilp = IntegerProgrammingMQOSolver().solve(problem, time_budget_ms=10_000)
    print(f"LIN-MQO best cost: {ilp.best_cost:.1f} "
          f"(optimal proven: {ilp.proved_optimal}, "
          f"wall-clock {ilp.total_time_ms:.1f} ms)")
    gap = result.best_solution.cost - ilp.best_cost
    print(f"QA optimality gap: {gap:.1f} cost units")


if __name__ == "__main__":
    solve_paper_example()
    solve_generated_workload()
