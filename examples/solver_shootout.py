"""Solver shoot-out: quality versus time for QA and every classical baseline.

A miniature version of the paper's Figures 4/5: one embedded workload is
solved by the quantum-annealing pipeline and by LIN-MQO, LIN-QUB, CLIMB,
GA(50) and GA(200); the best-so-far cost of every approach is reported at
logarithmically spaced time checkpoints.

Run with:  python examples/solver_shootout.py
"""

from repro import (
    DWaveSamplerSimulator,
    GeneticAlgorithmSolver,
    IntegerProgrammingMQOSolver,
    IntegerProgrammingQUBOSolver,
    IteratedHillClimbing,
)
from repro.chimera.defects import DefectModel
from repro.chimera.topology import ChimeraGraph
from repro.experiments.metrics import reference_cost, scaled_cost
from repro.experiments.runner import QuantumAnnealingFrontend
from repro.experiments.workloads import generate_embedded_testcase
from repro.utils.tables import format_table

CHECKPOINTS_MS = (1.0, 10.0, 100.0, 1000.0, 3000.0)
CLASSICAL_BUDGET_MS = 3000.0


def main() -> None:
    # Device: the paper's 12x12 Chimera with a realistic broken-qubit yield.
    topology = DefectModel().apply(ChimeraGraph(12, 12), seed=2)
    device = DWaveSamplerSimulator(topology=topology, seed=2)

    # Workload: 60 queries with 3 plans each, co-designed with its embedding.
    testcase = generate_embedded_testcase(60, 3, topology, seed=4)
    print(testcase.problem.describe())
    print(f"Embedding: {testcase.embedding.num_qubits} qubits, "
          f"{testcase.qubits_per_variable:.2f} qubits per plan variable\n")

    trajectories = {}
    qa_trajectory, _result = QuantumAnnealingFrontend(device).solve_testcase(
        testcase, num_reads=500, num_gauges=10, seed=1
    )
    trajectories["QA"] = qa_trajectory

    classical_solvers = [
        IntegerProgrammingMQOSolver(),
        IntegerProgrammingQUBOSolver(),
        IteratedHillClimbing(),
        GeneticAlgorithmSolver(population_size=50),
        GeneticAlgorithmSolver(population_size=200),
    ]
    for solver in classical_solvers:
        trajectories[solver.name] = solver.solve(
            testcase.problem, time_budget_ms=CLASSICAL_BUDGET_MS, seed=1
        )

    best_known = min(t.best_cost for t in trajectories.values())
    reference = reference_cost(testcase.problem)
    headers = ["time (ms)"] + list(trajectories)
    rows = []
    for checkpoint in CHECKPOINTS_MS:
        row = [checkpoint]
        for trajectory in trajectories.values():
            value = scaled_cost(trajectory.cost_at_time(checkpoint), best_known, reference)
            row.append(min(value, 1.0) if value != float("inf") else 1.0)
        rows.append(tuple(row))
    print(format_table(headers, rows, float_fmt=".3f",
                       title="Scaled cost (0 = best known) vs optimization time"))

    qa_first_time, qa_first_cost = qa_trajectory.points[0]
    matches = [
        (name, trajectory.time_to_reach(qa_first_cost))
        for name, trajectory in trajectories.items()
        if name != "QA"
    ]
    print("\nTime for each classical solver to match the first annealing read "
          f"(cost {qa_first_cost:.1f} after {qa_first_time:.2f} ms of device time):")
    for name, matched in matches:
        if matched is None:
            print(f"  {name:>8}: not matched within {CLASSICAL_BUDGET_MS:.0f} ms")
        else:
            print(f"  {name:>8}: {matched:8.1f} ms  (speedup ~{matched / qa_first_time:.0f}x)")


if __name__ == "__main__":
    main()
