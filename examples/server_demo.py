"""Solver-server demo: boot a server, stream a job, coalesce, drain.

Runs entirely in one process (the server lives on a background thread)
but over a real TCP socket, exactly like the `repro-mqo serve` /
`repro-mqo submit` pair. Shows the four signature behaviours:

1. a streaming solve — anytime updates arrive while the job runs,
2. pipelined submits collected with wait(),
3. duplicate in-flight requests coalescing onto one execution,
4. the stats endpoint and a graceful drain.

Run with: PYTHONPATH=src python examples/server_demo.py
"""

from repro.server import ServerConfig, SolverClient, run_server_in_thread


def main() -> None:
    """Walk the server's feature set end to end."""
    handle = run_server_in_thread(ServerConfig(port=0, workers=2, queue_capacity=64))
    print(f"server listening on {handle.host}:{handle.port}")

    with SolverClient(port=handle.port, client_name="demo") as client:
        hello = client.hello()
        print(f"connected to {hello['server']} v{hello['version']}, "
              f"solvers: {', '.join(hello['solvers'])}")

        # 1. Streaming solve: watch the incumbent improve live.
        print("\n[1] streaming solve (CLIMB, 150 ms budget)")
        result = client.solve(
            {"queries": 10, "plans": 2, "seed": 7},
            solver="CLIMB",
            budget_ms=150.0,
            on_update=lambda update: print(
                f"    update #{update['seq']}: cost {update['cost']:.1f} "
                f"at {update['elapsed_ms']:.1f} ms"
            ),
        )
        print(f"    final: cost {result.best_cost:.1f} by {result.winner}")

        # 2. Pipelined submits: enqueue a small workload, collect results.
        print("\n[2] pipelined submit/wait of 4 jobs")
        job_ids = [
            client.submit(
                {"queries": 6, "plans": 2, "seed": seed},
                solver="CLIMB",
                budget_ms=60.0,
                seed=seed,
            )
            for seed in range(4)
        ]
        for job_id in job_ids:
            outcome = client.wait(job_id)
            print(f"    {job_id}: cost {outcome.best_cost:.1f}")

        # 3. Coalescing: identical in-flight jobs run once.
        print("\n[3] duplicate in-flight requests")
        twin_spec = {"queries": 8, "plans": 2, "seed": 42}
        first = client.submit(twin_spec, solver="CLIMB", budget_ms=200.0, seed=1)
        second = client.submit(twin_spec, solver="CLIMB", budget_ms=200.0, seed=1)
        result_a, result_b = client.wait(first), client.wait(second)
        print(f"    {first}: from_cache={result_a.from_cache}, "
              f"{second}: from_cache={result_b.from_cache} (coalesced echo)")

        # 4. Metrics, then a graceful drain.
        stats = client.stats()
        counters = stats["counters"]
        print("\n[4] stats")
        print(f"    jobs: {counters['jobs_completed']} completed, "
              f"{counters['jobs_coalesced']} coalesced, "
              f"{counters['updates_streamed']} updates streamed")
        print(f"    solve endpoint p50: {stats['endpoints']['solve']['p50_ms']} ms, "
              f"throughput: {stats['jobs_per_second']} jobs/s")
        client.shutdown(drain=True)
        print("    drain requested")

    handle.thread.join(timeout=10.0)
    print("server exited cleanly")


if __name__ == "__main__":
    main()
