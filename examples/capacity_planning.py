"""Capacity planning: which MQO workloads fit on current and future annealers?

The paper's Figure 7 asks how the representable problem dimensions grow
when the qubit count doubles (as it historically did between D-Wave
generations).  This example answers the practical version of that
question for a workload planner:

1. print the capacity frontier for 1152, 2304 and 4608 qubits,
2. check a concrete list of candidate workloads against the real
   (defective) device model, using the same embedding the evaluation uses,
3. estimate the annealing time budget for a full batch at 1000 reads per
   instance.

Run with:  python examples/capacity_planning.py
"""

from repro import DWAVE_2X, capacity_frontier
from repro.embedding.native import NativeClusteredEmbedder
from repro.utils.tables import format_table


def print_frontiers() -> None:
    budgets = (1152, 2304, 4608)
    frontiers = {
        budget: {p.plans_per_query: p.max_queries for p in capacity_frontier(budget)}
        for budget in budgets
    }
    rows = [
        tuple([plans] + [frontiers[budget][plans] for budget in budgets])
        for plans in range(2, 11)
    ]
    print(format_table(
        ["plans/query"] + [f"{b} qubits" for b in budgets],
        rows,
        title="Capacity frontier (clustered pattern): maximal number of queries",
    ))


def check_candidate_workloads() -> None:
    topology = DWAVE_2X.build_topology(seed=0)
    embedder = NativeClusteredEmbedder(topology)
    candidates = [
        ("nightly ETL batch", 500, 2),
        ("dashboard refresh", 220, 3),
        ("ad-hoc exploration", 150, 4),
        ("reporting suite", 120, 5),
        ("large federation", 400, 5),
    ]
    rows = []
    for name, queries, plans in candidates:
        capacity = embedder.capacity(plans)
        fits = queries <= capacity
        reads_ms = DWAVE_2X.default_num_reads * DWAVE_2X.time_per_read_ms
        rows.append((name, queries, plans, capacity, fits, round(reads_ms, 1)))
    print()
    print(format_table(
        ["workload", "queries", "plans/query", "device capacity", "fits?", "1000 reads (ms)"],
        rows,
        title=f"Candidate workloads on the {DWAVE_2X.name} "
              f"({topology.num_qubits} functional qubits)",
    ))


if __name__ == "__main__":
    print_frontiers()
    check_candidate_workloads()
