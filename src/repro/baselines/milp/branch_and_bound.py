"""Branch-and-bound over LP relaxations for binary linear programs.

The solver explores a best-first search tree.  At every node the LP
relaxation (variables in ``[0, 1]`` with branching fixings applied) is
solved with ``scipy.optimize.linprog`` (HiGHS).  Nodes are pruned when
the relaxation is infeasible or its bound cannot beat the incumbent;
otherwise the most fractional variable is branched on.  A caller-supplied
rounding heuristic turns fractional relaxation solutions into feasible
incumbents early, which is what produces the anytime behaviour of the
LIN-MQO / LIN-QUB baselines in Figures 4 and 5.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.baselines.milp.model import BinaryLinearProgram
from repro.exceptions import SolverError
from repro.utils.stopwatch import Stopwatch

__all__ = ["MilpResult", "BranchAndBoundSolver"]

#: Callback invoked whenever a new incumbent is found: (assignment, objective, elapsed_ms).
IncumbentCallback = Callable[[np.ndarray, float, float], None]
#: Heuristic turning a fractional relaxation solution into a feasible integer one.
RoundingHeuristic = Callable[[np.ndarray], Optional[np.ndarray]]


@dataclass
class MilpResult:
    """Outcome of a branch-and-bound run."""

    assignment: Optional[np.ndarray]
    objective: float
    proved_optimal: bool
    nodes_explored: int
    lp_relaxations_solved: int
    elapsed_ms: float
    incumbent_times_ms: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        """Whether any feasible assignment was found."""
        return self.assignment is not None

    def time_to_optimal_ms(self) -> Optional[float]:
        """Time at which the final incumbent was first found (requires optimality)."""
        if not self.proved_optimal or not self.incumbent_times_ms:
            return None
        return self.incumbent_times_ms[-1][0]


@dataclass(order=True)
class _Node:
    bound: float
    sequence: int
    fixings: Dict[int, int] = field(compare=False)


class BranchAndBoundSolver:
    """Best-first branch-and-bound with LP relaxations."""

    def __init__(
        self,
        integrality_tolerance: float = 1e-6,
        gap_tolerance: float = 1e-9,
        max_nodes: int | None = None,
    ) -> None:
        if integrality_tolerance <= 0 or gap_tolerance < 0:
            raise SolverError("tolerances must be positive")
        if max_nodes is not None and max_nodes <= 0:
            raise SolverError("max_nodes must be positive when given")
        self.integrality_tolerance = integrality_tolerance
        self.gap_tolerance = gap_tolerance
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------ #
    # LP relaxation
    # ------------------------------------------------------------------ #
    def _solve_relaxation(
        self,
        program: BinaryLinearProgram,
        fixings: Dict[int, int],
    ) -> Tuple[Optional[np.ndarray], Optional[float]]:
        c = program.objective_vector()
        a_eq, b_eq = program.equality_matrix()
        a_ub, b_ub = program.inequality_matrix()
        bounds = [(0.0, 1.0)] * program.num_variables
        for index, value in fixings.items():
            bounds[index] = (float(value), float(value))
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            return None, None
        return np.asarray(result.x), float(result.fun)

    # ------------------------------------------------------------------ #
    # Main search
    # ------------------------------------------------------------------ #
    def solve(
        self,
        program: BinaryLinearProgram,
        time_budget_ms: float = float("inf"),
        initial_assignment: Optional[np.ndarray] = None,
        rounding_heuristic: Optional[RoundingHeuristic] = None,
        on_incumbent: Optional[IncumbentCallback] = None,
    ) -> MilpResult:
        """Run branch-and-bound on ``program``.

        ``initial_assignment`` (if feasible) provides a warm-start
        incumbent; ``rounding_heuristic`` is applied to every fractional
        relaxation solution to generate further incumbents.
        """
        if time_budget_ms <= 0:
            raise SolverError(f"time_budget_ms must be positive, got {time_budget_ms}")
        stopwatch = Stopwatch().start()
        counter = itertools.count()
        incumbent: Optional[np.ndarray] = None
        incumbent_objective = float("inf")
        incumbent_times: List[Tuple[float, float]] = []
        nodes_explored = 0
        relaxations_solved = 0

        def accept_incumbent(candidate: np.ndarray, objective: float) -> None:
            nonlocal incumbent, incumbent_objective
            if objective < incumbent_objective - self.gap_tolerance:
                incumbent = candidate.copy()
                incumbent_objective = objective
                elapsed = stopwatch.elapsed_ms()
                incumbent_times.append((elapsed, objective))
                if on_incumbent is not None:
                    on_incumbent(incumbent, objective, elapsed)

        if initial_assignment is not None:
            candidate = np.asarray(initial_assignment, dtype=float)
            if program.is_feasible(candidate):
                accept_incumbent(candidate, program.objective_value(candidate))

        root_solution, root_bound = self._solve_relaxation(program, {})
        relaxations_solved += 1
        if root_solution is None:
            return MilpResult(
                assignment=incumbent,
                objective=incumbent_objective,
                proved_optimal=incumbent is not None,
                nodes_explored=0,
                lp_relaxations_solved=relaxations_solved,
                elapsed_ms=stopwatch.elapsed_ms(),
                incumbent_times_ms=incumbent_times,
            )

        heap: List[_Node] = [_Node(bound=root_bound, sequence=next(counter), fixings={})]
        proved_optimal = False

        while heap:
            if stopwatch.elapsed_ms() >= time_budget_ms:
                break
            if self.max_nodes is not None and nodes_explored >= self.max_nodes:
                break
            node = heapq.heappop(heap)
            if node.bound >= incumbent_objective - self.gap_tolerance:
                # Best-first order: every remaining node is at least as bad.
                proved_optimal = incumbent is not None
                break
            solution, bound = self._solve_relaxation(program, node.fixings)
            relaxations_solved += 1
            nodes_explored += 1
            if solution is None or bound is None:
                continue
            if bound >= incumbent_objective - self.gap_tolerance:
                continue

            fractional = self._most_fractional_variable(solution, node.fixings)
            if fractional is None:
                accept_incumbent(np.round(solution), bound)
                continue

            if rounding_heuristic is not None:
                rounded = rounding_heuristic(solution)
                if rounded is not None:
                    rounded = np.asarray(rounded, dtype=float)
                    if program.is_feasible(rounded):
                        accept_incumbent(rounded, program.objective_value(rounded))

            for value in (1, 0):
                child_fixings = dict(node.fixings)
                child_fixings[fractional] = value
                heapq.heappush(
                    heap,
                    _Node(bound=bound, sequence=next(counter), fixings=child_fixings),
                )
        else:
            # Heap exhausted: the search tree is fully explored.
            proved_optimal = incumbent is not None

        return MilpResult(
            assignment=incumbent,
            objective=incumbent_objective,
            proved_optimal=proved_optimal,
            nodes_explored=nodes_explored,
            lp_relaxations_solved=relaxations_solved,
            elapsed_ms=stopwatch.elapsed_ms(),
            incumbent_times_ms=incumbent_times,
        )

    def _most_fractional_variable(
        self, solution: np.ndarray, fixings: Dict[int, int]
    ) -> Optional[int]:
        """Index of the variable whose value is closest to 0.5 (None if integral)."""
        distances = np.abs(solution - 0.5)
        order = np.argsort(distances)
        for index in order:
            index = int(index)
            if index in fixings:
                continue
            if distances[index] <= 0.5 - self.integrality_tolerance:
                return index
            break
        return None
