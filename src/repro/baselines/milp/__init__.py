"""A small 0-1 integer-linear-programming substrate.

The paper's strongest classical competitor is a commercial integer
programming solver.  This package provides the equivalent building block
from scratch: a binary linear program container and an LP-relaxation
branch-and-bound solver (the relaxations are solved with
``scipy.optimize.linprog``/HiGHS).  The solver reports every incumbent
improvement with a timestamp so the MQO front-ends can expose the same
anytime trajectories as the heuristics.
"""

from repro.baselines.milp.model import BinaryLinearProgram
from repro.baselines.milp.branch_and_bound import BranchAndBoundSolver, MilpResult

__all__ = ["BinaryLinearProgram", "BranchAndBoundSolver", "MilpResult"]
