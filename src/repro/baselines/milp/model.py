"""Container for 0-1 (binary) linear programs.

The model is

    minimise     c^T x
    subject to   A_eq x  = b_eq
                 A_ub x <= b_ub
                 x_i in {0, 1}

Constraints are accumulated row by row as sparse coefficient mappings and
materialised into ``scipy.sparse`` matrices on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import SolverError

__all__ = ["BinaryLinearProgram"]

VariableName = Hashable


@dataclass(frozen=True)
class _Row:
    coefficients: Tuple[Tuple[int, float], ...]
    rhs: float


class BinaryLinearProgram:
    """A binary linear program built incrementally."""

    def __init__(self) -> None:
        self._objective: Dict[int, float] = {}
        self._names: List[VariableName] = []
        self._index: Dict[VariableName, int] = {}
        self._equalities: List[_Row] = []
        self._inequalities: List[_Row] = []

    # ------------------------------------------------------------------ #
    # Variables and objective
    # ------------------------------------------------------------------ #
    def add_variable(self, name: VariableName, objective: float = 0.0) -> int:
        """Register a binary variable and return its column index."""
        if name in self._index:
            raise SolverError(f"variable {name!r} already exists")
        index = len(self._names)
        self._names.append(name)
        self._index[name] = index
        if objective:
            self._objective[index] = float(objective)
        return index

    def add_objective(self, name: VariableName, coefficient: float) -> None:
        """Accumulate an objective coefficient onto an existing variable."""
        index = self.index_of(name)
        self._objective[index] = self._objective.get(index, 0.0) + float(coefficient)

    def index_of(self, name: VariableName) -> int:
        """Column index of a variable."""
        try:
            return self._index[name]
        except KeyError:
            raise SolverError(f"unknown variable {name!r}") from None

    @property
    def num_variables(self) -> int:
        """Number of variables."""
        return len(self._names)

    @property
    def variable_names(self) -> List[VariableName]:
        """Variable names in column order."""
        return list(self._names)

    # ------------------------------------------------------------------ #
    # Constraints
    # ------------------------------------------------------------------ #
    def _build_row(self, coefficients: Mapping[VariableName, float], rhs: float) -> _Row:
        entries = tuple(
            (self.index_of(name), float(value))
            for name, value in coefficients.items()
            if value != 0.0
        )
        return _Row(coefficients=entries, rhs=float(rhs))

    def add_equality(self, coefficients: Mapping[VariableName, float], rhs: float) -> None:
        """Add a constraint ``sum coeff * x = rhs``."""
        self._equalities.append(self._build_row(coefficients, rhs))

    def add_less_equal(self, coefficients: Mapping[VariableName, float], rhs: float) -> None:
        """Add a constraint ``sum coeff * x <= rhs``."""
        self._inequalities.append(self._build_row(coefficients, rhs))

    def add_greater_equal(self, coefficients: Mapping[VariableName, float], rhs: float) -> None:
        """Add a constraint ``sum coeff * x >= rhs`` (stored as ``<=`` of the negation)."""
        negated = {name: -value for name, value in coefficients.items()}
        self.add_less_equal(negated, -rhs)

    @property
    def num_constraints(self) -> int:
        """Total number of constraints."""
        return len(self._equalities) + len(self._inequalities)

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def objective_vector(self) -> np.ndarray:
        """Dense objective coefficient vector."""
        c = np.zeros(self.num_variables)
        for index, value in self._objective.items():
            c[index] = value
        return c

    @staticmethod
    def _rows_to_sparse(rows: Sequence[_Row], num_columns: int):
        if not rows:
            return None, None
        data: List[float] = []
        row_indices: List[int] = []
        col_indices: List[int] = []
        rhs = np.zeros(len(rows))
        for r, row in enumerate(rows):
            rhs[r] = row.rhs
            for column, value in row.coefficients:
                row_indices.append(r)
                col_indices.append(column)
                data.append(value)
        matrix = sparse.csr_matrix(
            (data, (row_indices, col_indices)), shape=(len(rows), num_columns)
        )
        return matrix, rhs

    def equality_matrix(self):
        """``(A_eq, b_eq)`` as a CSR matrix and vector (``(None, None)`` if empty)."""
        return self._rows_to_sparse(self._equalities, self.num_variables)

    def inequality_matrix(self):
        """``(A_ub, b_ub)`` as a CSR matrix and vector (``(None, None)`` if empty)."""
        return self._rows_to_sparse(self._inequalities, self.num_variables)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def objective_value(self, assignment: np.ndarray) -> float:
        """Objective value of a (0/1 or fractional) assignment vector."""
        assignment = np.asarray(assignment, dtype=float)
        if assignment.shape != (self.num_variables,):
            raise SolverError(
                f"assignment must have shape ({self.num_variables},), got {assignment.shape}"
            )
        return float(self.objective_vector() @ assignment)

    def is_feasible(self, assignment: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Whether an integer assignment satisfies all constraints."""
        assignment = np.asarray(assignment, dtype=float)
        a_eq, b_eq = self.equality_matrix()
        if a_eq is not None and np.any(np.abs(a_eq @ assignment - b_eq) > tolerance):
            return False
        a_ub, b_ub = self.inequality_matrix()
        if a_ub is not None and np.any(a_ub @ assignment - b_ub > tolerance):
            return False
        return True

    def assignment_by_name(self, assignment: np.ndarray) -> Dict[VariableName, float]:
        """Map an assignment vector back to variable names."""
        return {name: float(assignment[i]) for i, name in enumerate(self._names)}
