"""Integer linear programming on the linearised QUBO (LIN-QUB).

The paper additionally runs the commercial solver on "the energy formula
that the quantum annealer minimizes, too", using "a linear reformulation
of the quadratic energy formula" [Dash 2013].  This module applies the
standard Glover linearisation to the logical QUBO produced by
:class:`repro.core.logical.LogicalMapping`:

* for every quadratic term ``w_ij x_i x_j`` an auxiliary binary ``y_ij``
  replaces the product,
* if ``w_ij < 0`` (the solver wants ``y_ij = 1``):  ``y_ij <= x_i`` and
  ``y_ij <= x_j``,
* if ``w_ij > 0`` (the solver wants ``y_ij = 0``):  ``y_ij >= x_i + x_j - 1``.

Because the QUBO encodes the one-plan-per-query constraint only through
penalties, the search space of this program is exponentially larger than
LIN-MQO's — which is exactly why the paper observes LIN-QUB to be the
slower of the two ILP variants.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.anytime import AnytimeSolver, SolverTrajectory, TrajectoryRecorder
from repro.baselines.greedy import GreedyConstructiveSolver
from repro.baselines.milp.branch_and_bound import BranchAndBoundSolver, MilpResult
from repro.baselines.milp.model import BinaryLinearProgram
from repro.core.logical import LogicalMapping, LogicalMappingConfig
from repro.mqo.problem import MQOProblem
from repro.qubo.model import QUBOModel
from repro.utils.rng import SeedLike

__all__ = ["IntegerProgrammingQUBOSolver", "build_qubo_program"]


def build_qubo_program(qubo: QUBOModel) -> BinaryLinearProgram:
    """Glover linearisation of a QUBO into a binary linear program."""
    program = BinaryLinearProgram()
    for var, weight in qubo.linear.items():
        program.add_variable(("x", var), weight)
    for (u, v), weight in qubo.quadratic.items():
        if weight == 0.0:
            continue
        name = ("y", u, v)
        program.add_variable(name, weight)
        if weight < 0.0:
            program.add_less_equal({name: 1.0, ("x", u): -1.0}, 0.0)
            program.add_less_equal({name: 1.0, ("x", v): -1.0}, 0.0)
        else:
            # y >= x_u + x_v - 1   <=>   -y + x_u + x_v <= 1
            program.add_less_equal({name: -1.0, ("x", u): 1.0, ("x", v): 1.0}, 1.0)
    return program


class IntegerProgrammingQUBOSolver(AnytimeSolver):
    """The LIN-QUB baseline: branch-and-bound on the linearised logical QUBO."""

    name = "LIN-QUB"

    def __init__(
        self,
        logical_config: LogicalMappingConfig | None = None,
        warm_start: bool = True,
        max_nodes: int | None = None,
    ) -> None:
        self.logical_config = logical_config or LogicalMappingConfig()
        self.warm_start = warm_start
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _assignment_to_vector(
        program: BinaryLinearProgram, qubo: QUBOModel, assignment: Dict[int, int]
    ) -> np.ndarray:
        vector = np.zeros(program.num_variables)
        for var in qubo.variables:
            vector[program.index_of(("x", var))] = float(assignment.get(var, 0))
        for (u, v), weight in qubo.quadratic.items():
            if weight == 0.0:
                continue
            value = assignment.get(u, 0) * assignment.get(v, 0)
            vector[program.index_of(("y", u, v))] = float(value)
        return vector

    @staticmethod
    def _vector_to_assignment(
        program: BinaryLinearProgram, qubo: QUBOModel, vector: np.ndarray
    ) -> Dict[int, int]:
        return {
            var: int(vector[program.index_of(("x", var))] > 0.5) for var in qubo.variables
        }

    def _rounding_heuristic(
        self,
        program: BinaryLinearProgram,
        mapping: LogicalMapping,
        fractional: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Per query keep the plan with the largest fractional ``x_p``."""
        problem = mapping.problem
        selected = []
        for query in problem.queries:
            best_plan = max(
                query.plan_indices,
                key=lambda p: fractional[program.index_of(("x", p))],
            )
            selected.append(best_plan)
        assignment = {plan.index: 0 for plan in problem.plans}
        for plan_index in selected:
            assignment[plan_index] = 1
        return self._assignment_to_vector(program, mapping.qubo, assignment)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        problem: MQOProblem,
        time_budget_ms: float,
        seed: SeedLike = None,
    ) -> SolverTrajectory:
        """Run branch-and-bound on the linearised QUBO within the budget."""
        self._check_budget(time_budget_ms)
        recorder = TrajectoryRecorder(self.name)
        mapping = LogicalMapping(problem, self.logical_config)
        program = build_qubo_program(mapping.qubo)

        initial_vector = None
        if self.warm_start:
            warm_solution = GreedyConstructiveSolver().construct(problem)
            initial_vector = self._assignment_to_vector(
                program, mapping.qubo, warm_solution.plan_indicator()
            )

        def on_incumbent(vector: np.ndarray, _objective: float, _elapsed_ms: float) -> None:
            # Timestamps come from the recorder's clock, which started when
            # solve() was entered, so model-building time is included.
            assignment = self._vector_to_assignment(program, mapping.qubo, vector)
            solution = mapping.solution_from_assignment(assignment)
            if not solution.is_valid:
                solution = mapping.repair(assignment)
            recorder.record(solution)

        solver = BranchAndBoundSolver(max_nodes=self.max_nodes)
        result: MilpResult = solver.solve(
            program,
            time_budget_ms=time_budget_ms,
            initial_assignment=initial_vector,
            rounding_heuristic=lambda frac: self._rounding_heuristic(program, mapping, frac),
            on_incumbent=on_incumbent,
        )
        return recorder.finish(proved_optimal=result.proved_optimal)
