"""Anytime-solver framework with best-so-far trajectories.

The paper compares optimisation approaches "in terms of how solution
quality ... evolves as a function of optimization time" (Section 7.2).
Every classical solver therefore implements :class:`AnytimeSolver`: it
runs under a time budget, registers every improvement of its incumbent
solution with a timestamp, and returns a :class:`SolverTrajectory` from
which the cost at arbitrary checkpoints can be read.
"""

from __future__ import annotations

import abc
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import SolverError
from repro.mqo.problem import MQOProblem, MQOSolution
from repro.obs.metrics import get_registry
from repro.utils.rng import SeedLike
from repro.utils.stopwatch import Stopwatch

__all__ = [
    "SolverTrajectory",
    "AnytimeSolver",
    "TrajectoryRecorder",
    "ImprovementObserver",
    "observe_improvements",
    "current_improvement_observers",
]

#: Callback invoked on every incumbent improvement a solver records:
#: ``observer(solver_name, elapsed_ms, cost)``.
ImprovementObserver = Callable[[str, float, float], None]

_OBSERVERS = threading.local()

#: Incumbent improvements recorded across all solvers (a counter, not a
#: span: improvement loops are far too hot for per-iteration spans).
_IMPROVEMENTS = get_registry().counter(
    "repro_solver_improvements_total", "Incumbent improvements recorded by solvers."
)


def current_improvement_observers() -> Tuple[ImprovementObserver, ...]:
    """Observers installed for the *current thread* (empty when none).

    The solver server uses this to stream anytime updates: it installs an
    observer around a solve call, and the portfolio scheduler re-installs
    the caller's observers inside its member threads so improvements made
    on racing threads are forwarded too.
    """
    return getattr(_OBSERVERS, "installed", ())


@contextmanager
def observe_improvements(*observers: ImprovementObserver) -> Iterator[None]:
    """Register ``observers`` for improvements recorded on this thread.

    Every :meth:`TrajectoryRecorder.record` call that improves the
    incumbent notifies the observers installed on the recording thread
    with ``(solver_name, elapsed_ms, cost)``.  Contexts nest: inner
    registrations are appended to (not replacing) the outer ones, and the
    previous set is restored on exit.  Observer exceptions are swallowed
    so a misbehaving listener cannot fail a solver.
    """
    previous = getattr(_OBSERVERS, "installed", ())
    _OBSERVERS.installed = previous + tuple(observers)
    try:
        yield
    finally:
        _OBSERVERS.installed = previous


@dataclass
class SolverTrajectory:
    """Best-so-far cost over time for one solver run.

    Attributes
    ----------
    solver_name:
        Display name of the solver (matches the figure legends).
    points:
        Monotonically improving ``(elapsed_ms, best_cost)`` pairs in the
        order the improvements were found.
    best_solution:
        The final incumbent.
    proved_optimal:
        Whether the solver proved its incumbent optimal (exact solvers).
    total_time_ms:
        Wall-clock (or device) time consumed by the run.
    """

    solver_name: str
    points: List[Tuple[float, float]] = field(default_factory=list)
    best_solution: Optional[MQOSolution] = None
    proved_optimal: bool = False
    total_time_ms: float = 0.0

    @property
    def best_cost(self) -> float:
        """Cost of the final incumbent (``inf`` when nothing was found)."""
        if not self.points:
            return float("inf")
        return self.points[-1][1]

    def cost_at_time(self, time_ms: float) -> float:
        """Best cost achieved no later than ``time_ms`` (``inf`` before the first)."""
        best = float("inf")
        for elapsed, cost in self.points:
            if elapsed <= time_ms:
                best = cost
            else:
                break
        return best

    def time_to_reach(self, cost_threshold: float) -> Optional[float]:
        """Earliest time at which the cost reached (or beat) ``cost_threshold``."""
        for elapsed, cost in self.points:
            if cost <= cost_threshold + 1e-9:
                return elapsed
        return None

    def sampled(self, checkpoints_ms: Sequence[float]) -> List[Tuple[float, float]]:
        """The trajectory resampled at the given checkpoints."""
        return [(t, self.cost_at_time(t)) for t in checkpoints_ms]

    @classmethod
    def envelope(
        cls,
        trajectories: Sequence["SolverTrajectory"],
        offsets: Sequence[float] | None = None,
        solver_name: str = "ENVELOPE",
        best_solution: Optional[MQOSolution] = None,
        proved_optimal: bool = False,
    ) -> "SolverTrajectory":
        """Best-so-far envelope over several trajectories on a shared clock.

        Each trajectory's points are shifted by its offset (the time its
        run started on the shared clock), merged in time order, and
        reduced to the monotone best-so-far frontier.  This is how the
        portfolio scheduler reports "the portfolio's" anytime behaviour
        over its members.
        """
        if offsets is None:
            offsets = [0.0] * len(trajectories)
        if len(offsets) != len(trajectories):
            raise SolverError(
                f"envelope needs one offset per trajectory, got {len(offsets)} "
                f"for {len(trajectories)}"
            )
        events: List[Tuple[float, float]] = []
        for trajectory, offset in zip(trajectories, offsets):
            events.extend((offset + elapsed, cost) for elapsed, cost in trajectory.points)
        events.sort()
        points: List[Tuple[float, float]] = []
        best = float("inf")
        for elapsed, cost in events:
            if cost < best - 1e-12:
                best = cost
                points.append((elapsed, cost))
        return cls(
            solver_name=solver_name,
            points=points,
            best_solution=best_solution,
            proved_optimal=proved_optimal,
        )


class TrajectoryRecorder:
    """Helper that solvers use to register incumbent improvements."""

    def __init__(self, solver_name: str, clock: Stopwatch | None = None) -> None:
        self.solver_name = solver_name
        self._clock = clock or Stopwatch().start()
        self._points: List[Tuple[float, float]] = []
        self._best_cost = float("inf")
        self._best_solution: Optional[MQOSolution] = None

    @property
    def best_cost(self) -> float:
        """Cost of the current incumbent."""
        return self._best_cost

    @property
    def best_solution(self) -> Optional[MQOSolution]:
        """The current incumbent solution."""
        return self._best_solution

    def elapsed_ms(self) -> float:
        """Elapsed time since the recorder was created."""
        return self._clock.elapsed_ms()

    def record(self, solution: MQOSolution, elapsed_ms: float | None = None) -> bool:
        """Register ``solution`` if it improves the incumbent.

        Returns whether the incumbent improved.
        """
        if not solution.is_valid:
            raise SolverError(
                f"{self.solver_name} tried to record an invalid solution"
            )
        if solution.cost >= self._best_cost - 1e-12:
            return False
        self._best_cost = solution.cost
        self._best_solution = solution
        point_time = self.elapsed_ms() if elapsed_ms is None else elapsed_ms
        self._points.append((point_time, solution.cost))
        _IMPROVEMENTS.inc()
        for observer in current_improvement_observers():
            try:
                observer(self.solver_name, point_time, solution.cost)
            except Exception:  # noqa: BLE001 — a bad listener must not fail the solver
                pass
        return True

    def finish(self, proved_optimal: bool = False) -> SolverTrajectory:
        """Freeze the recording into a :class:`SolverTrajectory`."""
        return SolverTrajectory(
            solver_name=self.solver_name,
            points=list(self._points),
            best_solution=self._best_solution,
            proved_optimal=proved_optimal,
            total_time_ms=self.elapsed_ms(),
        )


class AnytimeSolver(abc.ABC):
    """Interface of every classical MQO solver in the benchmark suite."""

    #: Display name used in figure legends and tables.
    name: str = "solver"

    @abc.abstractmethod
    def solve(
        self,
        problem: MQOProblem,
        time_budget_ms: float,
        seed: SeedLike = None,
    ) -> SolverTrajectory:
        """Optimise ``problem`` within ``time_budget_ms`` milliseconds."""

    def _check_budget(self, time_budget_ms: float) -> None:
        if time_budget_ms <= 0:
            raise SolverError(
                f"{self.name}: time budget must be positive, got {time_budget_ms}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
