"""Classical MQO solvers used as comparison points (paper Section 7.1).

All solvers implement the :class:`AnytimeSolver` interface: they run
under a wall-clock budget and record how the cost of their best-so-far
solution evolves over time, which is exactly the quantity Figures 4 and 5
plot.  Included are the paper's competitors — integer linear programming
on the MQO formulation (LIN-MQO), integer linear programming on the
linearised QUBO (LIN-QUB), a genetic algorithm with population 50/200 and
iterated hill climbing — plus a constructive greedy heuristic.
"""

from repro.baselines.anytime import AnytimeSolver, SolverTrajectory
from repro.baselines.hillclimb import IteratedHillClimbing
from repro.baselines.genetic import GeneticAlgorithmSolver
from repro.baselines.greedy import GreedyConstructiveSolver
from repro.baselines.ilp_mqo import IntegerProgrammingMQOSolver
from repro.baselines.ilp_qubo import IntegerProgrammingQUBOSolver
from repro.baselines.milp import BinaryLinearProgram, BranchAndBoundSolver, MilpResult

__all__ = [
    "AnytimeSolver",
    "SolverTrajectory",
    "IteratedHillClimbing",
    "GeneticAlgorithmSolver",
    "GreedyConstructiveSolver",
    "IntegerProgrammingMQOSolver",
    "IntegerProgrammingQUBOSolver",
    "BinaryLinearProgram",
    "BranchAndBoundSolver",
    "MilpResult",
]
