"""Constructive greedy heuristic for MQO.

Not one of the paper's headline competitors, but the classical
"cheap and cheerful" baseline: queries are processed in descending order
of their cheapest plan cost, and for each query the plan minimising
(execution cost minus savings realisable with already selected plans) is
chosen.  The result is also a useful warm start for the exact solvers.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.anytime import AnytimeSolver, SolverTrajectory, TrajectoryRecorder
from repro.mqo.problem import MQOProblem, MQOSolution
from repro.utils.rng import SeedLike

__all__ = ["GreedyConstructiveSolver"]


class GreedyConstructiveSolver(AnytimeSolver):
    """One-pass greedy plan selection exploiting already chosen plans."""

    name = "GREEDY"

    def construct(self, problem: MQOProblem) -> MQOSolution:
        """Build the greedy solution (deterministic, no time accounting).

        Runs on the columnar problem arrays: the query order comes from
        one segmented minimum + stable argsort, and each query's
        marginals (plan cost minus savings realisable with the plans
        chosen so far) are evaluated in one vectorised call.
        """
        arrays = problem.arrays()
        cheapest = np.minimum.reduceat(arrays.plan_cost, arrays.query_offsets[:-1])
        # Descending by cheapest plan cost; stable, so ties keep query order
        # exactly as the legacy sorted() pass did.
        order = np.argsort(-cheapest, kind="stable")
        mask = np.zeros(arrays.num_plans, dtype=bool)
        selected = np.empty(arrays.num_queries, dtype=np.int64)
        for query_index in order:
            query_index = int(query_index)
            realized = arrays.realized_savings(mask, query_index)
            lo = int(arrays.query_offsets[query_index])
            hi = int(arrays.query_offsets[query_index + 1])
            marginals = arrays.plan_cost[lo:hi] - realized
            best_plan = lo + int(np.argmin(marginals))
            selected[query_index] = best_plan
            mask[best_plan] = True
        cost = float(arrays.indicator_cost_batch(mask[None, :].astype(np.int8))[0])
        return MQOSolution.from_precomputed(problem, selected.tolist(), cost, True)

    def solve(
        self,
        problem: MQOProblem,
        time_budget_ms: float,
        seed: SeedLike = None,
    ) -> SolverTrajectory:
        """Build one greedy selection (cheapest plan incl. savings per query)."""
        self._check_budget(time_budget_ms)
        recorder = TrajectoryRecorder(self.name)
        recorder.record(self.construct(problem))
        return recorder.finish()
