"""Constructive greedy heuristic for MQO.

Not one of the paper's headline competitors, but the classical
"cheap and cheerful" baseline: queries are processed in descending order
of their cheapest plan cost, and for each query the plan minimising
(execution cost minus savings realisable with already selected plans) is
chosen.  The result is also a useful warm start for the exact solvers.
"""

from __future__ import annotations

from repro.baselines.anytime import AnytimeSolver, SolverTrajectory, TrajectoryRecorder
from repro.mqo.problem import MQOProblem, MQOSolution
from repro.utils.rng import SeedLike

__all__ = ["GreedyConstructiveSolver"]


class GreedyConstructiveSolver(AnytimeSolver):
    """One-pass greedy plan selection exploiting already chosen plans."""

    name = "GREEDY"

    def construct(self, problem: MQOProblem) -> MQOSolution:
        """Build the greedy solution (deterministic, no time accounting)."""
        selected: list[int] = []
        selected_set: set[int] = set()
        order = sorted(
            problem.queries,
            key=lambda query: -min(problem.plan_cost(p) for p in query.plan_indices),
        )
        for query in order:
            def marginal(plan: int) -> float:
                realized = sum(
                    saving
                    for partner, saving in problem.sharing_partners(plan).items()
                    if partner in selected_set
                )
                return problem.plan_cost(plan) - realized

            best_plan = min(query.plan_indices, key=marginal)
            selected.append(best_plan)
            selected_set.add(best_plan)
        return problem.solution_from_selection(selected)

    def solve(
        self,
        problem: MQOProblem,
        time_budget_ms: float,
        seed: SeedLike = None,
    ) -> SolverTrajectory:
        """Build one greedy selection (cheapest plan incl. savings per query)."""
        self._check_budget(time_budget_ms)
        recorder = TrajectoryRecorder(self.name)
        recorder.record(self.construct(problem))
        return recorder.finish()
