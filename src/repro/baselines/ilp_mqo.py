"""Integer linear programming directly on the MQO formulation (LIN-MQO).

The formulation follows Dokeroglu et al.: binary variables ``x_p`` select
plans and auxiliary variables ``y_{p1,p2}`` linearise the savings terms:

    minimise   sum_p c_p x_p  -  sum_{(p1,p2)} s_{p1,p2} y_{p1,p2}
    subject to sum_{p in P_q} x_p = 1                    for every query q
               y_{p1,p2} <= x_p1,   y_{p1,p2} <= x_p2    for every savings pair

Because the savings coefficients are positive and the objective is
minimised, the relaxation drives every ``y`` to ``min(x_p1, x_p2)``, so
no lower-bounding constraints are needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.anytime import AnytimeSolver, SolverTrajectory, TrajectoryRecorder
from repro.baselines.greedy import GreedyConstructiveSolver
from repro.baselines.milp.branch_and_bound import BranchAndBoundSolver, MilpResult
from repro.baselines.milp.model import BinaryLinearProgram
from repro.mqo.problem import MQOProblem, MQOSolution
from repro.utils.rng import SeedLike

__all__ = ["IntegerProgrammingMQOSolver", "build_mqo_program"]


def build_mqo_program(problem: MQOProblem) -> Tuple[BinaryLinearProgram, Dict[int, int]]:
    """Build the LIN-MQO program; returns it plus the plan -> column map."""
    program = BinaryLinearProgram()
    plan_column: Dict[int, int] = {}
    for plan in problem.plans:
        plan_column[plan.index] = program.add_variable(("x", plan.index), plan.cost)
    for (p1, p2), saving in problem.interaction_pairs():
        name = ("y", p1, p2)
        program.add_variable(name, -saving)
        program.add_less_equal({name: 1.0, ("x", p1): -1.0}, 0.0)
        program.add_less_equal({name: 1.0, ("x", p2): -1.0}, 0.0)
    for query in problem.queries:
        program.add_equality({("x", p): 1.0 for p in query.plan_indices}, 1.0)
    return program, plan_column


class IntegerProgrammingMQOSolver(AnytimeSolver):
    """The LIN-MQO baseline: branch-and-bound on the MQO integer program."""

    name = "LIN-MQO"

    def __init__(
        self,
        warm_start: bool = True,
        max_nodes: int | None = None,
    ) -> None:
        self.warm_start = warm_start
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _selection_to_vector(
        program: BinaryLinearProgram,
        problem: MQOProblem,
        solution: MQOSolution,
    ) -> np.ndarray:
        vector = np.zeros(program.num_variables)
        selected = solution.selected_plans
        for plan_index in selected:
            vector[program.index_of(("x", plan_index))] = 1.0
        for (p1, p2), _saving in problem.interaction_pairs():
            if p1 in selected and p2 in selected:
                vector[program.index_of(("y", p1, p2))] = 1.0
        return vector

    @staticmethod
    def _vector_to_solution(
        program: BinaryLinearProgram,
        problem: MQOProblem,
        vector: np.ndarray,
    ) -> MQOSolution:
        selected = [
            plan.index
            for plan in problem.plans
            if vector[program.index_of(("x", plan.index))] > 0.5
        ]
        return problem.solution_from_selection(selected)

    @staticmethod
    def _rounding_heuristic(
        program: BinaryLinearProgram,
        problem: MQOProblem,
        fractional: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Round a fractional relaxation: per query keep the largest ``x_p``."""
        selected: List[int] = []
        for query in problem.queries:
            best_plan = max(
                query.plan_indices,
                key=lambda p: fractional[program.index_of(("x", p))],
            )
            selected.append(best_plan)
        solution = problem.solution_from_selection(selected)
        return IntegerProgrammingMQOSolver._selection_to_vector(program, problem, solution)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        problem: MQOProblem,
        time_budget_ms: float,
        seed: SeedLike = None,
    ) -> SolverTrajectory:
        """Run branch-and-bound on the MQO integer program within the budget."""
        self._check_budget(time_budget_ms)
        recorder = TrajectoryRecorder(self.name)
        program, _plan_column = build_mqo_program(problem)

        initial_vector = None
        if self.warm_start:
            warm_solution = GreedyConstructiveSolver().construct(problem)
            initial_vector = self._selection_to_vector(program, problem, warm_solution)

        def on_incumbent(vector: np.ndarray, _objective: float, _elapsed_ms: float) -> None:
            # Timestamps come from the recorder's clock, which started when
            # solve() was entered, so model-building time is included.
            solution = self._vector_to_solution(program, problem, vector)
            recorder.record(solution)

        solver = BranchAndBoundSolver(max_nodes=self.max_nodes)
        result: MilpResult = solver.solve(
            program,
            time_budget_ms=time_budget_ms,
            initial_assignment=initial_vector,
            rounding_heuristic=lambda frac: self._rounding_heuristic(program, problem, frac),
            on_incumbent=on_incumbent,
        )
        return recorder.finish(proved_optimal=result.proved_optimal)
