"""Incremental plan-selection state shared by the heuristic solvers.

Hill climbing and the genetic algorithm repeatedly evaluate small changes
to a plan selection.  Recomputing the full objective is ``O(|P| + |S|)``;
this helper maintains the selection and supports ``O(degree)`` evaluation
and application of single-query plan swaps.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import InvalidSolutionError
from repro.mqo.problem import MQOProblem, MQOSolution

__all__ = ["SelectionState"]


class SelectionState:
    """A mutable one-plan-per-query selection with incremental cost updates."""

    def __init__(self, problem: MQOProblem, choices: Sequence[int]) -> None:
        if len(choices) != problem.num_queries:
            raise InvalidSolutionError(
                f"expected {problem.num_queries} choices, got {len(choices)}"
            )
        self.problem = problem
        self._choices: List[int] = []
        self._selected_plan: List[int] = []
        self._selected_set: set[int] = set()
        for query, choice in zip(problem.queries, choices):
            if not 0 <= choice < query.num_plans:
                raise InvalidSolutionError(
                    f"choice {choice} out of range for query {query.index}"
                )
            plan = query.plan_indices[choice]
            self._choices.append(int(choice))
            self._selected_plan.append(plan)
            self._selected_set.add(plan)
        self._cost = problem.selection_cost(self._selected_set)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def cost(self) -> float:
        """Objective value of the current selection."""
        return self._cost

    @property
    def choices(self) -> List[int]:
        """Per-query plan offsets of the current selection (copy)."""
        return list(self._choices)

    def selected_plan(self, query_index: int) -> int:
        """Global index of the plan currently selected for ``query_index``."""
        return self._selected_plan[query_index]

    def to_solution(self) -> MQOSolution:
        """The current selection as an immutable :class:`MQOSolution`."""
        return self.problem.solution_from_selection(self._selected_plan)

    # ------------------------------------------------------------------ #
    # Incremental moves
    # ------------------------------------------------------------------ #
    def _realized_savings(self, plan: int, excluding_query: int) -> float:
        """Savings plan realises with currently selected plans of other queries."""
        total = 0.0
        for partner, saving in self.problem.sharing_partners(plan).items():
            if partner in self._selected_set:
                if self.problem.query_of_plan(partner) == excluding_query:
                    continue
                total += saving
        return total

    def swap_delta(self, query_index: int, new_choice: int) -> float:
        """Cost change of switching ``query_index`` to plan offset ``new_choice``."""
        query = self.problem.query(query_index)
        if not 0 <= new_choice < query.num_plans:
            raise InvalidSolutionError(
                f"choice {new_choice} out of range for query {query_index}"
            )
        old_plan = self._selected_plan[query_index]
        new_plan = query.plan_indices[new_choice]
        if new_plan == old_plan:
            return 0.0
        delta = self.problem.plan_cost(new_plan) - self.problem.plan_cost(old_plan)
        delta -= self._realized_savings(new_plan, excluding_query=query_index)
        delta += self._realized_savings(old_plan, excluding_query=query_index)
        return delta

    def apply_swap(self, query_index: int, new_choice: int) -> float:
        """Apply a swap and return the (possibly zero) cost change."""
        delta = self.swap_delta(query_index, new_choice)
        query = self.problem.query(query_index)
        old_plan = self._selected_plan[query_index]
        new_plan = query.plan_indices[new_choice]
        if new_plan != old_plan:
            self._selected_set.discard(old_plan)
            self._selected_set.add(new_plan)
            self._selected_plan[query_index] = new_plan
            self._choices[query_index] = int(new_choice)
            self._cost += delta
        return delta

    def copy(self) -> "SelectionState":
        """An independent copy of the state."""
        return SelectionState(self.problem, self._choices)
