"""Incremental plan-selection state shared by the heuristic solvers.

Hill climbing and the genetic algorithm repeatedly evaluate small changes
to a plan selection.  Recomputing the full objective is ``O(|P| + |S|)``;
this helper maintains the selection on the problem's columnar arrays
(:class:`~repro.mqo.arrays.ProblemArrays`) and evaluates single-query
plan swaps vectorised: :meth:`swap_deltas` scores every candidate plan
of one query in one call, :meth:`all_swap_deltas` scores every candidate
move of every query — the whole steepest-descent sweep — in one gather
plus one segmented reduction over the savings adjacency.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import InvalidSolutionError
from repro.mqo.problem import MQOProblem, MQOSolution

__all__ = ["SelectionState"]


class SelectionState:
    """A mutable one-plan-per-query selection with incremental cost updates."""

    def __init__(self, problem: MQOProblem, choices: Sequence[int]) -> None:
        arrays = problem.arrays()
        choices = np.asarray(choices, dtype=np.int64)
        if choices.ndim != 1 or len(choices) != problem.num_queries:
            raise InvalidSolutionError(
                f"expected {problem.num_queries} choices, got {len(np.atleast_1d(choices))}"
            )
        self.problem = problem
        self._arrays = arrays
        # Copied so later swaps never mutate a caller-owned array.
        self._choices = arrays.check_choices(choices).copy()
        self._selected = arrays.choices_to_plans(self._choices)
        self._mask = np.zeros(arrays.num_plans, dtype=bool)
        self._mask[self._selected] = True
        self._cost = float(arrays.selection_cost_batch(self._choices, validate=False)[0])

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def cost(self) -> float:
        """Objective value of the current selection."""
        return self._cost

    @property
    def choices(self) -> List[int]:
        """Per-query plan offsets of the current selection (copy)."""
        return self._choices.tolist()

    def selected_plan(self, query_index: int) -> int:
        """Global index of the plan currently selected for ``query_index``."""
        return int(self._selected[query_index])

    def to_solution(self) -> MQOSolution:
        """The current selection as an immutable :class:`MQOSolution`.

        The objective is recomputed from the arrays (not taken from the
        incrementally maintained :attr:`cost`), so recorded solutions
        never carry accumulated floating-point drift.
        """
        cost = float(self._arrays.selection_cost_batch(self._choices, validate=False)[0])
        return MQOSolution.from_precomputed(
            self.problem, self._selected.tolist(), cost, True
        )

    # ------------------------------------------------------------------ #
    # Incremental moves
    # ------------------------------------------------------------------ #
    def swap_deltas(self, query_index: int) -> np.ndarray:
        """Cost change of switching ``query_index`` to each of its plans.

        Entry ``c`` is the delta of choosing plan offset ``c``; the
        current choice's entry is exactly 0.0.  One call evaluates what
        previously took one :meth:`swap_delta` per candidate.
        """
        return self._arrays.swap_deltas(self._selected, self._mask, query_index)

    def all_swap_deltas(self) -> np.ndarray:
        """Swap delta for every plan of every query in one vectorised call.

        ``deltas[p]`` is the cost change of switching plan ``p``'s query
        onto ``p`` (0.0 for currently selected plans) — a full
        steepest-descent sweep evaluated at once.
        """
        return self._arrays.all_swap_deltas(self._selected, self._mask)

    def swap_delta(self, query_index: int, new_choice: int) -> float:
        """Cost change of switching ``query_index`` to plan offset ``new_choice``."""
        arrays = self._arrays
        span = int(arrays.plans_per_query[query_index])
        if not 0 <= new_choice < span:
            raise InvalidSolutionError(
                f"choice {new_choice} out of range for query {query_index}"
            )
        return float(self.swap_deltas(query_index)[new_choice])

    def apply_swap(self, query_index: int, new_choice: int) -> float:
        """Apply a swap and return the (possibly zero) cost change."""
        delta = self.swap_delta(query_index, new_choice)
        old_plan = int(self._selected[query_index])
        new_plan = int(self._arrays.query_offsets[query_index]) + int(new_choice)
        if new_plan != old_plan:
            self._mask[old_plan] = False
            self._mask[new_plan] = True
            self._selected[query_index] = new_plan
            self._choices[query_index] = int(new_choice)
            self._cost += delta
        return delta

    def copy(self) -> "SelectionState":
        """An independent copy of the state.

        Copies the selection fields directly — no re-validation and no
        ``O(|P| + |S|)`` objective recomputation; the clone inherits the
        source's incrementally maintained cost verbatim.
        """
        clone = object.__new__(SelectionState)
        clone.problem = self.problem
        clone._arrays = self._arrays
        clone._choices = self._choices.copy()
        clone._selected = self._selected.copy()
        clone._mask = self._mask.copy()
        clone._cost = self._cost
        return clone
