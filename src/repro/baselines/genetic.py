"""Genetic algorithm for MQO (the GA(50) / GA(200) baselines).

The paper uses the Java Genetic Algorithms Package with its default
configuration: single-point crossover, a top-n ("best chromosomes")
selection strategy, crossover rate 0.35 and mutation rate 1/12, with
population sizes 50 and 200.  This module reimplements that algorithm:

* a chromosome is the vector of per-query plan choices,
* each generation adds offspring created by single-point crossover of
  randomly drawn parents (``crossover_rate * population`` pairs) and by
  per-gene mutation with probability ``mutation_rate``,
* the next generation keeps the best ``population_size`` chromosomes of
  the combined pool (top-n selection).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.baselines.anytime import AnytimeSolver, SolverTrajectory, TrajectoryRecorder
from repro.exceptions import SolverError
from repro.mqo.problem import MQOProblem
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["GeneticAlgorithmSolver"]


class GeneticAlgorithmSolver(AnytimeSolver):
    """Single-point-crossover, top-n-selection genetic algorithm."""

    def __init__(
        self,
        population_size: int = 50,
        crossover_rate: float = 0.35,
        mutation_rate: float = 1.0 / 12.0,
        max_generations: int | None = None,
    ) -> None:
        if population_size < 2:
            raise SolverError("population_size must be at least 2")
        if not 0.0 <= crossover_rate <= 1.0:
            raise SolverError(f"crossover_rate must be in [0, 1], got {crossover_rate}")
        if not 0.0 <= mutation_rate <= 1.0:
            raise SolverError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
        if max_generations is not None and max_generations <= 0:
            raise SolverError("max_generations must be positive when given")
        self.population_size = population_size
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.max_generations = max_generations
        self.name = f"GA({population_size})"

    # ------------------------------------------------------------------ #
    # Chromosome helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _plan_counts(problem: MQOProblem) -> np.ndarray:
        return np.asarray(problem.arrays().plans_per_query, dtype=int)

    @staticmethod
    def _evaluate(problem: MQOProblem, chromosome: np.ndarray) -> float:
        return float(problem.arrays().selection_cost_batch(np.asarray(chromosome))[0])

    @staticmethod
    def _evaluate_batch(problem: MQOProblem, chromosomes: np.ndarray) -> np.ndarray:
        """Objective of every chromosome in one vectorised call.

        The whole population matrix is costed with two gathers and one
        matrix-vector product over the columnar problem arrays — the
        per-chromosome ``solution_from_choices`` round-trips (frozenset,
        validity scan, Python savings loop) were the GA's dominant cost.
        """
        return problem.arrays().selection_cost_batch(chromosomes)

    def _random_population(
        self, problem: MQOProblem, plan_counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.stack(
            [rng.integers(0, plan_counts) for _ in range(self.population_size)]
        )

    def _crossover(
        self, parent_a: np.ndarray, parent_b: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Single-point crossover producing two children."""
        num_genes = len(parent_a)
        if num_genes < 2:
            return parent_a.copy(), parent_b.copy()
        point = int(rng.integers(1, num_genes))
        child_a = np.concatenate([parent_a[:point], parent_b[point:]])
        child_b = np.concatenate([parent_b[:point], parent_a[point:]])
        return child_a, child_b

    def _mutate(
        self, chromosome: np.ndarray, plan_counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        mask = rng.random(len(chromosome)) < self.mutation_rate
        if not mask.any():
            return chromosome
        mutated = chromosome.copy()
        mutated[mask] = rng.integers(0, plan_counts[mask])
        return mutated

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def solve(
        self,
        problem: MQOProblem,
        time_budget_ms: float,
        seed: SeedLike = None,
    ) -> SolverTrajectory:
        """Evolve plan selections under the time budget and return the trajectory."""
        self._check_budget(time_budget_ms)
        rng = ensure_rng(seed)
        recorder = TrajectoryRecorder(self.name)
        plan_counts = self._plan_counts(problem)

        population = self._random_population(problem, plan_counts, rng)
        fitness = self._evaluate_batch(problem, population)
        self._record_best(problem, population, fitness, recorder)

        generation = 0
        while recorder.elapsed_ms() < time_budget_ms:
            if self.max_generations is not None and generation >= self.max_generations:
                break
            generation += 1

            offspring: List[np.ndarray] = []
            num_crossovers = max(1, int(round(self.crossover_rate * self.population_size)))
            for _ in range(num_crossovers):
                idx_a, idx_b = rng.integers(0, self.population_size, size=2)
                child_a, child_b = self._crossover(population[idx_a], population[idx_b], rng)
                offspring.append(child_a)
                offspring.append(child_b)
            mutants = [
                self._mutate(population[int(rng.integers(0, self.population_size))], plan_counts, rng)
                for _ in range(self.population_size)
            ]
            candidates = np.stack(offspring + mutants)
            candidate_fitness = self._evaluate_batch(problem, candidates)

            pool = np.concatenate([population, candidates])
            pool_fitness = np.concatenate([fitness, candidate_fitness])
            order = np.argsort(pool_fitness, kind="stable")[: self.population_size]
            population = pool[order]
            fitness = pool_fitness[order]
            self._record_best(problem, population, fitness, recorder)
        return recorder.finish()

    def _record_best(
        self,
        problem: MQOProblem,
        population: np.ndarray,
        fitness: np.ndarray,
        recorder: TrajectoryRecorder,
    ) -> None:
        best_index = int(np.argmin(fitness))
        if fitness[best_index] < recorder.best_cost - 1e-12:
            solution = problem.solution_from_choices(
                [int(c) for c in population[best_index]]
            )
            recorder.record(solution)
