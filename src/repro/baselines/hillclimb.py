"""Iterated hill climbing (the CLIMB baseline of the paper).

"Our hill climbing algorithm iteratively generates plan selections
randomly and improves them via hill climbing until a local optimum is
reached" (Section 7.1).  A move changes the plan selected for a single
query; the best improving move is applied until no move improves, then a
fresh random restart begins.  The global best over all restarts is the
incumbent.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.anytime import AnytimeSolver, SolverTrajectory, TrajectoryRecorder
from repro.baselines.selection_state import SelectionState
from repro.exceptions import SolverError
from repro.mqo.problem import MQOProblem
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["IteratedHillClimbing"]


class IteratedHillClimbing(AnytimeSolver):
    """Random-restart steepest-descent hill climbing over plan selections."""

    name = "CLIMB"

    def __init__(self, max_restarts: int | None = None, budget_check_interval: int = 16) -> None:
        if max_restarts is not None and max_restarts <= 0:
            raise SolverError("max_restarts must be positive when given")
        if budget_check_interval <= 0:
            raise SolverError("budget_check_interval must be positive")
        self.max_restarts = max_restarts
        self.budget_check_interval = budget_check_interval

    def solve(
        self,
        problem: MQOProblem,
        time_budget_ms: float,
        seed: SeedLike = None,
    ) -> SolverTrajectory:
        """Run random-restart steepest descent until the budget expires."""
        self._check_budget(time_budget_ms)
        rng = ensure_rng(seed)
        recorder = TrajectoryRecorder(self.name)

        restarts = 0
        while recorder.elapsed_ms() < time_budget_ms:
            if self.max_restarts is not None and restarts >= self.max_restarts:
                break
            restarts += 1
            choices = [
                int(rng.integers(0, query.num_plans)) for query in problem.queries
            ]
            state = SelectionState(problem, choices)
            recorder.record(state.to_solution())
            self._climb(state, recorder, time_budget_ms)
        return recorder.finish()

    def _climb(
        self,
        state: SelectionState,
        recorder: TrajectoryRecorder,
        time_budget_ms: float,
    ) -> None:
        """Steepest-descent until a local optimum or the budget is reached.

        Every sweep evaluates all candidate moves of all queries in one
        vectorised :meth:`SelectionState.all_swap_deltas` call; plans
        are laid out in (query, choice) order, so on exact ties the
        first minimum of the delta vector is the move the per-candidate
        scan of the legacy implementation picked.  (Candidates whose
        deltas differ by less than the 1e-12 improvement threshold may
        resolve to a different — equally improving — move.)
        """
        arrays = state.problem.arrays()
        query_offsets = arrays.query_offsets
        plan_query = arrays.plan_query
        moves_since_check = 0
        while True:
            deltas = state.all_swap_deltas()
            moves_since_check += arrays.num_queries
            if moves_since_check >= self.budget_check_interval:
                moves_since_check = 0
                if recorder.elapsed_ms() >= time_budget_ms:
                    return
            best_plan = int(np.argmin(deltas))
            if not deltas[best_plan] < -1e-12:
                return
            query_index = int(plan_query[best_plan])
            state.apply_swap(query_index, best_plan - int(query_offsets[query_index]))
            recorder.record(state.to_solution())
