"""Command-line interface: ``repro-mqo``.

Nine subcommands cover the common workflows:

* ``solve``    — generate (or load) an instance and solve it on the
  simulated annealer plus selected classical baselines (``--json`` for
  machine-readable output),
* ``batch``    — stream a JSONL workload of instance specs through the
  solver service (portfolio racing, worker processes, result cache),
* ``serve``    — run the async solver server (see ``docs/server.md``),
* ``submit``   — send a JSONL workload to a running server and stream
  the results back as JSONL,
* ``bench``    — run a registered workload suite through the benchmark
  orchestrator and write a schema-validated ``BENCH_<suite>.json``
  (see ``docs/benchmarks.md`` and ``docs/workloads.md``),
* ``metrics``  — fetch the Prometheus exposition text from a running
  server (see ``docs/observability.md``),
* ``top``      — live per-shard view of a running server (throughput,
  latency percentiles, queue depths, restarts), refreshing in place on
  a terminal and degrading to a one-shot dump when piped,
* ``capacity`` — print the Figure 7 capacity frontier for a qubit budget,
* ``info``     — print the device model and profile configuration.

``solve``, ``batch``, ``bench`` and ``serve`` accept ``--trace PATH`` to
record pipeline spans and write them as NDJSON (one span per line);
``serve`` writes its buffer — including spans adopted from shard
processes — when the server stops.
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import re
import sys
import time
from collections import OrderedDict, deque
from typing import Iterator, Optional, Sequence, Tuple

from repro.baselines.genetic import GeneticAlgorithmSolver
from repro.baselines.hillclimb import IteratedHillClimbing
from repro.baselines.ilp_mqo import IntegerProgrammingMQOSolver
from repro.chimera.hardware import DWAVE_2X
from repro.core.pipeline import QuantumMQO
from repro.exceptions import AdmissionError, ReproError
from repro.experiments.figures import figure7_table
from repro.experiments.profiles import get_profile
from repro.mqo.generator import generate_paper_testcase
from repro.mqo.serialization import load_problem
from repro.obs import configure_tracer, get_tracer, write_ndjson
from repro.server.app import ServerConfig, SolverServer
from repro.server.client import SolverClient
from repro.service.batch import BatchExecutor, derive_job_seed
from repro.service.cache import ResultCache
from repro.service.frontend import ServiceFrontend
from repro.service.jobs import (
    PORTFOLIO_SOLVER,
    SolveRequest,
    SolveResult,
    dedupe_key,
    echo_result_for_duplicate,
    request_from_spec,
)
from repro.utils.stopwatch import Stopwatch
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-mqo`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-mqo",
        description="Multiple query optimization on a simulated adiabatic quantum annealer",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="solve one MQO instance")
    solve.add_argument("--queries", type=int, default=20, help="number of queries to generate")
    solve.add_argument("--plans", type=int, default=2, help="plans per query")
    solve.add_argument("--seed", type=int, default=0, help="random seed")
    solve.add_argument("--reads", type=int, default=200, help="annealing reads")
    solve.add_argument(
        "--problem-file", type=str, default=None, help="load a JSON problem instead of generating"
    )
    solve.add_argument(
        "--baselines",
        action="store_true",
        help="also run the classical baselines (LIN-MQO, CLIMB, GA(50))",
    )
    solve.add_argument(
        "--decompose",
        action="store_true",
        help=(
            "solve via the parallel partition-solve-stitch decomposition "
            "instead of one monolithic QUBO (the path for instances beyond "
            "device capacity)"
        ),
    )
    solve.add_argument(
        "--max-cluster-size",
        type=int,
        default=32,
        metavar="N",
        help="queries per decomposition cluster (with --decompose; default 32)",
    )
    solve.add_argument(
        "--budget-ms", type=float, default=1000.0, help="classical time budget in milliseconds"
    )
    solve.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document instead of tables",
    )
    solve.add_argument(
        "--trace",
        type=str,
        metavar="PATH",
        default=None,
        help="record pipeline spans and write them as NDJSON here",
    )

    batch = subparsers.add_parser(
        "batch",
        help="solve a JSONL workload through the solver service",
        description=(
            "Read one instance spec per line (a full request with a 'problem' "
            "dict, a bare problem dict, or a generator spec like "
            '{"queries": 8, "plans": 2, "seed": 3}) and stream one JSON '
            "result per line as jobs finish."
        ),
    )
    batch.add_argument(
        "input", type=str, help="JSONL workload file, or '-' to read stdin"
    )
    batch.add_argument(
        "--solver",
        type=str,
        default=PORTFOLIO_SOLVER,
        help="registered solver name, or 'portfolio' to race (default)",
    )
    batch.add_argument(
        "--solvers",
        type=str,
        nargs="+",
        default=None,
        help="restrict the portfolio to these registered solvers",
    )
    batch.add_argument(
        "--budget-ms", type=float, default=1000.0, help="per-job time budget in milliseconds"
    )
    batch.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = solve inline)"
    )
    batch.add_argument(
        "--seed", type=int, default=0, help="base seed for deterministic per-job seeds"
    )
    batch.add_argument(
        "--cache-file",
        type=str,
        default=None,
        help="JSON result cache; warm entries are served without re-solving",
    )
    batch.add_argument(
        "--output", type=str, default=None, help="write result JSONL here instead of stdout"
    )
    batch.add_argument(
        "--trace",
        type=str,
        metavar="PATH",
        default=None,
        help="record pipeline spans and write them as NDJSON here",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the async solver server",
        description=(
            "Start a long-running solver server speaking the newline-"
            "delimited JSON protocol (docs/server.md). Stop it with "
            "SIGINT/SIGTERM (graceful drain) or a client 'shutdown' op."
        ),
    )
    serve.add_argument("--host", type=str, default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7337, help="bind port (0 = OS-assigned)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="concurrent solver jobs"
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "shard solving across this many worker processes "
            "(0 = in-process threads, -1 = one shard per CPU core)"
        ),
    )
    serve.add_argument(
        "--shard-heartbeat-s",
        type=float,
        default=1.0,
        help="shard metrics/health heartbeat period in seconds",
    )
    serve.add_argument(
        "--fusion-window-ms",
        type=float,
        default=0.0,
        help=(
            "fuse annealing jobs admitted within this window into one "
            "block-diagonal anneal (0 = off; see docs/fusion.md; "
            "ignored with --shards)"
        ),
    )
    serve.add_argument(
        "--fusion-max-jobs",
        type=int,
        default=8,
        help="flush a fusion window early once it holds this many jobs",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=128, help="admission-control queue bound"
    )
    serve.add_argument(
        "--max-jobs-per-client",
        type=int,
        default=None,
        help="per-client queued-job quota (default: unbounded)",
    )
    serve.add_argument(
        "--budget-cap-ms",
        type=float,
        default=None,
        help="reject jobs requesting more than this time budget",
    )
    serve.add_argument(
        "--solvers",
        type=str,
        nargs="+",
        default=None,
        help="restrict the portfolio line-up to these registered solvers",
    )
    serve.add_argument(
        "--cache-file",
        type=str,
        default=None,
        help="persistent JSON result cache shared by all clients",
    )
    serve.add_argument(
        "--cache-ttl-s",
        type=float,
        default=None,
        help="expire cached results older than this many seconds",
    )
    serve.add_argument(
        "--trace",
        type=str,
        metavar="PATH",
        default=None,
        help=(
            "record pipeline spans (including spans adopted from shard "
            "processes) and write them as NDJSON here on shutdown"
        ),
    )

    submit = subparsers.add_parser(
        "submit",
        help="send a JSONL workload to a running server",
        description=(
            "Read one instance spec per line (same shapes as 'batch'), "
            "submit everything to a running repro-mqo server, and stream "
            "one JSON result per line as jobs finish."
        ),
    )
    submit.add_argument(
        "input", type=str, help="JSONL workload file, or '-' to read stdin"
    )
    submit.add_argument("--host", type=str, default="127.0.0.1", help="server address")
    submit.add_argument("--port", type=int, default=7337, help="server port")
    submit.add_argument(
        "--solver",
        type=str,
        default=None,
        help="solver applied to specs that do not name one",
    )
    submit.add_argument(
        "--budget-ms",
        type=float,
        default=None,
        help="time budget applied to specs that do not carry one",
    )
    submit.add_argument(
        "--seed", type=int, default=0, help="base seed for deterministic per-job seeds"
    )
    submit.add_argument(
        "--priority",
        choices=["high", "normal", "low"],
        default=None,
        help="queue priority of the submitted jobs",
    )
    submit.add_argument(
        "--client",
        type=str,
        default="",
        help="client name used for per-client queue fairness",
    )
    submit.add_argument(
        "--stream",
        action="store_true",
        help="solve jobs one at a time and print anytime updates as JSONL too",
    )
    submit.add_argument(
        "--timeout-s", type=float, default=120.0, help="socket timeout per reply"
    )
    submit.add_argument(
        "--output", type=str, default=None, help="write result JSONL here instead of stdout"
    )

    bench = subparsers.add_parser(
        "bench",
        help="run a workload suite through the benchmark orchestrator",
        description=(
            "Run every scenario of a registered workload suite against a "
            "solver (in-process service or a real server on an ephemeral "
            "port) and write one schema-validated BENCH_<suite>.json with "
            "per-scenario latency, throughput and solution quality. "
            "See docs/benchmarks.md."
        ),
    )
    bench.add_argument(
        "--suite", type=str, default="smoke", help="registered workload suite name"
    )
    bench.add_argument(
        "--list",
        action="store_true",
        help="list registered suites and scenario families, then exit",
    )
    bench.add_argument(
        "--mode",
        choices=["service", "server"],
        default="service",
        help="run through the in-process service or a real TCP server",
    )
    bench.add_argument(
        "--solver",
        type=str,
        default="CLIMB",
        help="registered solver name, or 'portfolio' to race",
    )
    bench.add_argument(
        "--budget-ms",
        type=float,
        default=None,
        help="per-job budget override (default: the suite's)",
    )
    bench.add_argument(
        "--instances",
        type=int,
        default=None,
        help="instances per scenario override (default: the suite's)",
    )
    bench.add_argument(
        "--seed", type=int, default=0, help="base seed for per-job solve seeds"
    )
    bench.add_argument(
        "--workers", type=int, default=0, help="server worker slots (server mode)"
    )
    bench.add_argument(
        "--quality-reference",
        type=str,
        default="GREEDY",
        help="reference solver for the quality gap ('' disables)",
    )
    bench.add_argument(
        "--output-dir",
        type=str,
        default="benchmark_results",
        help="directory receiving BENCH_<suite>.json",
    )
    bench.add_argument(
        "--no-save",
        action="store_true",
        help="print the summary without writing the BENCH document",
    )
    bench.add_argument(
        "--emit-workload",
        type=str,
        metavar="PATH",
        default=None,
        help="write the suite as a JSONL workload for batch/submit, then exit",
    )
    bench.add_argument(
        "--trace",
        type=str,
        metavar="PATH",
        default=None,
        help="write the spans recorded during the run as NDJSON here",
    )

    metrics = subparsers.add_parser(
        "metrics",
        help="fetch Prometheus metrics from a running server",
        description=(
            "Connect to a running repro-mqo server, issue the 'metrics' "
            "protocol op, and print the Prometheus text exposition to "
            "stdout (suitable for piping into promtool or a file scrape)."
        ),
    )
    metrics.add_argument("--host", type=str, default="127.0.0.1", help="server address")
    metrics.add_argument("--port", type=int, default=7337, help="server port")
    metrics.add_argument(
        "--timeout-s", type=float, default=10.0, help="socket timeout for the reply"
    )

    top = subparsers.add_parser(
        "top",
        help="live per-shard view of a running server",
        description=(
            "Poll a running repro-mqo server's stats, health and metrics "
            "ops and render a per-shard table (throughput, latency "
            "percentiles, queue depths, restarts). On a terminal the view "
            "refreshes in place until interrupted; when stdout is piped it "
            "degrades to a single snapshot."
        ),
    )
    top.add_argument("--host", type=str, default="127.0.0.1", help="server address")
    top.add_argument("--port", type=int, default=7337, help="server port")
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    top.add_argument(
        "--count",
        type=int,
        default=0,
        help="stop after this many refreshes (0 = until interrupted)",
    )
    top.add_argument(
        "--timeout-s", type=float, default=10.0, help="socket timeout per poll"
    )

    capacity = subparsers.add_parser(
        "capacity", help="print the Figure 7 capacity frontier for qubit budgets"
    )
    capacity.add_argument(
        "--qubits",
        type=int,
        nargs="+",
        default=[1152, 2304, 4608],
        help="qubit budgets to project",
    )
    capacity.add_argument(
        "--pattern",
        choices=["clustered", "native"],
        default="clustered",
        help="embedding pattern used for the projection",
    )

    subparsers.add_parser("info", help="print device and profile information")
    return parser


class _TraceRecorder:
    """Enable tracing for a CLI command and write the spans on exit.

    A no-op when ``path`` is None, so commands pay nothing unless
    ``--trace`` was given.  Spans already buffered before the command
    started are discarded rather than attributed to this run.
    """

    def __init__(self, path: Optional[str]) -> None:
        self.path = path

    def __enter__(self) -> "_TraceRecorder":
        if self.path is not None:
            self._was_enabled = get_tracer().enabled
            configure_tracer(True).drain()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.path is not None:
            spans = get_tracer().drain()
            configure_tracer(self._was_enabled)
            write_ndjson(spans, self.path)
            print(f"wrote {len(spans)} spans to {self.path}", file=sys.stderr)


def _run_solve(args: argparse.Namespace) -> int:
    with _TraceRecorder(args.trace):
        return _run_solve_traced(args)


def _run_solve_traced(args: argparse.Namespace) -> int:
    if args.problem_file:
        problem = load_problem(args.problem_file)
    else:
        problem = generate_paper_testcase(args.queries, args.plans, seed=args.seed)
    if not args.json:
        print(problem.describe())

    solver_payloads = []
    qubits_per_variable = None  # no QUBO embedding on the decomposed path
    if args.decompose:
        from repro.core.decomposition import ParallelDecomposition

        decomposition = ParallelDecomposition(max_cluster_size=args.max_cluster_size)
        outcome = decomposition.solve(
            problem, time_budget_ms=args.budget_ms, seed=args.seed
        )
        trajectory = outcome.trajectory
        if not args.json:
            print(
                f"decomposed into {outcome.num_clusters} clusters over "
                f"{outcome.num_waves} waves"
                + (f" ({len(outcome.errors)} cluster solves failed)" if outcome.errors else "")
            )
        rows = [
            (
                trajectory.solver_name,
                trajectory.best_cost,
                trajectory.total_time_ms,
                float("nan"),
            )
        ]
        if args.json:
            request = SolveRequest(
                problem=problem,
                solver=trajectory.solver_name,
                time_budget_ms=args.budget_ms,
                seed=args.seed,
                job_id=problem.name,
            )
            solver_payloads.append(SolveResult.from_trajectory(request, trajectory))
    else:
        pipeline = QuantumMQO(seed=args.seed)
        result = pipeline.solve(problem, num_reads=args.reads)
        qubits_per_variable = result.qubits_per_variable
        rows = [
            (
                "QA",
                result.best_solution.cost,
                result.device_time_ms,
                result.qubits_per_variable,
            )
        ]
        if args.json:
            solver_payloads.append(
                SolveResult(
                    job_id=problem.name,
                    solver="QA",
                    winner="QA",
                    best_cost=result.best_solution.cost,
                    selected_plans=sorted(result.best_solution.selected_plans),
                    is_valid=result.best_solution.is_valid,
                    trajectory=list(result.trajectory),
                    total_time_ms=result.device_time_ms,
                    seed=args.seed,
                )
            )

    if args.baselines:
        for solver in (
            IntegerProgrammingMQOSolver(),
            IteratedHillClimbing(),
            GeneticAlgorithmSolver(population_size=50),
        ):
            trajectory = solver.solve(problem, time_budget_ms=args.budget_ms, seed=args.seed)
            rows.append((solver.name, trajectory.best_cost, trajectory.total_time_ms, float("nan")))
            if args.json:
                request = SolveRequest(
                    problem=problem,
                    solver=solver.name,
                    time_budget_ms=args.budget_ms,
                    seed=args.seed,
                    job_id=problem.name,
                )
                solver_payloads.append(SolveResult.from_trajectory(request, trajectory))

    if args.json:
        document = {
            "problem": {
                "name": problem.name,
                "num_queries": problem.num_queries,
                "num_plans": problem.num_plans,
                "num_savings": problem.num_savings,
                "canonical_hash": problem.canonical_hash(),
            },
            "qubits_per_variable": qubits_per_variable,
            "results": [payload.to_dict() for payload in solver_payloads],
        }
        print(json.dumps(document, indent=2))
        return 0

    print()
    print(
        format_table(
            ["solver", "best cost", "time (ms)", "qubits/var"],
            rows,
            float_fmt=".3f",
        )
    )
    return 0


#: Jobs dispatched per batch-executor round when streaming a workload.
#: Bounds the number of parsed problems resident in memory at once; job
#: ids and seeds are identical to the old whole-file behaviour.
_BATCH_CHUNK_SIZE = 64

#: Completed results remembered for cross-chunk duplicate echoing (the
#: executor's in-batch dedupe only sees one chunk at a time).
_BATCH_DEDUPE_MEMORY = 1024


def _iter_workload(source: str) -> Iterator[dict]:
    """Lazily parse a JSONL workload from a file path or stdin (``-``).

    Lines are read and parsed one at a time, so arbitrarily large
    workload files never spike the resident set; a malformed line only
    raises when the stream reaches it.
    """
    if source == "-":
        handle = sys.stdin
        owns_handle = False
    else:
        try:
            handle = open(source, "r", encoding="utf-8")
        except OSError as exc:
            raise ReproError(f"cannot read workload file {source}: {exc}") from exc
        owns_handle = True
    try:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"workload line {line_number} is not valid JSON: {exc}"
                ) from exc
    finally:
        if owns_handle:
            handle.close()


def _iter_requests(args: argparse.Namespace) -> Iterator[SolveRequest]:
    """Build per-job requests lazily from the workload stream.

    Job ids and seeds derive from the *global* position, so chunked
    execution replays exactly like the old load-everything behaviour.
    """
    for index, spec in enumerate(_iter_workload(args.input)):
        request = request_from_spec(
            spec,
            default_solver=args.solver,
            default_budget_ms=args.budget_ms,
            job_id=f"job-{index}",
        )
        if request.solvers is None and args.solvers is not None:
            request.solvers = tuple(args.solvers)
        if request.seed is None:
            request.seed = derive_job_seed(args.seed, index)
        yield request


def _run_batch(args: argparse.Namespace) -> int:
    with _TraceRecorder(args.trace):
        return _run_batch_traced(args)


def _run_batch_traced(args: argparse.Namespace) -> int:
    cache = ResultCache(path=args.cache_file) if args.cache_file else None
    # One cache save at the end and one process pool for the whole
    # workload, however many chunks it spans.
    executor = BatchExecutor(
        workers=args.workers, cache=cache, autosave=False, keep_pool=True
    )
    sink = None  # opened on the first result, so a bad/empty input
    # never truncates an existing --output file

    stopwatch = Stopwatch().start()
    total = hits = failures = 0
    requests = _iter_requests(args)
    # Duplicates across chunk boundaries are echoed from here, preserving
    # the whole-file dedupe semantics (keyed like the executor's in-batch
    # dedupe: cache key plus the exact problem token) with bounded memory.
    seen: "OrderedDict[str, SolveResult]" = OrderedDict()

    def emit(result: SolveResult) -> None:
        nonlocal total, hits, failures, sink
        if sink is None:
            sink = open(args.output, "w") if args.output else sys.stdout
        total += 1
        hits += int(result.from_cache)
        failures += int(not result.ok)
        sink.write(json.dumps(result.to_dict()) + "\n")
        sink.flush()

    try:
        while True:
            chunk = []
            keys = []
            while len(chunk) < _BATCH_CHUNK_SIZE:
                request = next(requests, None)
                if request is None:
                    break
                key = dedupe_key(request)
                prior = seen.get(key)
                if prior is not None:
                    emit(echo_result_for_duplicate(prior, request))
                    continue
                chunk.append(request)
                keys.append(key)
            if not chunk:
                break
            for index, result in executor.run_iter(chunk, base_seed=args.seed):
                if keys[index] not in seen:
                    seen[keys[index]] = result
                    while len(seen) > _BATCH_DEDUPE_MEMORY:
                        seen.popitem(last=False)
                emit(result)
    finally:
        executor.close()
        if cache is not None and cache.path is not None:
            cache.save()
        if sink is not None and sink is not sys.stdout:
            sink.close()
    if total == 0:
        print("workload is empty; nothing to solve", file=sys.stderr)
        return 1
    print(
        f"solved {total} jobs in {stopwatch.elapsed_ms() / 1000.0:.2f}s "
        f"({hits} cache hits, {failures} failures, workers={args.workers})",
        file=sys.stderr,
    )
    return 1 if failures else 0


#: How often a serving process checkpoints its --cache-file to disk.
_SERVE_CACHE_SAVE_INTERVAL_S = 30.0


def _build_shard_frontend(
    solvers: Optional[Sequence[str]] = None,
    cache_file: Optional[str] = None,
    cache_ttl_s: Optional[float] = None,
) -> ServiceFrontend:
    """Build one shard's service frontend (called inside the shard process).

    Each shard owns a private frontend and result cache, so hash-routed
    jobs always land on the shard whose cache already holds their
    problem.  A ``--cache-file`` is loaded once at shard boot as a warm
    start; fresh shard results are mirrored back into the parent's
    cache (see :class:`~repro.server.sharding.ShardPool`), and only the
    parent process checkpoints that cache back to disk.
    """
    cache = ResultCache(path=cache_file, ttl_seconds=cache_ttl_s) if cache_file else None
    return ServiceFrontend(cache=cache, portfolio_solvers=solvers)


def _run_serve(args: argparse.Namespace) -> int:
    """Run the solver server until SIGINT/SIGTERM or a client shutdown.

    With ``--trace`` the process tracer is enabled for the server's
    lifetime; shard processes see the enablement through the per-job
    ``collect_spans`` flag, so their spans are adopted into this buffer
    and written alongside the parent's own on shutdown.
    """
    with _TraceRecorder(args.trace):
        return _run_serve_traced(args)


def _run_serve_traced(args: argparse.Namespace) -> int:
    """The ``serve`` body, run inside the optional trace recorder."""
    cache = (
        ResultCache(path=args.cache_file, ttl_seconds=args.cache_ttl_s)
        if args.cache_file
        else None
    )
    frontend = ServiceFrontend(cache=cache, portfolio_solvers=args.solvers)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        max_jobs_per_client=args.max_jobs_per_client,
        max_budget_ms=args.budget_cap_ms,
        shards=args.shards,
        shard_heartbeat_s=args.shard_heartbeat_s,
        fusion_window_ms=args.fusion_window_ms,
        fusion_max_jobs=args.fusion_max_jobs,
    )
    # functools.partial over a module-level function keeps the factory
    # picklable, so shards can boot under the spawn start method too.
    frontend_factory = (
        functools.partial(
            _build_shard_frontend,
            solvers=args.solvers,
            cache_file=args.cache_file,
            cache_ttl_s=args.cache_ttl_s,
        )
        if args.shards != 0
        else None
    )
    server = SolverServer(
        config=config, frontend=frontend, frontend_factory=frontend_factory
    )

    def save_cache() -> None:
        """Checkpoint the shared result cache (atomic; errors reported)."""
        if cache is None or cache.path is None:
            return
        try:
            cache.save()
        except (ReproError, OSError) as exc:
            print(f"repro-mqo serve: cache save failed: {exc}", file=sys.stderr)

    async def periodic_cache_save() -> None:
        """Checkpoint the cache while serving, so a crash loses little.

        The JSON dump + disk write runs on the executor — checkpointing
        must not stall the event loop that serves every connection.
        """
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(_SERVE_CACHE_SAVE_INTERVAL_S)
            await loop.run_in_executor(None, save_cache)

    async def main() -> None:
        """Serve until stopped, draining gracefully on signals."""
        await server.start()
        loop = asyncio.get_running_loop()
        try:
            import signal

            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(server.stop())
                )
        except (ImportError, NotImplementedError, RuntimeError):
            pass  # platforms without signal handler support still serve
        saver = (
            loop.create_task(periodic_cache_save())
            if cache is not None and cache.path is not None
            else None
        )
        print(
            f"repro-mqo serve: listening on {server.host}:{server.port} "
            f"(workers={config.workers}, shards={config.shards}, "
            f"fusion_window_ms={config.fusion_window_ms}, "
            f"queue={config.queue_capacity})",
            file=sys.stderr,
            flush=True,
        )
        try:
            await server.wait_stopped()
        finally:
            if saver is not None:
                saver.cancel()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass  # signal handler unavailable; exiting without drain
    finally:
        # Persist on every exit path, including a bare KeyboardInterrupt.
        save_cache()
    print("repro-mqo serve: stopped", file=sys.stderr)
    return 0


#: Outstanding pipelined jobs per ``repro-mqo submit`` connection.  Kept
#: well below the server's default queue capacity so a long workload
#: self-throttles instead of tripping admission control.
_SUBMIT_WINDOW = 32


def _submit_spec_and_seed(
    spec: object, base_seed: int, index: int
) -> Tuple[object, Optional[int]]:
    """Derive the per-job solve seed without disturbing problem generation.

    ``request_from_spec`` falls back to a spec's ``seed`` as the
    *generator* seed for generator specs, so injecting the derived solve
    seed naively would change which problem is built.  Matching the
    ``batch`` command's semantics, a generator spec without an explicit
    ``generator_seed`` keeps generating as if no seed were given, and the
    derived seed applies to solving only.
    """
    if not isinstance(spec, dict) or "seed" in spec:
        return spec, None
    if "queries" in spec and "problem" not in spec and "generator_seed" not in spec:
        spec = dict(spec, generator_seed=None)
    return spec, derive_job_seed(base_seed, index)


def _submit_budget(spec: object, default_budget_ms: Optional[float]) -> Optional[float]:
    """--budget-ms is a *default*, like batch: a spec's own budget wins."""
    if isinstance(spec, dict) and ("budget_ms" in spec or "time_budget_ms" in spec):
        return None
    return default_budget_ms


def _submit_job_id(spec: object, index: int) -> Optional[str]:
    """Stable per-line result ids (``job-N``), matching ``batch`` output."""
    if isinstance(spec, dict) and spec.get("job_id"):
        return None
    return f"job-{index}"


def _submit_solver(spec: object, default_solver: Optional[str]) -> Optional[str]:
    """--solver is a *default*, like batch: a spec's own solver wins."""
    if isinstance(spec, dict) and spec.get("solver"):
        return None
    return default_solver


def _run_submit(args: argparse.Namespace) -> int:
    """Submit a workload to a running server and stream results back."""
    sink = None  # opened on the first frame; see _run_batch
    stopwatch = Stopwatch().start()
    total = failures = 0

    def emit(document: dict) -> None:
        nonlocal sink
        if sink is None:
            sink = open(args.output, "w") if args.output else sys.stdout
        sink.write(json.dumps(document) + "\n")
        sink.flush()

    def collect(client: SolverClient, job_id: str) -> None:
        nonlocal total, failures
        result = client.wait(job_id)
        total += 1
        failures += int(not result.ok)
        emit(result.to_dict())

    try:
        with SolverClient(
            host=args.host,
            port=args.port,
            client_name=args.client,
            timeout_s=args.timeout_s,
        ) as client:
            if args.stream:
                # One job at a time so anytime updates interleave cleanly.
                for index, spec in enumerate(_iter_workload(args.input)):
                    spec, seed = _submit_spec_and_seed(spec, args.seed, index)
                    result = client.solve(
                        spec,
                        solver=_submit_solver(spec, args.solver),
                        budget_ms=_submit_budget(spec, args.budget_ms),
                        seed=seed,
                        job_id=_submit_job_id(spec, index),
                        priority=args.priority,
                        on_update=emit,
                    )
                    total += 1
                    failures += int(not result.ok)
                    emit(result.to_dict())
            else:
                # Pipelined with a bounded window: collect the oldest
                # result whenever the window fills (or the server pushes
                # back), so arbitrarily long workloads neither overrun
                # admission control nor hold every job id in flight.
                pending: "deque[str]" = deque()
                for index, spec in enumerate(_iter_workload(args.input)):
                    spec, seed = _submit_spec_and_seed(spec, args.seed, index)
                    while True:
                        try:
                            pending.append(
                                client.submit(
                                    spec,
                                    solver=_submit_solver(spec, args.solver),
                                    budget_ms=_submit_budget(spec, args.budget_ms),
                                    seed=seed,
                                    job_id=_submit_job_id(spec, index),
                                    priority=args.priority,
                                )
                            )
                            break
                        except AdmissionError as exc:
                            # Only transient backpressure is retryable;
                            # 'budget'/'draining' rejections repeat forever.
                            if exc.code not in ("queue_full", "client_quota"):
                                raise
                            if not pending:
                                raise  # rejected with nothing to drain
                            collect(client, pending.popleft())
                    if len(pending) >= _SUBMIT_WINDOW:
                        collect(client, pending.popleft())
                while pending:
                    collect(client, pending.popleft())
    finally:
        if sink is not None and sink is not sys.stdout:
            sink.close()
    if total == 0:
        print("workload is empty; nothing to submit", file=sys.stderr)
        return 1
    print(
        f"submitted {total} jobs to {args.host}:{args.port} in "
        f"{stopwatch.elapsed_ms() / 1000.0:.2f}s ({failures} failures)",
        file=sys.stderr,
    )
    return 1 if failures else 0


def _run_bench(args: argparse.Namespace) -> int:
    """Run a workload suite through the benchmark orchestrator."""
    from repro.bench import BenchOrchestrator, BenchRunConfig, emit_workload_jsonl, render_summary
    from repro.workloads import list_families, list_suites

    if args.list:
        print("Workload suites:")
        for suite in list_suites():
            arrival = f", {suite.arrival.kind} arrivals" if suite.arrival else ""
            print(
                f"  {suite.name:16s} {len(suite.scenarios):2d} scenarios, "
                f"budget {suite.default_budget_ms:g} ms{arrival} — {suite.description}"
            )
            for spec in suite.scenarios:
                print(f"      {spec.name:22s} [{spec.family}] seed={spec.seed}")
        print("\nScenario families:")
        for family in list_families():
            print(f"  {family.name:16s} {family.description}")
        return 0

    if args.emit_workload:
        path = emit_workload_jsonl(
            args.suite,
            args.emit_workload,
            solver=args.solver,
            budget_ms=args.budget_ms,
            instances=args.instances,
        )
        print(f"wrote workload JSONL to {path}", file=sys.stderr)
        return 0

    config = BenchRunConfig(
        suite=args.suite,
        mode=args.mode,
        solver=args.solver,
        budget_ms=args.budget_ms,
        instances=args.instances,
        seed=args.seed,
        workers=args.workers,
        quality_reference=args.quality_reference,
    )
    orchestrator = BenchOrchestrator(config)
    if args.no_save:
        document = orchestrator.run()
    else:
        document, path = orchestrator.run_and_save(args.output_dir)
        print(f"wrote {path}", file=sys.stderr)
    if args.trace:
        # The orchestrator records spans on every run; export its buffer.
        write_ndjson(orchestrator.last_spans, args.trace)
        print(
            f"wrote {len(orchestrator.last_spans)} spans to {args.trace}",
            file=sys.stderr,
        )
    print(render_summary(document))
    failures = document["totals"]["failures"]
    if failures:
        print(f"error: {failures} job(s) failed", file=sys.stderr)
        return 1
    return 0


def _run_metrics(args: argparse.Namespace) -> int:
    """Print a running server's Prometheus exposition text."""
    with SolverClient(host=args.host, port=args.port, timeout_s=args.timeout_s) as client:
        text = client.metrics_text()
    sys.stdout.write(text)
    if text and not text.endswith("\n"):
        sys.stdout.write("\n")
    return 0


#: One ``repro_server_shard_*`` sample in the Prometheus exposition.
#: Group 1 is the short series name with any ``_total`` suffix stripped
#: (``jobs``, ``failures``, ``heartbeat_age_seconds``, ...), group 2 the
#: shard index, group 3 the value.
_SHARD_SERIES_RE = re.compile(
    r'^repro_server_shard_([a-z0-9_]+?)(?:_total)?\{shard="(\d+)"\}\s+(\S+)$'
)


def _parse_shard_series(metrics_text: str) -> dict:
    """Per-shard samples parsed out of the federated exposition text.

    Returns ``{shard_index: {short_name: value}}`` covering every
    ``repro_server_shard_*{shard="N"}`` series.  The parser is
    deliberately narrow — it reads only the series this module's ``top``
    view renders, not general Prometheus text.
    """
    series: dict = {}
    for line in metrics_text.splitlines():
        match = _SHARD_SERIES_RE.match(line.strip())
        if match is None:
            continue
        short, shard, value = match.groups()
        try:
            series.setdefault(shard, {})[short] = float(value)
        except ValueError:
            continue
    return series


def _render_top(host: str, port: int, stats: dict, health: dict, metrics_text: str) -> str:
    """Render one ``top`` frame from the three op payloads (pure).

    ``stats`` supplies throughput and latency percentiles, ``health``
    the per-shard liveness state, and ``metrics_text`` the per-shard
    counters (jobs, failures, retries) that only exist as labelled
    Prometheus series.
    """
    counters = stats.get("counters", {})
    queue_wait = stats.get("queue_wait", {})
    job_run = stats.get("job_run", {})
    lines = [
        f"repro-mqo top — {host}:{port} — verdict {health.get('verdict', '?')} "
        f"(tier {health.get('tier', '?')}), uptime {stats.get('uptime_s', 0.0):.1f}s",
        f"jobs: {counters.get('jobs_finished', 0)} finished, "
        f"{counters.get('jobs_failed', 0)} failed, "
        f"{stats.get('jobs_finished_per_second', 0.0):.2f}/s | "
        f"queue: {stats.get('queue_depth', 0)} queued, "
        f"{stats.get('inflight', 0)} running | "
        f"streams: {stats.get('stream_channels', 0)}",
        f"queue wait p50/p99: {queue_wait.get('p50_ms', 0.0):.1f}/"
        f"{queue_wait.get('p99_ms', 0.0):.1f} ms | "
        f"run p50/p99: {job_run.get('p50_ms', 0.0):.1f}/"
        f"{job_run.get('p99_ms', 0.0):.1f} ms",
    ]
    shards = health.get("shards")
    if not shards:
        lines.append(f"workers active: {health.get('active', stats.get('inflight', 0))}")
        return "\n".join(lines) + "\n"
    per_shard = _parse_shard_series(metrics_text)
    lines.append(
        f"shards: {health.get('alive', 0)}/{health.get('count', 0)} alive, "
        f"{health.get('restarts', 0)} restarts"
    )
    lines.append("")
    rows = []
    for index in sorted(shards, key=int):
        state = shards[index]
        samples = per_shard.get(index, {})
        if state.get("dead"):
            verdict = "dead"
        elif not state.get("ready"):
            verdict = "boot"
        elif state.get("stale"):
            verdict = "stale"
        else:
            verdict = "up"
        rows.append(
            (
                index,
                state.get("pid") or "-",
                verdict,
                int(samples.get("jobs", 0)),
                int(samples.get("failures", 0)),
                int(samples.get("retries", 0)),
                state.get("restarts", 0),
                state.get("assigned", 0),
                state.get("outbox", 0),
                state.get("overflow", 0),
                f"{state.get('heartbeat_age_s', 0.0):.1f}s",
            )
        )
    lines.append(
        format_table(
            [
                "shard", "pid", "state", "jobs", "fail", "retry",
                "restarts", "assigned", "outbox", "overflow", "hb age",
            ],
            rows,
        )
    )
    return "\n".join(lines) + "\n"


def _run_top(args: argparse.Namespace) -> int:
    """Poll a running server and render the live per-shard view.

    On a terminal the frame redraws in place (ANSI clear) every
    ``--interval`` seconds until ``--count`` frames were shown or the
    user interrupts; with stdout piped and no explicit ``--count`` it
    prints a single frame and exits, so scripts get one parseable dump.
    """
    interactive = sys.stdout.isatty()
    limit: Optional[int] = args.count if args.count > 0 else (None if interactive else 1)
    rendered = 0
    try:
        while True:
            with SolverClient(
                host=args.host, port=args.port, timeout_s=args.timeout_s
            ) as client:
                stats = client.stats()
                health = client.health()
                metrics_text = client.metrics_text()
            frame = _render_top(args.host, args.port, stats, health, metrics_text)
            if interactive:
                sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            sys.stdout.write(frame)
            sys.stdout.flush()
            rendered += 1
            if limit is not None and rendered >= limit:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _run_capacity(args: argparse.Namespace) -> int:
    print(figure7_table(qubit_budgets=tuple(args.qubits), pattern=args.pattern))
    return 0


def _run_info() -> int:
    profile = get_profile()
    info = {
        "device": {
            "name": DWAVE_2X.name,
            "total_qubits": DWAVE_2X.total_qubits,
            "functional_qubits": DWAVE_2X.functional_qubits,
            "time_per_read_us": DWAVE_2X.time_per_read_us,
        },
        "profile": {
            "name": profile.name,
            "num_instances": profile.num_instances,
            "classical_budget_ms": profile.classical_budget_ms,
            "num_reads": profile.num_reads,
        },
    }
    print(json.dumps(info, indent=2))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-mqo`` command."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "solve":
            return _run_solve(args)
        if args.command == "batch":
            return _run_batch(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "submit":
            return _run_submit(args)
        if args.command == "bench":
            return _run_bench(args)
        if args.command == "metrics":
            return _run_metrics(args)
        if args.command == "top":
            return _run_top(args)
        if args.command == "capacity":
            return _run_capacity(args)
        if args.command == "info":
            return _run_info()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
