"""Command-line interface: ``repro-mqo``.

Three subcommands cover the common workflows:

* ``solve``    — generate (or load) an instance and solve it on the
  simulated annealer plus selected classical baselines,
* ``capacity`` — print the Figure 7 capacity frontier for a qubit budget,
* ``info``     — print the device model and profile configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Sequence

from repro.baselines.genetic import GeneticAlgorithmSolver
from repro.baselines.hillclimb import IteratedHillClimbing
from repro.baselines.ilp_mqo import IntegerProgrammingMQOSolver
from repro.chimera.hardware import DWAVE_2X
from repro.core.pipeline import QuantumMQO
from repro.experiments.figures import figure7_table
from repro.experiments.profiles import get_profile
from repro.mqo.generator import generate_paper_testcase
from repro.mqo.serialization import load_problem
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-mqo`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-mqo",
        description="Multiple query optimization on a simulated adiabatic quantum annealer",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="solve one MQO instance")
    solve.add_argument("--queries", type=int, default=20, help="number of queries to generate")
    solve.add_argument("--plans", type=int, default=2, help="plans per query")
    solve.add_argument("--seed", type=int, default=0, help="random seed")
    solve.add_argument("--reads", type=int, default=200, help="annealing reads")
    solve.add_argument(
        "--problem-file", type=str, default=None, help="load a JSON problem instead of generating"
    )
    solve.add_argument(
        "--baselines",
        action="store_true",
        help="also run the classical baselines (LIN-MQO, CLIMB, GA(50))",
    )
    solve.add_argument(
        "--budget-ms", type=float, default=1000.0, help="classical time budget in milliseconds"
    )

    capacity = subparsers.add_parser(
        "capacity", help="print the Figure 7 capacity frontier for qubit budgets"
    )
    capacity.add_argument(
        "--qubits",
        type=int,
        nargs="+",
        default=[1152, 2304, 4608],
        help="qubit budgets to project",
    )
    capacity.add_argument(
        "--pattern",
        choices=["clustered", "native"],
        default="clustered",
        help="embedding pattern used for the projection",
    )

    subparsers.add_parser("info", help="print device and profile information")
    return parser


def _run_solve(args: argparse.Namespace) -> int:
    if args.problem_file:
        problem = load_problem(args.problem_file)
    else:
        problem = generate_paper_testcase(args.queries, args.plans, seed=args.seed)
    print(problem.describe())

    pipeline = QuantumMQO(seed=args.seed)
    result = pipeline.solve(problem, num_reads=args.reads)
    rows = [
        (
            "QA",
            result.best_solution.cost,
            result.device_time_ms,
            result.qubits_per_variable,
        )
    ]

    if args.baselines:
        for solver in (
            IntegerProgrammingMQOSolver(),
            IteratedHillClimbing(),
            GeneticAlgorithmSolver(population_size=50),
        ):
            trajectory = solver.solve(problem, time_budget_ms=args.budget_ms, seed=args.seed)
            rows.append((solver.name, trajectory.best_cost, trajectory.total_time_ms, float("nan")))

    print()
    print(
        format_table(
            ["solver", "best cost", "time (ms)", "qubits/var"],
            rows,
            float_fmt=".3f",
        )
    )
    return 0


def _run_capacity(args: argparse.Namespace) -> int:
    print(figure7_table(qubit_budgets=tuple(args.qubits), pattern=args.pattern))
    return 0


def _run_info() -> int:
    profile = get_profile()
    info = {
        "device": {
            "name": DWAVE_2X.name,
            "total_qubits": DWAVE_2X.total_qubits,
            "functional_qubits": DWAVE_2X.functional_qubits,
            "time_per_read_us": DWAVE_2X.time_per_read_us,
        },
        "profile": {
            "name": profile.name,
            "num_instances": profile.num_instances,
            "classical_budget_ms": profile.classical_budget_ms,
            "num_reads": profile.num_reads,
        },
    }
    print(json.dumps(info, indent=2))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-mqo`` command."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.command == "solve":
        return _run_solve(args)
    if args.command == "capacity":
        return _run_capacity(args)
    if args.command == "info":
        return _run_info()
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
