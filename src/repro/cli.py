"""Command-line interface: ``repro-mqo``.

Four subcommands cover the common workflows:

* ``solve``    — generate (or load) an instance and solve it on the
  simulated annealer plus selected classical baselines (``--json`` for
  machine-readable output),
* ``batch``    — stream a JSONL workload of instance specs through the
  solver service (portfolio racing, worker processes, result cache),
* ``capacity`` — print the Figure 7 capacity frontier for a qubit budget,
* ``info``     — print the device model and profile configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Sequence

from repro.baselines.genetic import GeneticAlgorithmSolver
from repro.baselines.hillclimb import IteratedHillClimbing
from repro.baselines.ilp_mqo import IntegerProgrammingMQOSolver
from repro.chimera.hardware import DWAVE_2X
from repro.core.pipeline import QuantumMQO
from repro.exceptions import ReproError
from repro.experiments.figures import figure7_table
from repro.experiments.profiles import get_profile
from repro.mqo.generator import generate_paper_testcase
from repro.mqo.serialization import load_problem
from repro.service.batch import BatchExecutor
from repro.service.cache import ResultCache
from repro.service.jobs import (
    PORTFOLIO_SOLVER,
    SolveRequest,
    SolveResult,
    request_from_spec,
)
from repro.utils.stopwatch import Stopwatch
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-mqo`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-mqo",
        description="Multiple query optimization on a simulated adiabatic quantum annealer",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="solve one MQO instance")
    solve.add_argument("--queries", type=int, default=20, help="number of queries to generate")
    solve.add_argument("--plans", type=int, default=2, help="plans per query")
    solve.add_argument("--seed", type=int, default=0, help="random seed")
    solve.add_argument("--reads", type=int, default=200, help="annealing reads")
    solve.add_argument(
        "--problem-file", type=str, default=None, help="load a JSON problem instead of generating"
    )
    solve.add_argument(
        "--baselines",
        action="store_true",
        help="also run the classical baselines (LIN-MQO, CLIMB, GA(50))",
    )
    solve.add_argument(
        "--budget-ms", type=float, default=1000.0, help="classical time budget in milliseconds"
    )
    solve.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document instead of tables",
    )

    batch = subparsers.add_parser(
        "batch",
        help="solve a JSONL workload through the solver service",
        description=(
            "Read one instance spec per line (a full request with a 'problem' "
            "dict, a bare problem dict, or a generator spec like "
            '{"queries": 8, "plans": 2, "seed": 3}) and stream one JSON '
            "result per line as jobs finish."
        ),
    )
    batch.add_argument(
        "input", type=str, help="JSONL workload file, or '-' to read stdin"
    )
    batch.add_argument(
        "--solver",
        type=str,
        default=PORTFOLIO_SOLVER,
        help="registered solver name, or 'portfolio' to race (default)",
    )
    batch.add_argument(
        "--solvers",
        type=str,
        nargs="+",
        default=None,
        help="restrict the portfolio to these registered solvers",
    )
    batch.add_argument(
        "--budget-ms", type=float, default=1000.0, help="per-job time budget in milliseconds"
    )
    batch.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = solve inline)"
    )
    batch.add_argument(
        "--seed", type=int, default=0, help="base seed for deterministic per-job seeds"
    )
    batch.add_argument(
        "--cache-file",
        type=str,
        default=None,
        help="JSON result cache; warm entries are served without re-solving",
    )
    batch.add_argument(
        "--output", type=str, default=None, help="write result JSONL here instead of stdout"
    )

    capacity = subparsers.add_parser(
        "capacity", help="print the Figure 7 capacity frontier for qubit budgets"
    )
    capacity.add_argument(
        "--qubits",
        type=int,
        nargs="+",
        default=[1152, 2304, 4608],
        help="qubit budgets to project",
    )
    capacity.add_argument(
        "--pattern",
        choices=["clustered", "native"],
        default="clustered",
        help="embedding pattern used for the projection",
    )

    subparsers.add_parser("info", help="print device and profile information")
    return parser


def _run_solve(args: argparse.Namespace) -> int:
    if args.problem_file:
        problem = load_problem(args.problem_file)
    else:
        problem = generate_paper_testcase(args.queries, args.plans, seed=args.seed)
    if not args.json:
        print(problem.describe())

    pipeline = QuantumMQO(seed=args.seed)
    result = pipeline.solve(problem, num_reads=args.reads)
    rows = [
        (
            "QA",
            result.best_solution.cost,
            result.device_time_ms,
            result.qubits_per_variable,
        )
    ]
    solver_payloads = []
    if args.json:
        solver_payloads.append(
            SolveResult(
                job_id=problem.name,
                solver="QA",
                winner="QA",
                best_cost=result.best_solution.cost,
                selected_plans=sorted(result.best_solution.selected_plans),
                is_valid=result.best_solution.is_valid,
                trajectory=list(result.trajectory),
                total_time_ms=result.device_time_ms,
                seed=args.seed,
            )
        )

    if args.baselines:
        for solver in (
            IntegerProgrammingMQOSolver(),
            IteratedHillClimbing(),
            GeneticAlgorithmSolver(population_size=50),
        ):
            trajectory = solver.solve(problem, time_budget_ms=args.budget_ms, seed=args.seed)
            rows.append((solver.name, trajectory.best_cost, trajectory.total_time_ms, float("nan")))
            if args.json:
                request = SolveRequest(
                    problem=problem,
                    solver=solver.name,
                    time_budget_ms=args.budget_ms,
                    seed=args.seed,
                    job_id=problem.name,
                )
                solver_payloads.append(SolveResult.from_trajectory(request, trajectory))

    if args.json:
        document = {
            "problem": {
                "name": problem.name,
                "num_queries": problem.num_queries,
                "num_plans": problem.num_plans,
                "num_savings": problem.num_savings,
                "canonical_hash": problem.canonical_hash(),
            },
            "qubits_per_variable": result.qubits_per_variable,
            "results": [payload.to_dict() for payload in solver_payloads],
        }
        print(json.dumps(document, indent=2))
        return 0

    print()
    print(
        format_table(
            ["solver", "best cost", "time (ms)", "qubits/var"],
            rows,
            float_fmt=".3f",
        )
    )
    return 0


def _read_workload(source: str) -> List[dict]:
    """Parse the JSONL workload from a file path or stdin (``-``)."""
    if source == "-":
        text = sys.stdin.read()
    else:
        try:
            text = Path(source).read_text()
        except OSError as exc:
            raise ReproError(f"cannot read workload file {source}: {exc}") from exc
    specs = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            specs.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ReproError(f"workload line {line_number} is not valid JSON: {exc}") from exc
    return specs


def _run_batch(args: argparse.Namespace) -> int:
    specs = _read_workload(args.input)
    requests = []
    for index, spec in enumerate(specs):
        request = request_from_spec(
            spec,
            default_solver=args.solver,
            default_budget_ms=args.budget_ms,
            job_id=f"job-{index}",
        )
        if request.solvers is None and args.solvers is not None:
            request.solvers = tuple(args.solvers)
        requests.append(request)
    if not requests:
        print("workload is empty; nothing to solve", file=sys.stderr)
        return 1

    cache = ResultCache(path=args.cache_file) if args.cache_file else None
    executor = BatchExecutor(workers=args.workers, cache=cache)
    sink = open(args.output, "w") if args.output else sys.stdout

    stopwatch = Stopwatch().start()
    hits = failures = 0
    try:
        for _, result in executor.run_iter(requests, base_seed=args.seed):
            hits += int(result.from_cache)
            failures += int(not result.ok)
            sink.write(json.dumps(result.to_dict()) + "\n")
            sink.flush()
    finally:
        if sink is not sys.stdout:
            sink.close()
    print(
        f"solved {len(requests)} jobs in {stopwatch.elapsed_ms() / 1000.0:.2f}s "
        f"({hits} cache hits, {failures} failures, workers={args.workers})",
        file=sys.stderr,
    )
    return 1 if failures else 0


def _run_capacity(args: argparse.Namespace) -> int:
    print(figure7_table(qubit_budgets=tuple(args.qubits), pattern=args.pattern))
    return 0


def _run_info() -> int:
    profile = get_profile()
    info = {
        "device": {
            "name": DWAVE_2X.name,
            "total_qubits": DWAVE_2X.total_qubits,
            "functional_qubits": DWAVE_2X.functional_qubits,
            "time_per_read_us": DWAVE_2X.time_per_read_us,
        },
        "profile": {
            "name": profile.name,
            "num_instances": profile.num_instances,
            "classical_budget_ms": profile.classical_budget_ms,
            "num_reads": profile.num_reads,
        },
    }
    print(json.dumps(info, indent=2))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-mqo`` command."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "solve":
            return _run_solve(args)
        if args.command == "batch":
            return _run_batch(args)
        if args.command == "capacity":
            return _run_capacity(args)
        if args.command == "info":
            return _run_info()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
