"""The paper's core contribution: solving MQO on a quantum annealer.

``repro.core`` wires the substrates together following Algorithm 1 of the
paper:

1. :mod:`repro.core.logical` — transform an MQO instance into a QUBO
   energy formula over one binary variable per plan (Section 4).
2. :mod:`repro.core.physical` — transform the logical QUBO into a
   physical QUBO over qubits of a Chimera topology, given a
   minor-embedding (Section 5).
3. :mod:`repro.core.pipeline` — run the annealing device (simulator) on
   the physical QUBO and map read-outs back to MQO solutions.
4. :mod:`repro.core.complexity` — the qubit-count analysis of Section 6
   and the capacity projections behind Figure 7.
"""

from repro.core.logical import LogicalMapping, LogicalMappingConfig, map_mqo_to_qubo
from repro.core.physical import PhysicalMapping, PhysicalMappingConfig, embed_logical_qubo
from repro.core.pipeline import QuantumMQO, QuantumMQOResult
from repro.core.decomposition import DecomposedQuantumMQO, DecompositionResult
from repro.core.complexity import (
    CapacityPoint,
    capacity_frontier,
    clustered_pattern_qubits,
    logical_qubit_lower_bound,
    max_queries_for_qubits,
    native_pattern_qubits,
)

__all__ = [
    "LogicalMapping",
    "LogicalMappingConfig",
    "map_mqo_to_qubo",
    "PhysicalMapping",
    "PhysicalMappingConfig",
    "embed_logical_qubo",
    "QuantumMQO",
    "QuantumMQOResult",
    "DecomposedQuantumMQO",
    "DecompositionResult",
    "CapacityPoint",
    "capacity_frontier",
    "clustered_pattern_qubits",
    "native_pattern_qubits",
    "logical_qubit_lower_bound",
    "max_queries_for_qubits",
]
