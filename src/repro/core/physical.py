"""Physical mapping: logical QUBO -> physical QUBO on qubits (paper Section 5).

Given a logical QUBO (variables = plans) and a minor-embedding (variable
-> chain of qubits), the physical mapping produces a QUBO over physical
qubits in three steps:

1. every logical linear weight ``w_i`` is split equally over the qubits
   of the chain representing ``X_i`` (``w_i / |B|`` per qubit),
2. every logical quadratic weight ``w_ij`` is placed on *one* physical
   coupler joining the two chains,
3. equality-enforcing terms ``w_B * (b_u + b_v - 2 b_u b_v)`` are added
   along the chain's spanning-tree couplers so that all qubits of a chain
   "behave as one bit".

The chain strength ``w_B`` follows Choi's parameter-setting rule: for
each chain ``B`` compute, per qubit ``b``, the worst-case energy increase
``U_{0->1}(b) = v + sum_i max(v_i, 0)`` and ``U_{1->0}(b) = -v +
sum_i max(-v_i, 0)`` (``v`` = weight on ``b`` after steps 1-2, ``v_i`` =
couplings from ``b`` to qubits outside ``B``); then

    w_B = min( sum_b U_{1->0}(b), sum_b U_{0->1}(b) ) + epsilon .
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.chimera.topology import ChimeraGraph
from repro.embedding.base import Embedding
from repro.embedding.unembed import ChainReadout, resolve_chains, resolve_chains_batch
from repro.exceptions import EmbeddingError
from repro.qubo.model import QUBOModel

__all__ = ["PhysicalMappingConfig", "PhysicalMapping", "embed_logical_qubo"]

Variable = Hashable


@dataclass(frozen=True)
class PhysicalMappingConfig:
    """Tuning knobs of the physical mapping.

    Attributes
    ----------
    chain_strength_epsilon:
        Slack added on top of Choi's bound for the chain strength.
    uniform_chain_strength:
        When set, *all* chains use this fixed strength instead of the
        per-chain Choi bound (used by the chain-strength ablation).
    readout:
        Broken-chain resolution strategy applied when unembedding samples.
    """

    chain_strength_epsilon: float = 0.25
    uniform_chain_strength: float | None = None
    readout: ChainReadout = ChainReadout.MAJORITY

    def __post_init__(self) -> None:
        if self.chain_strength_epsilon <= 0:
            raise EmbeddingError(
                f"chain_strength_epsilon must be positive, got {self.chain_strength_epsilon}"
            )
        if self.uniform_chain_strength is not None and self.uniform_chain_strength <= 0:
            raise EmbeddingError(
                f"uniform_chain_strength must be positive, got {self.uniform_chain_strength}"
            )


@dataclass
class PhysicalMapping:
    """The result of embedding a logical QUBO onto physical qubits.

    Attributes
    ----------
    logical_qubo / physical_qubo:
        The input and output energy formulas.
    embedding:
        The variable-to-chain map used.
    topology:
        The target hardware graph.
    chain_strengths:
        Chain strength ``w_B`` per logical variable.
    interaction_couplers:
        The physical coupler chosen for each logical interaction.
    config:
        The configuration used to build the mapping.
    """

    logical_qubo: QUBOModel
    physical_qubo: QUBOModel
    embedding: Embedding
    topology: ChimeraGraph
    chain_strengths: Dict[Variable, float]
    interaction_couplers: Dict[Tuple[Variable, Variable], Tuple[int, int]]
    config: PhysicalMappingConfig = field(default_factory=PhysicalMappingConfig)

    @property
    def num_qubits(self) -> int:
        """Number of physical qubits used."""
        return self.embedding.num_qubits

    @property
    def qubits_per_variable(self) -> float:
        """Average chain length — the x-axis of Figure 6."""
        return self.embedding.average_chain_length()

    def unembed_sample(self, physical_sample: Mapping[int, int]) -> Tuple[Dict[Variable, int], bool]:
        """Convert a physical sample into a logical assignment.

        Returns the assignment and whether any chain was broken
        (``PhysicalMapping^-1`` in Algorithm 1).
        """
        return resolve_chains(physical_sample, self.embedding, self.config.readout)

    def unembed_samples(
        self, physical_samples: Sequence[Mapping[int, int]]
    ) -> List[Tuple[Dict[Variable, int], bool]]:
        """Vectorised chain read-out of a whole batch of physical samples.

        Equivalent to calling :meth:`unembed_sample` per sample, but the
        majority votes of all reads happen in one gather plus one
        segmented reduction (:class:`~repro.embedding.unembed.ChainGather`),
        which is what the pipeline uses after a many-read device request.
        """
        if not physical_samples:
            return []
        qubit_order = list(physical_samples[0])
        try:
            states = np.array(
                [[sample[qubit] for qubit in qubit_order] for sample in physical_samples],
                dtype=np.int64,
            )
        except KeyError as exc:
            raise EmbeddingError(
                f"physical sample is missing qubit {exc} required by the embedding"
            ) from exc
        assignments, broken = resolve_chains_batch(
            states, qubit_order, self.embedding, self.config.readout
        )
        return list(zip(assignments, broken))

    def logical_energy(self, logical_assignment: Mapping[Variable, int]) -> float:
        """Energy of a logical assignment under the *logical* QUBO."""
        return self.logical_qubo.energy(logical_assignment)


def _distribute_linear_weights(
    logical_qubo: QUBOModel, embedding: Embedding, physical: QUBOModel
) -> None:
    for var, weight in logical_qubo.linear.items():
        chain = embedding.chain(var)
        share = weight / len(chain)
        for qubit in chain:
            physical.add_linear(qubit, share)


def _place_quadratic_weights(
    logical_qubo: QUBOModel,
    embedding: Embedding,
    topology: ChimeraGraph,
    physical: QUBOModel,
) -> Dict[Tuple[Variable, Variable], Tuple[int, int]]:
    placed: Dict[Tuple[Variable, Variable], Tuple[int, int]] = {}
    for (u, v), weight in logical_qubo.quadratic.items():
        coupler = embedding.coupler_between(u, v, topology)
        if coupler is None:
            raise EmbeddingError(
                f"the embedding provides no physical coupler for the logical interaction "
                f"({u!r}, {v!r})"
            )
        physical.add_quadratic(coupler[0], coupler[1], weight)
        placed[(u, v)] = coupler
    return placed


def _choi_chain_strength(
    chain: Tuple[int, ...],
    physical: QUBOModel,
    epsilon: float,
) -> float:
    """Chain strength for one chain following Choi's bound (Section 5)."""
    chain_set = set(chain)
    increase_to_one = 0.0
    increase_to_zero = 0.0
    for qubit in chain:
        weight = physical.get_linear(qubit)
        external_positive = 0.0
        external_negative = 0.0
        for neighbor, coupling in physical.neighbors(qubit).items():
            if neighbor in chain_set:
                continue
            external_positive += max(coupling, 0.0)
            external_negative += max(-coupling, 0.0)
        increase_to_one += weight + external_positive
        increase_to_zero += -weight + external_negative
    bound = min(increase_to_zero, increase_to_one)
    return max(bound, 0.0) + epsilon


def embed_logical_qubo(
    logical_qubo: QUBOModel,
    embedding: Embedding,
    topology: ChimeraGraph,
    config: PhysicalMappingConfig | None = None,
) -> PhysicalMapping:
    """Build the physical energy formula for ``logical_qubo`` (Algorithm 1, line 6).

    Raises
    ------
    EmbeddingError
        If a logical variable has no chain, a chain uses broken qubits or
        is disconnected, or a logical interaction has no physical coupler.
    """
    config = config or PhysicalMappingConfig()
    missing = [var for var in logical_qubo.variables if var not in embedding]
    if missing:
        raise EmbeddingError(f"embedding is missing chains for variables: {missing[:5]}")
    embedding.validate(topology, logical_qubo.quadratic.keys())

    physical = QUBOModel(offset=logical_qubo.offset)
    for var in logical_qubo.variables:
        for qubit in embedding.chain(var):
            physical.add_variable(qubit)

    _distribute_linear_weights(logical_qubo, embedding, physical)
    interaction_couplers = _place_quadratic_weights(logical_qubo, embedding, topology, physical)

    # Step 3: per-chain equality penalties.  The Choi bound is computed on
    # the weights *after* the logical weights have been distributed, and
    # chains are processed independently (the bound already over-estimates
    # the influence of neighbouring chains through the coupler weights).
    chain_strengths: Dict[Variable, float] = {}
    chain_edges: Dict[Variable, List[Tuple[int, int]]] = {}
    for var in logical_qubo.variables:
        chain = embedding.chain(var)
        chain_edges[var] = embedding.chain_edges(var, topology)
        if config.uniform_chain_strength is not None:
            chain_strengths[var] = config.uniform_chain_strength
        else:
            chain_strengths[var] = _choi_chain_strength(
                chain, physical, config.chain_strength_epsilon
            )

    for var, edges in chain_edges.items():
        strength = chain_strengths[var]
        for qubit_u, qubit_v in edges:
            physical.add_linear(qubit_u, strength)
            physical.add_linear(qubit_v, strength)
            physical.add_quadratic(qubit_u, qubit_v, -2.0 * strength)

    return PhysicalMapping(
        logical_qubo=logical_qubo,
        physical_qubo=physical,
        embedding=embedding,
        topology=topology,
        chain_strengths=chain_strengths,
        interaction_couplers=interaction_couplers,
        config=config,
    )
