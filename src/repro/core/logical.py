"""Logical mapping: MQO problem -> QUBO energy formula (paper Section 4).

For every plan ``p`` a binary variable ``X_p`` indicates whether the plan
is executed.  The energy formula is

    E = w_L * E_L + w_M * E_M + E_C + E_S

with

* ``E_L = -sum_p X_p``                      (select *at least* one plan per query),
* ``E_M = sum_q sum_{p1<p2 in P_q} X_p1 X_p2``  (select *at most* one plan per query),
* ``E_C = sum_p c_p X_p``                   (execution costs),
* ``E_S = -sum_{p1,p2} s_{p1,p2} X_p1 X_p2``    (sharing savings).

The penalty weights follow the paper's derivation:

* ``w_L > max_p c_p``  ensures selecting a plan is always better than
  selecting none (Lemma 2),
* ``w_M > w_L + max_{p1} sum_{p2} s_{p1,p2}`` ensures selecting a second
  plan for the same query never pays off (Lemma 1).

Both weights are set to their lower bound plus a small ``epsilon``
(0.25 by default) because unnecessarily large weights compress the
usable analog range of the annealer and hurt solution quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Union

import numpy as np

from repro.annealer.sampleset import SampleSet
from repro.exceptions import InvalidProblemError
from repro.mqo.problem import MQOProblem, MQOSolution
from repro.qubo.model import QUBOModel

__all__ = ["LogicalMappingConfig", "LogicalMapping", "map_mqo_to_qubo"]

#: Batch input accepted by :meth:`LogicalMapping.solutions_from_sampleset`:
#: a whole :class:`SampleSet`, a sequence of 0/1 assignment mappings, or a
#: ready ``(num_samples, num_plans)`` indicator matrix.
SampleBatch = Union[SampleSet, Sequence[Mapping[int, int]], np.ndarray]


@dataclass(frozen=True)
class LogicalMappingConfig:
    """Tuning knobs of the logical mapping.

    Attributes
    ----------
    epsilon:
        Slack added on top of the minimal admissible penalty weights
        (paper: "we typically use epsilon = 0.25").
    weight_scale:
        Extra multiplier applied to *both* penalty weights after the
        epsilon slack.  The paper uses 1.0; the penalty-scaling ablation
        benchmark sweeps this factor.
    """

    epsilon: float = 0.25
    weight_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise InvalidProblemError(f"epsilon must be positive, got {self.epsilon}")
        if self.weight_scale < 1.0:
            raise InvalidProblemError(
                f"weight_scale must be >= 1 to keep the mapping correct, "
                f"got {self.weight_scale}"
            )


class LogicalMapping:
    """The QUBO energy formula derived from one MQO problem instance.

    Instances are created through :func:`map_mqo_to_qubo` (or the
    constructor) and expose both directions of the transformation:
    :attr:`qubo` for the forward direction and
    :meth:`solution_from_assignment` for mapping QUBO variable assignments
    back to MQO solutions (``LogicalMapping^-1`` in Algorithm 1).
    """

    def __init__(self, problem: MQOProblem, config: LogicalMappingConfig | None = None) -> None:
        self.problem = problem
        self.config = config or LogicalMappingConfig()
        self._arrays = problem.arrays()
        self.weight_at_least_one = self._derive_weight_at_least_one()
        self.weight_at_most_one = self._derive_weight_at_most_one()
        self.qubo = self._build_qubo()

    # ------------------------------------------------------------------ #
    # Weight derivation
    # ------------------------------------------------------------------ #
    def _derive_weight_at_least_one(self) -> float:
        """``w_L = (max_p c_p + epsilon) * scale``."""
        return (self._arrays.max_plan_cost() + self.config.epsilon) * self.config.weight_scale

    def _derive_weight_at_most_one(self) -> float:
        """``w_M = (w_L + max_p sum s_{p,.} + epsilon) * scale``."""
        base = (
            self._derive_weight_at_least_one() / self.config.weight_scale
            + self._arrays.max_total_savings_per_plan()
            + self.config.epsilon
        )
        return base * self.config.weight_scale

    # ------------------------------------------------------------------ #
    # QUBO construction
    # ------------------------------------------------------------------ #
    def _build_qubo(self) -> QUBOModel:
        """Assemble the energy formula as whole coefficient arrays.

        Variables are the global plan indices; the linear vector is
        ``c - w_L`` in one subtraction, the quadratic terms concatenate
        the same-query penalty pairs (weight ``w_M``) with the sharing
        pairs (weight ``-s``) — no per-coefficient dict inserts.  The
        edge order (penalty pairs by query, then savings in insertion
        order) matches what the legacy per-term construction produced.
        """
        arrays = self._arrays
        linear = arrays.plan_cost - self.weight_at_least_one
        penalty_pairs = arrays.same_query_pairs
        sharing_pairs = np.column_stack((arrays.savings_p1, arrays.savings_p2))
        edges = np.concatenate((penalty_pairs, sharing_pairs), axis=0)
        weights = np.concatenate(
            (
                np.full(len(penalty_pairs), self.weight_at_most_one),
                -arrays.savings_value,
            )
        )
        return QUBOModel.from_arrays(range(arrays.num_plans), linear, edges, weights)

    # ------------------------------------------------------------------ #
    # Inverse mapping and bookkeeping
    # ------------------------------------------------------------------ #
    def solution_from_assignment(self, assignment: Mapping[int, int]) -> MQOSolution:
        """Interpret a 0/1 assignment of the QUBO variables as an MQO solution.

        Variables missing from ``assignment`` are treated as 0.  The
        returned solution may be invalid (the caller decides whether to
        repair or discard it).
        """
        selected = [plan.index for plan in self.problem.plans if assignment.get(plan.index, 0)]
        return self.problem.solution_from_selection(selected)

    def indicator_matrix(self, samples: SampleBatch) -> np.ndarray:
        """0/1 plan-indicator matrix ``(num_samples, num_plans)`` of ``samples``.

        Accepts a :class:`SampleSet`, a sequence of assignment mappings
        (variables missing from an assignment count as 0), or an
        already-built indicator matrix (validated and passed through).
        """
        num_plans = self.problem.num_plans
        if isinstance(samples, np.ndarray):
            matrix = np.atleast_2d(samples)
            if matrix.shape[1] != num_plans:
                raise InvalidProblemError(
                    f"indicator matrix must have {num_plans} columns, got {matrix.shape[1]}"
                )
            return matrix
        if isinstance(samples, SampleSet):
            assignments: Iterable[Mapping[int, int]] = (
                sample.assignment for sample in samples
            )
            count = len(samples)
        else:
            assignments = samples
            count = len(samples)
        matrix = np.zeros((count, num_plans), dtype=np.int8)
        for row, assignment in enumerate(assignments):
            selected = [plan for plan, bit in assignment.items() if bit]
            if selected:
                if min(selected) < 0 or max(selected) >= num_plans:
                    raise InvalidProblemError(
                        f"assignment references unknown plan indices: {selected[:5]}"
                    )
                matrix[row, selected] = 1
        return matrix

    def solutions_from_sampleset(self, samples: SampleBatch) -> List[MQOSolution]:
        """Decode a whole sampleset into MQO solutions in one batch.

        Equivalent to :meth:`solution_from_assignment` per read, but the
        objective values and validity flags of all reads are computed
        with two matrix products over the columnar problem arrays
        instead of one Python savings scan per read.  Returned solutions
        may be invalid (the caller decides whether to repair them).
        """
        matrix = self.indicator_matrix(samples)
        if not len(matrix):
            return []
        arrays = self._arrays
        costs = arrays.indicator_cost_batch(matrix)
        valid = arrays.indicator_valid_batch(matrix)
        return [
            MQOSolution.from_precomputed(
                self.problem,
                np.flatnonzero(row).tolist(),
                cost,
                is_valid,
            )
            for row, cost, is_valid in zip(matrix, costs.tolist(), valid.tolist())
        ]

    def assignment_from_solution(self, solution: MQOSolution) -> Dict[int, int]:
        """The 0/1 assignment of the QUBO variables describing ``solution``."""
        if solution.problem is not self.problem:
            raise InvalidProblemError(
                "the solution belongs to a different MQO problem instance"
            )
        return solution.plan_indicator()

    def energy_of_solution(self, solution: MQOSolution) -> float:
        """QUBO energy of the assignment representing ``solution``."""
        return self.qubo.energy(self.assignment_from_solution(solution))

    def constant_energy_shift(self) -> float:
        """Energy contributed by the penalty terms for *any valid* solution.

        For every valid solution ``E_L = -|Q|`` and ``E_M = 0``, so the
        QUBO energy equals ``C(Pe) - w_L * |Q|``.  This shift lets tests
        compare QUBO energies directly against MQO costs (Theorem 1).
        """
        return -self.weight_at_least_one * self.problem.num_queries

    def repair(self, assignment: Mapping[int, int]) -> MQOSolution:
        """Greedy repair of an invalid assignment into a valid MQO solution.

        For every query the selected plan with the largest marginal
        benefit is kept (or the cheapest plan is added if none is
        selected).  This is a convenience for comparing annealing
        read-outs to baselines on an equal, always-valid footing; the
        paper's headline numbers use unrepaired read-outs and the
        experiment runner exposes both.
        """
        chosen: Dict[int, int] = {}
        for query in self.problem.queries:
            selected = [p for p in query.plan_indices if assignment.get(p, 0)]
            if len(selected) == 1:
                chosen[query.index] = selected[0]
            elif not selected:
                chosen[query.index] = min(
                    query.plan_indices, key=lambda p: self.problem.plan_cost(p)
                )
            else:
                # Keep the selected plan with the lowest cost minus the savings
                # it can realise with plans selected for other queries.
                def marginal(p: int) -> float:
                    partners = self.problem.sharing_partners(p)
                    realizable = sum(
                        saving
                        for partner, saving in partners.items()
                        if assignment.get(partner, 0)
                        and self.problem.query_of_plan(partner) != query.index
                    )
                    return self.problem.plan_cost(p) - realizable

                chosen[query.index] = min(selected, key=marginal)
        return self.problem.solution_from_selection(chosen.values())


def map_mqo_to_qubo(
    problem: MQOProblem, config: LogicalMappingConfig | None = None
) -> LogicalMapping:
    """Convenience wrapper building a :class:`LogicalMapping` for ``problem``."""
    return LogicalMapping(problem, config)
