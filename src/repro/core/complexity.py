"""Qubit-count analysis and capacity projections (paper Section 6, Figure 7).

The paper analyses how many qubits the MQO-to-QUBO mapping needs as a
function of the problem dimensions ``n`` (query clusters), ``m`` (queries
per cluster) and ``l`` (plans per query):

* Theorem 2: any embedding of the logical QUBO needs
  ``Omega(n * (m*l)^2)`` qubits because every plan interacts with
  ``Omega(m*l)`` other plans but each qubit has at most six couplers.
* Theorem 3: the clustered TRIAD pattern needs ``Theta(n * (m*l)^2)``
  qubits, matching the lower bound.

This module provides closed-form qubit counts for the two embedding
patterns implemented in :mod:`repro.embedding` and inverts them to obtain
the maximal problem dimensions representable with a given number of
qubits — the data behind Figure 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import InvalidProblemError

__all__ = [
    "logical_qubit_lower_bound",
    "clustered_pattern_qubits",
    "native_pattern_qubits",
    "max_queries_for_qubits",
    "CapacityPoint",
    "capacity_frontier",
    "preprocessing_operation_count",
]

#: Maximum number of couplers per qubit on a Chimera topology with shore 4.
MAX_COUPLERS_PER_QUBIT = 6


def _check_dimensions(num_clusters: int, queries_per_cluster: int, plans_per_query: int) -> None:
    if num_clusters <= 0 or queries_per_cluster <= 0 or plans_per_query <= 0:
        raise InvalidProblemError(
            "problem dimensions must be positive, got "
            f"n={num_clusters}, m={queries_per_cluster}, l={plans_per_query}"
        )


def logical_qubit_lower_bound(
    num_clusters: int, queries_per_cluster: int, plans_per_query: int
) -> int:
    """The Theorem 2 lower bound on the number of required qubits.

    Every one of the ``n*m*l`` plans interacts with the other ``m*l - 1``
    plans of its cluster; with at most six couplers per qubit each plan
    therefore needs at least ``ceil((m*l - 1) / 6)`` qubits.
    """
    _check_dimensions(num_clusters, queries_per_cluster, plans_per_query)
    plans_per_cluster = queries_per_cluster * plans_per_query
    qubits_per_plan = max(1, math.ceil((plans_per_cluster - 1) / MAX_COUPLERS_PER_QUBIT))
    return num_clusters * plans_per_cluster * qubits_per_plan


def clustered_pattern_qubits(
    num_clusters: int,
    queries_per_cluster: int,
    plans_per_query: int,
    shore: int = 4,
) -> int:
    """Qubits used by the clustered multi-TRIAD pattern (Theorem 3).

    Each cluster holds ``m*l`` chains of length ``ceil(m*l / shore) + 1``.
    """
    _check_dimensions(num_clusters, queries_per_cluster, plans_per_query)
    if shore <= 0:
        raise InvalidProblemError(f"shore must be positive, got {shore}")
    plans_per_cluster = queries_per_cluster * plans_per_query
    chain_length = math.ceil(plans_per_cluster / shore) + 1
    return num_clusters * plans_per_cluster * chain_length


def native_pattern_qubits(
    num_queries: int, plans_per_query: int, shore: int = 4
) -> int:
    """Qubits used by the compact per-cell pattern (one query per cluster).

    A query with ``l`` plans occupies ``2l - 2`` qubits for ``l >= 2``
    (two singleton chains plus ``l - 2`` two-qubit chains) and a single
    qubit for ``l = 1``.  Only defined for ``l <= shore + 1`` — larger
    cliques do not fit inside one unit cell.
    """
    _check_dimensions(1, num_queries, plans_per_query)
    if plans_per_query > shore + 1:
        raise InvalidProblemError(
            f"the per-cell pattern supports at most {shore + 1} plans per query, "
            f"got {plans_per_query}"
        )
    per_query = 1 if plans_per_query == 1 else 2 * plans_per_query - 2
    return num_queries * per_query


def max_queries_for_qubits(
    num_qubits: int,
    plans_per_query: int,
    pattern: str = "clustered",
    shore: int = 4,
) -> int:
    """Largest number of single-query clusters representable with ``num_qubits``.

    ``pattern`` selects the embedding whose qubit count is inverted:
    ``"clustered"`` (one TRIAD per query, Theorem 3) or ``"native"``
    (compact per-cell packing).  Returns 0 when even one query does not fit.
    """
    if num_qubits <= 0:
        raise InvalidProblemError(f"num_qubits must be positive, got {num_qubits}")
    if pattern == "clustered":
        per_query = clustered_pattern_qubits(1, 1, plans_per_query, shore=shore)
    elif pattern == "native":
        if plans_per_query > shore + 1:
            return 0
        per_query = native_pattern_qubits(1, plans_per_query, shore=shore)
    else:
        raise InvalidProblemError(f"unknown pattern {pattern!r}; use 'clustered' or 'native'")
    return num_qubits // per_query


@dataclass(frozen=True)
class CapacityPoint:
    """One point of the Figure 7 frontier."""

    plans_per_query: int
    max_queries: int


def capacity_frontier(
    num_qubits: int,
    plans_range: Sequence[int] = tuple(range(2, 21)),
    pattern: str = "clustered",
    shore: int = 4,
) -> List[CapacityPoint]:
    """Maximal representable problem dimensions for a qubit budget (Figure 7).

    For every plans-per-query value in ``plans_range`` the maximal number
    of queries (each its own cluster) is computed.  The paper plots this
    frontier for 1152, 2304 and 4608 qubits.
    """
    points = []
    for plans_per_query in plans_range:
        points.append(
            CapacityPoint(
                plans_per_query=plans_per_query,
                max_queries=max_queries_for_qubits(
                    num_qubits, plans_per_query, pattern=pattern, shore=shore
                ),
            )
        )
    return points


def preprocessing_operation_count(
    num_clusters: int, queries_per_cluster: int, plans_per_query: int
) -> int:
    """Order-of-magnitude operation count of the classical mapping (Theorem 4).

    The combined logical and physical mapping runs in
    ``O(n * (m*l)^2)`` time; this helper returns that product so tests can
    check the measured growth rate of the implementation against it.
    """
    _check_dimensions(num_clusters, queries_per_cluster, plans_per_query)
    return num_clusters * (queries_per_cluster * plans_per_query) ** 2
