"""End-to-end pipeline: solve MQO on the (simulated) quantum annealer.

:class:`QuantumMQO` implements Algorithm 1 of the paper:

1. ``LogicalMapping``   — MQO problem -> logical QUBO,
2. ``PhysicalMapping``  — logical QUBO -> physical QUBO via an embedding,
3. ``QuantumAnnealing`` — sample the physical QUBO on the device,
4. ``PhysicalMapping^-1`` — chain read-out back to logical assignments,
5. ``LogicalMapping^-1``  — logical assignments back to plan selections.

The result records, besides the best solution found, the *anytime
trajectory* (best cost after every read together with the device time at
that point) so the experiment harness can compare against classical
solvers exactly as Figures 4 and 5 do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.annealer.device import DWaveSamplerSimulator
from repro.annealer.sampleset import SampleSet
from repro.core.logical import LogicalMapping, LogicalMappingConfig
from repro.core.physical import PhysicalMapping, PhysicalMappingConfig, embed_logical_qubo
from repro.embedding.base import Embedding
from repro.embedding.clustered import ClusteredEmbedder
from repro.embedding.greedy import GreedyEmbedder
from repro.embedding.native import NativeClusteredEmbedder
from repro.embedding.triad import TriadEmbedder
from repro.exceptions import EmbeddingError, EmbeddingNotFoundError, InvalidProblemError
from repro.mqo.problem import MQOProblem, MQOSolution
from repro.mqo.serialization import exact_problem_token
from repro.obs.trace import get_tracer
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.stopwatch import Stopwatch

__all__ = ["PreparedProblem", "QuantumMQO", "QuantumMQOResult"]


@dataclass
class PreparedProblem:
    """Reusable compilation of one MQO instance for a fixed pipeline.

    Bundles the logical mapping, the embedding and the physical mapping
    produced by :meth:`QuantumMQO.prepare`.  Preparing is the host-side
    preprocessing the paper reports at 112-135 ms per instance; repeated
    solves of the same instance (portfolio re-races, anytime restarts)
    pass the prepared form back into :meth:`QuantumMQO.solve` and skip
    it entirely.  The service layer caches these keyed by
    :meth:`~repro.mqo.problem.MQOProblem.canonical_hash`.
    """

    problem: MQOProblem
    mapping: LogicalMapping
    embedding: Embedding
    physical: PhysicalMapping
    preprocessing_time_ms: float


@dataclass
class QuantumMQOResult:
    """Outcome of one quantum-annealing MQO run.

    Attributes
    ----------
    problem:
        The MQO instance that was solved.
    best_solution:
        Best *valid* solution found (after optional repair of invalid
        read-outs).
    best_raw_solution:
        Best solution among unrepaired read-outs (may be invalid on noisy
        devices; equals ``best_solution`` otherwise).
    trajectory:
        ``(device_time_ms, best_cost_so_far)`` after every read, using
        valid (repaired if necessary) solutions.
    sample_set:
        The raw physical read-outs.
    physical_mapping:
        The physical mapping used (exposes embedding statistics).
    preprocessing_time_ms:
        Host time spent on the logical + physical mapping (the paper
        reports 112-135 ms for its unoptimised implementation).
    num_broken_chain_reads:
        Number of reads in which at least one chain was inconsistent.
    num_invalid_reads:
        Number of reads whose raw plan selection violated the
        one-plan-per-query constraint.
    """

    problem: MQOProblem
    best_solution: MQOSolution
    best_raw_solution: MQOSolution
    trajectory: List[Tuple[float, float]]
    sample_set: SampleSet
    physical_mapping: PhysicalMapping
    preprocessing_time_ms: float
    num_broken_chain_reads: int = 0
    num_invalid_reads: int = 0

    @property
    def qubits_per_variable(self) -> float:
        """Average chain length of the embedding (Figure 6 x-axis)."""
        return self.physical_mapping.qubits_per_variable

    @property
    def device_time_ms(self) -> float:
        """Total device time consumed by all reads."""
        return self.sample_set.device_time_ms()

    def cost_after_reads(self, num_reads: int) -> float:
        """Best (valid) cost achieved within the first ``num_reads`` reads."""
        if num_reads <= 0 or not self.trajectory:
            return float("inf")
        index = min(num_reads, len(self.trajectory)) - 1
        return self.trajectory[index][1]

    def cost_at_time(self, time_ms: float) -> float:
        """Best (valid) cost achieved within ``time_ms`` of device time."""
        best = float("inf")
        for point_time, cost in self.trajectory:
            if point_time <= time_ms:
                best = cost
            else:
                break
        return best


class QuantumMQO:
    """Solve MQO problems with the (simulated) quantum annealer.

    Parameters
    ----------
    device:
        The annealing device (a :class:`DWaveSamplerSimulator` by default).
    embedder:
        Embedding strategy: ``"auto"`` (native per-cell packing, then the
        greedy embedder, then a single global TRIAD), one of
        ``"native"``, ``"greedy"``, ``"triad"``, ``"clustered"``, or a
        pre-built :class:`Embedding`.
    logical_config / physical_config:
        Mapping parameters (penalty slack, chain-strength rule, read-out).
    repair_invalid:
        Whether invalid read-outs are greedily repaired into valid
        solutions for the trajectory (invalid read-outs are always
        counted in :attr:`QuantumMQOResult.num_invalid_reads`).
    """

    def __init__(
        self,
        device: DWaveSamplerSimulator | None = None,
        embedder: str | Embedding = "auto",
        logical_config: LogicalMappingConfig | None = None,
        physical_config: PhysicalMappingConfig | None = None,
        repair_invalid: bool = True,
        seed: SeedLike = None,
    ) -> None:
        self._rng = ensure_rng(seed)
        self.device = device if device is not None else DWaveSamplerSimulator(seed=self._rng)
        self.embedder = embedder
        self.logical_config = logical_config or LogicalMappingConfig()
        self.physical_config = physical_config or PhysicalMappingConfig()
        self.repair_invalid = repair_invalid

    # ------------------------------------------------------------------ #
    # Embedding selection
    # ------------------------------------------------------------------ #
    def build_embedding(self, problem: MQOProblem, mapping: LogicalMapping) -> Embedding:
        """Construct an embedding for the logical QUBO of ``problem``."""
        if isinstance(self.embedder, Embedding):
            return self.embedder
        clusters = [list(query.plan_indices) for query in problem.queries]
        interactions = list(mapping.qubo.quadratic.keys())
        topology = self.device.topology

        def native() -> Embedding:
            return NativeClusteredEmbedder(topology).embed(clusters, interactions)

        def clustered() -> Embedding:
            return ClusteredEmbedder(topology).embed(clusters, interactions)

        def triad() -> Embedding:
            return TriadEmbedder(topology).embed_clique(
                [plan.index for plan in problem.plans]
            )

        def greedy() -> Embedding:
            return GreedyEmbedder(topology).embed(
                interactions,
                variables=[plan.index for plan in problem.plans],
                seed=self._rng,
            )

        strategies = {
            "native": [native],
            "clustered": [clustered],
            "triad": [triad],
            "greedy": [greedy],
            # The structured patterns are tried first; the greedy chain-growth
            # heuristic is the last resort because it is slower and can fail
            # on dense problems.
            "auto": [native, triad, greedy],
        }
        if self.embedder not in strategies:
            raise EmbeddingError(
                f"unknown embedder {self.embedder!r}; expected one of {sorted(strategies)} "
                f"or an Embedding instance"
            )
        last_error: EmbeddingError | None = None
        for strategy in strategies[self.embedder]:
            try:
                return strategy()
            except EmbeddingError as exc:
                last_error = exc
        raise EmbeddingNotFoundError(
            f"no embedding strategy succeeded for problem {problem.name or '<unnamed>'}"
        ) from last_error

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def prepare(self, problem: MQOProblem) -> PreparedProblem:
        """Compile ``problem`` down to its physical QUBO (Algorithm 1, lines 1-6).

        The result is independent of reads/gauges/seed and can be passed
        to :meth:`solve` any number of times, skipping the logical
        mapping, embedding search and physical mapping on every reuse.
        """
        tracer = get_tracer()
        stopwatch = Stopwatch().start()
        with tracer.span("mqo.prepare", {"problem": problem.name or ""}):
            with tracer.span("mqo.qubo_build") as span:
                mapping = LogicalMapping(problem, self.logical_config)
                span.set_attribute("num_logical_vars", mapping.qubo.num_variables)
            with tracer.span("mqo.embed", {"embedder": str(self.embedder)}):
                embedding = self.build_embedding(problem, mapping)
            with tracer.span("mqo.physical_map"):
                physical = embed_logical_qubo(
                    mapping.qubo, embedding, self.device.topology, self.physical_config
                )
        return PreparedProblem(
            problem=problem,
            mapping=mapping,
            embedding=embedding,
            physical=physical,
            preprocessing_time_ms=stopwatch.elapsed_ms(),
        )

    def solve(
        self,
        problem: MQOProblem,
        num_reads: int | None = None,
        num_gauges: int | None = None,
        seed: SeedLike = None,
        prepared: PreparedProblem | None = None,
    ) -> QuantumMQOResult:
        """Run Algorithm 1 on ``problem`` and return the detailed result.

        ``prepared`` short-circuits the preprocessing with the output of
        an earlier :meth:`prepare` call for the same problem (the
        reported preprocessing time is then the cached one).  Passing a
        preparation built from a structurally different problem raises
        :class:`~repro.exceptions.InvalidProblemError` — the annealed
        QUBO would belong to the wrong instance.
        """
        if prepared is None:
            prepared = self.prepare(problem)
        elif prepared.problem is not problem and exact_problem_token(
            prepared.problem
        ) != exact_problem_token(problem):
            # The exact token (not the canonical hash) is required here: a
            # prepared embedding is tied to concrete plan indices, and a
            # relabel-equivalent instance would mis-attribute selections.
            raise InvalidProblemError(
                "the prepared pipeline was built for a different problem instance"
            )
        mapping, physical = prepared.mapping, prepared.physical

        tracer = get_tracer()
        with tracer.span("mqo.anneal") as span:
            sample_set = self.device.sample_qubo(
                physical.physical_qubo, num_reads=num_reads, num_gauges=num_gauges, seed=seed
            )
            span.set_attribute("num_reads", len(sample_set))
        with tracer.span("mqo.decode") as span:
            result = self._collect_result(
                problem, mapping, physical, sample_set, prepared.preprocessing_time_ms
            )
            span.set_attribute("num_broken_chain_reads", result.num_broken_chain_reads)
            span.set_attribute("num_invalid_reads", result.num_invalid_reads)
        return result

    def _collect_result(
        self,
        problem: MQOProblem,
        mapping: LogicalMapping,
        physical: PhysicalMapping,
        sample_set: SampleSet,
        preprocessing_time_ms: float,
    ) -> QuantumMQOResult:
        best_solution: MQOSolution | None = None
        best_raw_solution: MQOSolution | None = None
        trajectory: List[Tuple[float, float]] = []
        num_broken = 0
        num_invalid = 0

        unembedded = physical.unembed_samples([sample.assignment for sample in sample_set])
        # One batched decode costs/validates every read at once; the loop
        # below only tracks incumbents and repairs the invalid reads.
        raw_solutions = mapping.solutions_from_sampleset(
            [logical_assignment for logical_assignment, _broken in unembedded]
        )
        for sample, (logical_assignment, broken), raw_solution in zip(
            sample_set, unembedded, raw_solutions
        ):
            if broken:
                num_broken += 1
            if not raw_solution.is_valid:
                num_invalid += 1
            if best_raw_solution is None or self._better(raw_solution, best_raw_solution):
                best_raw_solution = raw_solution

            candidate = raw_solution
            if not candidate.is_valid and self.repair_invalid:
                candidate = mapping.repair(logical_assignment)
            if candidate.is_valid and (
                best_solution is None or candidate.cost < best_solution.cost
            ):
                best_solution = candidate
            current_best = best_solution.cost if best_solution is not None else float("inf")
            trajectory.append(
                (sample_set.device_time_ms(sample.read_index + 1), current_best)
            )

        if best_solution is None:
            # No read produced (or could be repaired into) a valid solution;
            # fall back to the deterministic repair of the best raw read-out.
            assert best_raw_solution is not None
            best_solution = mapping.repair(best_raw_solution.plan_indicator())
        assert best_raw_solution is not None

        return QuantumMQOResult(
            problem=problem,
            best_solution=best_solution,
            best_raw_solution=best_raw_solution,
            trajectory=trajectory,
            sample_set=sample_set,
            physical_mapping=physical,
            preprocessing_time_ms=preprocessing_time_ms,
            num_broken_chain_reads=num_broken,
            num_invalid_reads=num_invalid,
        )

    @staticmethod
    def _better(candidate: MQOSolution, incumbent: MQOSolution) -> bool:
        """Prefer valid solutions; among equals prefer lower cost."""
        if candidate.is_valid != incumbent.is_valid:
            return candidate.is_valid
        return candidate.cost < incumbent.cost
