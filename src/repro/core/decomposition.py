"""Decomposition: solve one MQO problem as a series of QUBO problems.

The paper's outlook (Section 9) proposes mapping "one MQO problem
instance into a series of QUBO problems ... which should in principle
allow to treat larger problem instances".  This module implements that
extension:

1. queries are clustered by their work-sharing structure
   (:mod:`repro.mqo.clustering`), with a cluster-size cap chosen so each
   cluster's sub-problem fits on the device,
2. clusters are solved one after another on the annealing pipeline; when
   a cluster is solved, the plans already selected for earlier clusters
   discount the execution costs of plans that can share work with them
   (a sequential conditioning scheme), so part of the cross-cluster
   savings is still realised,
3. the per-cluster selections are combined into one solution whose cost
   is evaluated on the *original* problem.

The approach is a heuristic — cross-cluster savings are only considered
greedily in cluster order — but it removes the hard qubit-budget limit of
the single-QUBO mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.pipeline import QuantumMQO, QuantumMQOResult
from repro.exceptions import InvalidProblemError
from repro.mqo.clustering import cluster_queries
from repro.mqo.problem import MQOProblem, MQOSolution

__all__ = ["ClusterSubproblem", "DecompositionResult", "DecomposedQuantumMQO"]


@dataclass(frozen=True)
class ClusterSubproblem:
    """One cluster's sub-problem together with its plan-index mapping.

    Attributes
    ----------
    cluster_queries:
        Original query indices covered by this sub-problem.
    problem:
        The standalone MQO instance for those queries.  Plan costs are
        discounted by savings realisable with plans already selected for
        earlier clusters, then shifted per query so they stay non-negative
        (a per-query constant shift never changes which plan is optimal).
    plan_map:
        Sub-problem plan index -> original plan index.
    """

    cluster_queries: Tuple[int, ...]
    problem: MQOProblem
    plan_map: Dict[int, int]


@dataclass
class DecompositionResult:
    """Outcome of a decomposed solve."""

    problem: MQOProblem
    solution: MQOSolution
    clusters: List[Tuple[int, ...]]
    cluster_results: List[QuantumMQOResult] = field(default_factory=list)

    @property
    def num_clusters(self) -> int:
        """Number of sub-problems solved."""
        return len(self.clusters)

    @property
    def total_device_time_ms(self) -> float:
        """Accumulated device time over all cluster solves."""
        return sum(result.device_time_ms for result in self.cluster_results)

    @property
    def total_preprocessing_time_ms(self) -> float:
        """Accumulated mapping time over all cluster solves."""
        return sum(result.preprocessing_time_ms for result in self.cluster_results)

    @property
    def max_qubits_used(self) -> int:
        """Largest number of physical qubits any sub-problem needed."""
        if not self.cluster_results:
            return 0
        return max(result.physical_mapping.num_qubits for result in self.cluster_results)


class DecomposedQuantumMQO:
    """Solve MQO problems cluster by cluster on the annealing pipeline.

    Parameters
    ----------
    pipeline:
        The single-QUBO solver used per cluster (a default
        :class:`QuantumMQO` is created when omitted).
    max_queries_per_cluster:
        Upper bound on the cluster size; pick it so the largest cluster's
        sub-QUBO still fits on the device.
    """

    def __init__(
        self,
        pipeline: QuantumMQO | None = None,
        max_queries_per_cluster: int = 32,
    ) -> None:
        if max_queries_per_cluster <= 0:
            raise InvalidProblemError(
                f"max_queries_per_cluster must be positive, got {max_queries_per_cluster}"
            )
        self.pipeline = pipeline if pipeline is not None else QuantumMQO()
        self.max_queries_per_cluster = max_queries_per_cluster

    # ------------------------------------------------------------------ #
    # Sub-problem construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def build_subproblem(
        problem: MQOProblem,
        cluster: Sequence[int],
        already_selected: Sequence[int] = (),
    ) -> ClusterSubproblem:
        """Build the standalone sub-problem for one query cluster.

        ``already_selected`` holds original plan indices chosen for other
        clusters; savings with those plans are subtracted from the costs
        of the cluster's plans (sequential conditioning).
        """
        cluster = tuple(sorted(int(q) for q in cluster))
        if not cluster:
            raise InvalidProblemError("a cluster must contain at least one query")
        selected_set = {int(p) for p in already_selected}
        cluster_set = set(cluster)

        plan_map: Dict[int, int] = {}
        plans_per_query: List[List[float]] = []
        next_index = 0
        for query_index in cluster:
            query = problem.query(query_index)
            adjusted_costs: List[float] = []
            for plan_index in query.plan_indices:
                external_savings = sum(
                    saving
                    for partner, saving in problem.sharing_partners(plan_index).items()
                    if partner in selected_set
                    and problem.query_of_plan(partner) not in cluster_set
                )
                adjusted_costs.append(problem.plan_cost(plan_index) - external_savings)
                plan_map[next_index] = plan_index
                next_index += 1
            # Shift per query so every cost is non-negative; within a query a
            # constant shift does not change which plan is preferable.
            minimum = min(adjusted_costs)
            if minimum < 0:
                adjusted_costs = [cost - minimum for cost in adjusted_costs]
            plans_per_query.append(adjusted_costs)

        inverse_map = {original: local for local, original in plan_map.items()}
        savings: Dict[Tuple[int, int], float] = {}
        for (p1, p2), saving in problem.interaction_pairs():
            if p1 in inverse_map and p2 in inverse_map:
                savings[(inverse_map[p1], inverse_map[p2])] = saving

        sub_problem = MQOProblem(
            plans_per_query,
            savings,
            name=f"{problem.name or 'mqo'}-cluster-{cluster[0]}",
        )
        return ClusterSubproblem(
            cluster_queries=cluster, problem=sub_problem, plan_map=plan_map
        )

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        problem: MQOProblem,
        num_reads: int | None = None,
        num_gauges: int | None = None,
    ) -> DecompositionResult:
        """Cluster the queries and solve one sub-QUBO per cluster."""
        clusters = cluster_queries(problem, max_cluster_size=self.max_queries_per_cluster)
        # Solve clusters with the strongest internal sharing first so later
        # clusters can condition on as many selected plans as possible.
        def internal_weight(cluster: Sequence[int]) -> float:
            members = set(cluster)
            total = 0.0
            for (p1, p2), saving in problem.interaction_pairs():
                if (
                    problem.query_of_plan(p1) in members
                    and problem.query_of_plan(p2) in members
                ):
                    total += saving
            return total

        ordered = sorted(clusters, key=internal_weight, reverse=True)

        selected: List[int] = []
        cluster_results: List[QuantumMQOResult] = []
        for cluster in ordered:
            subproblem = self.build_subproblem(problem, cluster, selected)
            result = self.pipeline.solve(
                subproblem.problem, num_reads=num_reads, num_gauges=num_gauges
            )
            cluster_results.append(result)
            for local_plan in result.best_solution.selected_plans:
                selected.append(subproblem.plan_map[local_plan])

        solution = problem.solution_from_selection(selected)
        return DecompositionResult(
            problem=problem,
            solution=solution,
            clusters=[tuple(cluster) for cluster in ordered],
            cluster_results=cluster_results,
        )
