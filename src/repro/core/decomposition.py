"""Decomposition: solve one MQO problem as a series of QUBO problems.

The paper's outlook (Section 9) proposes mapping "one MQO problem
instance into a series of QUBO problems ... which should in principle
allow to treat larger problem instances".  This module implements that
extension twice over:

* :class:`DecomposedQuantumMQO` — the faithful sequential scheme: one
  sub-QUBO per cluster on the annealing pipeline, clusters solved in
  internal-weight order, each conditioned on every selection made before
  it.
* :class:`ParallelDecomposition` — the serving-stack fast path for
  instances beyond device/QUBO capacity: an array-native partition
  (:mod:`repro.mqo.clustering`), cluster sub-problems farmed through a
  :class:`~repro.service.frontend.ServiceFrontend` concurrently under a
  dependency-ordered **wave schedule**, and per-cluster selections
  stitched into one monotone anytime trajectory for the whole instance.

Wave scheduling preserves the sequential-conditioning semantics where
they matter: two clusters that share savings never run in the same wave
(the weaker-sharing one waits and conditions on the stronger one's
selection), while clusters without any shared savings solve in parallel
with *zero* loss versus the sequential schedule — conditioning on a
cluster you share nothing with is a no-op.

Both solvers are heuristics — cross-cluster savings are only considered
greedily in conditioning order — but they remove the hard qubit-budget
limit of the single-QUBO mapping.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.baselines.anytime import (
    AnytimeSolver,
    SolverTrajectory,
    TrajectoryRecorder,
)
from repro.core.pipeline import QuantumMQO, QuantumMQOResult
from repro.exceptions import InvalidProblemError, SolverError
from repro.mqo.clustering import cluster_edges, cluster_queries, internal_weights
from repro.mqo.problem import MQOProblem, MQOSolution
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.utils.rng import SeedLike, derive_seed

if TYPE_CHECKING:  # pragma: no cover - service imported lazily (cycle guard)
    from repro.service.frontend import ServiceFrontend
    from repro.service.jobs import SolveResult

__all__ = [
    "ClusterSubproblem",
    "DecompositionResult",
    "DecomposedQuantumMQO",
    "WaveSchedule",
    "build_wave_schedule",
    "build_subproblem",
    "ParallelDecomposition",
    "ParallelDecompositionResult",
    "DecomposedAnytimeSolver",
    "DECOMPOSED_SOLVER_NAME",
    "observe_decomposition_progress",
    "current_progress_observers",
    "default_decomposition_frontend",
]

#: Registry name of the decomposition-backed anytime solver.
DECOMPOSED_SOLVER_NAME = "decomposed_qa"

#: Clusters produced across all decomposed solves (one increment per
#: sub-problem, so rate ≈ decomposition fan-out).
_COMPONENTS = get_registry().counter(
    "repro_decomposition_components_total",
    "Cluster sub-problems produced by decomposed solves.",
)
#: Size of the decomposition wave currently dispatching (last wave when idle).
_WAVE_SIZE = get_registry().gauge(
    "repro_decomposition_wave_size",
    "Clusters dispatched concurrently in the current decomposition wave.",
)

# ---------------------------------------------------------------------- #
# Progress observers (per-thread, like anytime improvement observers)
# ---------------------------------------------------------------------- #
#: Callback invoked after every cluster completion of a decomposed solve:
#: ``observer(solver_name, completed, total)``.
DecompositionProgressObserver = Callable[[str, int, int], None]

_PROGRESS = threading.local()


def current_progress_observers() -> Tuple[DecompositionProgressObserver, ...]:
    """Progress observers installed for the current thread (empty when none).

    The solver server uses this the way it uses anytime improvement
    observers: it installs a forwarder around the solve call, and every
    cluster completion of a decomposed solve running on that thread is
    streamed to the job's subscribers as a ``progress`` frame.
    """
    return getattr(_PROGRESS, "installed", ())


@contextmanager
def observe_decomposition_progress(
    *observers: DecompositionProgressObserver,
) -> Iterator[None]:
    """Register ``observers`` for cluster completions on this thread.

    Contexts nest (inner registrations append to the outer ones) and the
    previous set is restored on exit; observer exceptions are swallowed
    so a misbehaving listener cannot fail a solve.
    """
    previous = getattr(_PROGRESS, "installed", ())
    _PROGRESS.installed = previous + tuple(observers)
    try:
        yield
    finally:
        _PROGRESS.installed = previous


def _notify_progress(
    observers: Tuple[DecompositionProgressObserver, ...],
    solver_name: str,
    completed: int,
    total: int,
) -> None:
    for observer in observers:
        try:
            observer(solver_name, completed, total)
        except Exception:  # noqa: BLE001 — a bad listener must not fail the solve
            pass


# ---------------------------------------------------------------------- #
# Sub-problem construction (array-native)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ClusterSubproblem:
    """One cluster's sub-problem together with its plan-index mapping.

    Attributes
    ----------
    cluster_queries:
        Original query indices covered by this sub-problem.
    problem:
        The standalone MQO instance for those queries.  Plan costs are
        discounted by savings realisable with plans already selected for
        earlier clusters, then shifted per query so they stay non-negative
        (a per-query constant shift never changes which plan is optimal).
    plan_map:
        Sub-problem plan index -> original plan index.
    """

    cluster_queries: Tuple[int, ...]
    problem: MQOProblem
    plan_map: Dict[int, int]


def _multi_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start + count)`` ranges, vectorised."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    repeats = np.repeat(np.arange(len(starts), dtype=np.int64), counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return starts[repeats] + offsets


def build_subproblem(
    problem: MQOProblem,
    cluster: Sequence[int],
    already_selected: Sequence[int] = (),
) -> ClusterSubproblem:
    """Build the standalone sub-problem for one query cluster.

    ``already_selected`` holds original plan indices chosen for other
    clusters; savings with those plans are subtracted from the costs of
    the cluster's plans (sequential conditioning).  The whole
    construction is one pass over the cluster's adjacency rows of the
    columnar view — per-plan sums accumulate in savings insertion order,
    bit-identical to the legacy per-plan dictionary loop.
    """
    cluster = tuple(sorted(int(q) for q in cluster))
    if not cluster:
        raise InvalidProblemError("a cluster must contain at least one query")
    arrays = problem.arrays()
    if cluster[0] < 0 or cluster[-1] >= arrays.num_queries:
        raise InvalidProblemError(f"unknown query index {cluster[0] if cluster[0] < 0 else cluster[-1]}")
    cluster_array = np.asarray(cluster, dtype=np.int64)

    in_cluster_query = np.zeros(arrays.num_queries, dtype=bool)
    in_cluster_query[cluster_array] = True
    selected_mask = np.zeros(arrays.num_plans, dtype=bool)
    for plan in already_selected:
        plan = int(plan)
        if 0 <= plan < arrays.num_plans:
            selected_mask[plan] = True
    # Conditioning partners: selected plans whose query is outside the cluster.
    external_partner = selected_mask & ~in_cluster_query[arrays.plan_query]

    offsets = arrays.query_offsets
    per_query_counts = (offsets[cluster_array + 1] - offsets[cluster_array]).astype(np.int64)
    cluster_plans = _multi_arange(offsets[cluster_array], per_query_counts)

    # External savings per cluster plan: segment sums over adjacency rows.
    row_starts = arrays.adj_indptr[cluster_plans]
    row_counts = (arrays.adj_indptr[cluster_plans + 1] - row_starts).astype(np.int64)
    entries = _multi_arange(row_starts, row_counts)
    contributions = np.where(
        external_partner[arrays.adj_indices[entries]], arrays.adj_values[entries], 0.0
    )
    segments = np.repeat(np.arange(len(cluster_plans), dtype=np.int64), row_counts)
    external = np.bincount(segments, weights=contributions, minlength=len(cluster_plans))
    adjusted = arrays.plan_cost[cluster_plans] - external

    # Shift per query so every cost is non-negative; within a query a
    # constant shift does not change which plan is preferable.
    local_starts = np.cumsum(per_query_counts) - per_query_counts
    minima = np.minimum.reduceat(adjusted, local_starts)
    shifts = np.where(minima < 0, minima, 0.0)
    adjusted = adjusted - np.repeat(shifts, per_query_counts)

    plans_per_query: List[List[float]] = []
    for position in range(len(cluster)):
        lo = int(local_starts[position])
        plans_per_query.append(adjusted[lo : lo + int(per_query_counts[position])].tolist())

    # Intra-cluster savings, re-indexed to local plan indices in the
    # original insertion order (the mask preserves triplet order).
    local_of = np.full(arrays.num_plans, -1, dtype=np.int64)
    local_of[cluster_plans] = np.arange(len(cluster_plans), dtype=np.int64)
    keep = (local_of[arrays.savings_p1] >= 0) & (local_of[arrays.savings_p2] >= 0)
    savings = {
        (int(p1), int(p2)): float(value)
        for p1, p2, value in zip(
            local_of[arrays.savings_p1[keep]],
            local_of[arrays.savings_p2[keep]],
            arrays.savings_value[keep],
        )
    }

    sub_problem = MQOProblem(
        plans_per_query,
        savings,
        name=f"{problem.name or 'mqo'}-cluster-{cluster[0]}",
    )
    plan_map = {local: int(original) for local, original in enumerate(cluster_plans)}
    return ClusterSubproblem(
        cluster_queries=cluster, problem=sub_problem, plan_map=plan_map
    )


# ---------------------------------------------------------------------- #
# Wave scheduling
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class WaveSchedule:
    """Dependency-ordered execution plan over canonical cluster indices.

    Attributes
    ----------
    solve_order:
        Canonical cluster indices in conditioning order — internal
        weight descending, canonical index on ties (exactly the order
        the sequential solver uses).
    waves:
        Cluster indices grouped into execution waves.  Clusters in one
        wave share no savings with each other, so they can solve
        concurrently; every cluster conditions only on clusters from
        strictly earlier waves.
    """

    solve_order: List[int]
    waves: List[List[int]]

    @property
    def num_waves(self) -> int:
        """Number of sequential execution steps."""
        return len(self.waves)

    @property
    def max_wave_size(self) -> int:
        """Widest wave (the attainable solve parallelism)."""
        return max((len(wave) for wave in self.waves), default=0)


def build_wave_schedule(
    num_clusters: int,
    edges: Sequence[Tuple[int, int]],
    weights: Sequence[float],
) -> WaveSchedule:
    """Build the dependency-ordered wave schedule for a clustering.

    ``edges`` are cluster pairs that share at least one savings pair
    (:func:`~repro.mqo.clustering.cluster_edges`); ``weights`` the
    per-cluster internal savings.  For every edge, the cluster that the
    sequential schedule solves *later* (weaker internal sharing) depends
    on the earlier one, so it can condition on the earlier selection.
    Waves are the topological levels of that DAG: wave 0 holds every
    independent cluster, wave ``k`` the clusters whose deepest
    dependency sits in wave ``k - 1``.
    """
    order = sorted(range(num_clusters), key=lambda index: (-float(weights[index]), index))
    rank = {cluster: position for position, cluster in enumerate(order)}
    dependencies: Dict[int, List[int]] = {cluster: [] for cluster in range(num_clusters)}
    for a, b in edges:
        if rank[a] < rank[b]:
            dependencies[b].append(a)
        else:
            dependencies[a].append(b)
    wave_of: Dict[int, int] = {}
    for cluster in order:  # dependencies always have lower rank
        deps = dependencies[cluster]
        wave_of[cluster] = 1 + max((wave_of[d] for d in deps), default=-1)
    waves: List[List[int]] = [[] for _ in range(max(wave_of.values(), default=-1) + 1)]
    for cluster in order:
        waves[wave_of[cluster]].append(cluster)
    for wave in waves:
        wave.sort()
    return WaveSchedule(solve_order=order, waves=waves)


# ---------------------------------------------------------------------- #
# The sequential pipeline solver (paper outlook, faithful scheme)
# ---------------------------------------------------------------------- #
@dataclass
class DecompositionResult:
    """Outcome of a decomposed solve.

    ``clusters`` holds the canonical clustering — sorted by smallest
    query index, exactly as :func:`~repro.mqo.clustering.cluster_queries`
    returned it — while ``solve_order`` records the order the clusters
    were actually solved in (internal weight descending).
    ``cluster_results[i]`` is the result of solving
    ``clusters[solve_order[i]]``.
    """

    problem: MQOProblem
    solution: MQOSolution
    clusters: List[Tuple[int, ...]]
    solve_order: List[int] = field(default_factory=list)
    cluster_results: List[QuantumMQOResult] = field(default_factory=list)

    @property
    def num_clusters(self) -> int:
        """Number of sub-problems solved."""
        return len(self.clusters)

    @property
    def total_device_time_ms(self) -> float:
        """Accumulated device time over all cluster solves."""
        return sum(result.device_time_ms for result in self.cluster_results)

    @property
    def total_preprocessing_time_ms(self) -> float:
        """Accumulated mapping time over all cluster solves."""
        return sum(result.preprocessing_time_ms for result in self.cluster_results)

    @property
    def max_qubits_used(self) -> int:
        """Largest number of physical qubits any sub-problem needed."""
        if not self.cluster_results:
            return 0
        return max(result.physical_mapping.num_qubits for result in self.cluster_results)


class DecomposedQuantumMQO:
    """Solve MQO problems cluster by cluster on the annealing pipeline.

    Parameters
    ----------
    pipeline:
        The single-QUBO solver used per cluster (a default
        :class:`QuantumMQO` is created when omitted).
    max_queries_per_cluster:
        Upper bound on the cluster size; pick it so the largest cluster's
        sub-QUBO still fits on the device.
    """

    def __init__(
        self,
        pipeline: QuantumMQO | None = None,
        max_queries_per_cluster: int = 32,
    ) -> None:
        if max_queries_per_cluster <= 0:
            raise InvalidProblemError(
                f"max_queries_per_cluster must be positive, got {max_queries_per_cluster}"
            )
        self.pipeline = pipeline if pipeline is not None else QuantumMQO()
        self.max_queries_per_cluster = max_queries_per_cluster

    #: Static alias kept for the public API: sub-problem construction is
    #: shared with the parallel pipeline.
    build_subproblem = staticmethod(build_subproblem)

    def solve(
        self,
        problem: MQOProblem,
        num_reads: int | None = None,
        num_gauges: int | None = None,
    ) -> DecompositionResult:
        """Cluster the queries and solve one sub-QUBO per cluster.

        Clusters with the strongest internal sharing solve first so later
        clusters can condition on as many selected plans as possible; the
        ordering weights come from one vectorised
        :func:`~repro.mqo.clustering.internal_weights` pass instead of
        re-iterating every savings pair once per cluster.
        """
        clusters = cluster_queries(problem, max_cluster_size=self.max_queries_per_cluster)
        weights = internal_weights(problem, clusters)
        solve_order = sorted(
            range(len(clusters)), key=lambda index: (-float(weights[index]), index)
        )

        selected: List[int] = []
        cluster_results: List[QuantumMQOResult] = []
        for cluster_index in solve_order:
            subproblem = build_subproblem(problem, clusters[cluster_index], selected)
            result = self.pipeline.solve(
                subproblem.problem, num_reads=num_reads, num_gauges=num_gauges
            )
            cluster_results.append(result)
            for local_plan in result.best_solution.selected_plans:
                selected.append(subproblem.plan_map[local_plan])

        solution = problem.solution_from_selection(selected)
        return DecompositionResult(
            problem=problem,
            solution=solution,
            clusters=[tuple(cluster) for cluster in clusters],
            solve_order=solve_order,
            cluster_results=cluster_results,
        )


# ---------------------------------------------------------------------- #
# The parallel partition–solve–stitch pipeline
# ---------------------------------------------------------------------- #
_shared_frontend: Optional["ServiceFrontend"] = None
_shared_frontend_lock = threading.Lock()


def default_decomposition_frontend() -> "ServiceFrontend":
    """The process-wide frontend decomposed solves farm clusters through.

    Shared so repeated solves of overlapping instances reuse one result
    cache: two clusters with the same canonical hash, solver, budget and
    seed resolve to one execution.
    """
    global _shared_frontend
    with _shared_frontend_lock:
        if _shared_frontend is None:
            from repro.service.cache import ResultCache
            from repro.service.frontend import ServiceFrontend

            _shared_frontend = ServiceFrontend(cache=ResultCache(capacity=512))
        return _shared_frontend


@dataclass
class ParallelDecompositionResult:
    """Outcome of a parallel partition–solve–stitch run.

    Attributes
    ----------
    problem / solution:
        The original instance and the stitched whole-instance solution
        (deterministic for a fixed seed, independent of cluster
        completion order).
    clusters / solve_order / waves:
        The canonical clustering, the conditioning order, and the wave
        schedule that was executed.
    cluster_results:
        Per-cluster service results indexed by *canonical* cluster index
        (``None`` for clusters whose solve failed).
    trajectory:
        Monotone anytime trajectory of the stitched global incumbent.
    partition_ms:
        Wall-clock spent partitioning and scheduling.
    errors:
        Failure messages keyed by canonical cluster index; failed
        clusters keep their baseline (cheapest-plan) selection.
    """

    problem: MQOProblem
    solution: MQOSolution
    clusters: List[Tuple[int, ...]]
    solve_order: List[int]
    waves: List[List[int]]
    cluster_results: List[Optional["SolveResult"]]
    trajectory: SolverTrajectory
    partition_ms: float = 0.0
    errors: Dict[int, str] = field(default_factory=dict)

    @property
    def num_clusters(self) -> int:
        """Number of cluster sub-problems."""
        return len(self.clusters)

    @property
    def num_waves(self) -> int:
        """Number of sequential execution waves."""
        return len(self.waves)

    @property
    def best_cost(self) -> float:
        """Cost of the stitched solution."""
        return self.solution.cost


def _realized_with(
    arrays, plans: np.ndarray, partner_mask: np.ndarray
) -> float:
    """Total savings between ``plans`` and the plans set in ``partner_mask``."""
    if len(plans) == 0:
        return 0.0
    starts = arrays.adj_indptr[plans]
    counts = (arrays.adj_indptr[plans + 1] - starts).astype(np.int64)
    entries = _multi_arange(starts, counts)
    if len(entries) == 0:
        return 0.0
    hit = partner_mask[arrays.adj_indices[entries]]
    return float(arrays.adj_values[entries][hit].sum())


def _intra_savings(arrays, plans: np.ndarray, scratch: np.ndarray) -> float:
    """Total savings among ``plans`` (each pair counted once)."""
    if len(plans) < 2:
        return 0.0
    scratch[plans] = True
    value = _realized_with(arrays, plans, scratch) / 2.0
    scratch[plans] = False
    return value


class ParallelDecomposition:
    """Partition–solve–stitch pipeline over the service frontend.

    Parameters
    ----------
    frontend:
        The :class:`~repro.service.frontend.ServiceFrontend` cluster
        sub-problems are submitted through (the shared decomposition
        frontend when omitted) — its result cache deduplicates repeated
        cluster solves by canonical hash.
    max_cluster_size:
        Query-count cap per cluster (see
        :func:`~repro.mqo.clustering.cluster_queries`).
    cluster_solvers:
        Solver-name preference per cluster: the first registered solver
        whose capabilities accept the sub-problem runs it (the last name
        is used unconditionally as the fallback).
    max_workers:
        Concurrent cluster solves (defaults to the CPU count); 1 makes
        the dispatch sequential while keeping the wave conditioning
        semantics, which is the apples-to-apples baseline the
        decomposition benchmark compares against.
    cluster_budget_ms:
        Optional fixed per-cluster time budget; by default the solve
        budget is split evenly across waves (deterministic, so cluster
        cache keys are stable across runs).
    sequential_conditioning:
        When true, every cluster gets its own wave in conditioning order
        — the legacy fully-sequential scheme (implies no parallelism).
    """

    #: Default per-cluster solver preference (first supported name wins).
    DEFAULT_CLUSTER_SOLVERS: Tuple[str, ...] = ("QA", "CLIMB")

    #: Floor for the per-cluster budget so tiny global budgets still
    #: give every cluster a runnable slice.
    MIN_CLUSTER_BUDGET_MS = 25.0

    def __init__(
        self,
        frontend: "ServiceFrontend | None" = None,
        max_cluster_size: int = 32,
        cluster_solvers: Sequence[str] = DEFAULT_CLUSTER_SOLVERS,
        max_workers: int | None = None,
        cluster_budget_ms: float | None = None,
        sequential_conditioning: bool = False,
        name: str = DECOMPOSED_SOLVER_NAME,
    ) -> None:
        if max_cluster_size <= 0:
            raise InvalidProblemError(
                f"max_cluster_size must be positive, got {max_cluster_size}"
            )
        if not cluster_solvers:
            raise SolverError("cluster_solvers must name at least one solver")
        if max_workers is not None and max_workers <= 0:
            raise SolverError(f"max_workers must be positive, got {max_workers}")
        self._frontend = frontend
        self.max_cluster_size = max_cluster_size
        self.cluster_solvers = tuple(cluster_solvers)
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.cluster_budget_ms = cluster_budget_ms
        self.sequential_conditioning = sequential_conditioning
        self.name = name

    @property
    def frontend(self) -> "ServiceFrontend":
        """The frontend clusters are farmed through (created lazily)."""
        if self._frontend is None:
            self._frontend = default_decomposition_frontend()
        return self._frontend

    def _pick_solver(self, subproblem: MQOProblem) -> str:
        """First preferred solver whose capabilities accept ``subproblem``."""
        registry = self.frontend.registry
        for name in self.cluster_solvers[:-1]:
            if name in registry and registry.get(name).capabilities.supports(subproblem):
                return name
        return self.cluster_solvers[-1]

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        problem: MQOProblem,
        time_budget_ms: float = 1000.0,
        seed: Optional[int] = None,
    ) -> ParallelDecompositionResult:
        """Partition ``problem``, farm the clusters out, stitch the result.

        The stitched solution is deterministic for a fixed seed: cluster
        sub-requests carry seeds derived from the *canonical* cluster
        index, conditioning sets are frozen per wave, and a cluster
        selection is only merged when it does not worsen the global cost
        (its delta is order-independent within a wave), so the final
        merged selection does not depend on completion order.
        """
        if time_budget_ms <= 0:
            raise SolverError(f"time budget must be positive, got {time_budget_ms}")
        from repro.service.jobs import SolveRequest

        tracer = get_tracer()
        recorder = TrajectoryRecorder(self.name)
        progress_observers = current_progress_observers()

        with tracer.span("mqo.partition", {"plans": problem.num_plans}) as span:
            clusters = cluster_queries(problem, max_cluster_size=self.max_cluster_size)
            weights = internal_weights(problem, clusters)
            if self.sequential_conditioning:
                order = sorted(
                    range(len(clusters)), key=lambda i: (-float(weights[i]), i)
                )
                schedule = WaveSchedule(
                    solve_order=order, waves=[[index] for index in order]
                )
            else:
                edges = cluster_edges(problem, clusters)
                schedule = build_wave_schedule(len(clusters), edges, weights)
            span.set_attribute("clusters", len(clusters))
            span.set_attribute("waves", schedule.num_waves)
        _COMPONENTS.inc(len(clusters))
        partition_ms = recorder.elapsed_ms()

        arrays = problem.arrays()
        total = len(clusters)
        budget = self.cluster_budget_ms
        if budget is None:
            budget = max(
                self.MIN_CLUSTER_BUDGET_MS,
                min(time_budget_ms, time_budget_ms / max(1, schedule.num_waves)),
            )

        # The stitch starts from the always-feasible cheapest-plan
        # selection, so the global incumbent is finite before the first
        # cluster completes.
        choices = arrays.cheapest_choices().copy()
        selected_mask = np.zeros(arrays.num_plans, dtype=bool)
        selected_mask[arrays.choices_to_plans(choices)] = True
        scratch = np.zeros(arrays.num_plans, dtype=bool)
        current_cost = float(
            arrays.selection_cost_batch(choices[np.newaxis, :], validate=False)[0]
        )
        recorder.record(
            MQOSolution.from_precomputed(
                problem,
                arrays.choices_to_plans(choices).tolist(),
                current_cost,
                True,
            )
        )

        cluster_results: List[Optional["SolveResult"]] = [None] * total
        errors: Dict[int, str] = {}
        completed = 0
        query_done = np.zeros(arrays.num_queries, dtype=bool)
        conditioning: Tuple[int, ...] = ()

        def run_cluster(
            cluster_index: int, already: Tuple[int, ...]
        ) -> Tuple[ClusterSubproblem, "SolveResult"]:
            subproblem = build_subproblem(problem, clusters[cluster_index], already)
            request = SolveRequest(
                problem=subproblem.problem,
                solver=self._pick_solver(subproblem.problem),
                time_budget_ms=budget,
                seed=derive_seed(seed, cluster_index),
                job_id=f"{self.name}-c{cluster_index}",
            )
            return subproblem, self.frontend.submit(request)

        def merge(cluster_index: int, subproblem: ClusterSubproblem, result) -> None:
            nonlocal current_cost, completed
            completed += 1
            if result.error is not None:
                errors[cluster_index] = result.error
                _notify_progress(progress_observers, self.name, completed, total)
                return
            cluster_results[cluster_index] = result
            new_plans = np.asarray(
                sorted(subproblem.plan_map[p] for p in result.selected_plans),
                dtype=np.int64,
            )
            queries = arrays.plan_query[new_plans].astype(np.int64)
            old_plans = arrays.choices_to_plans(choices)[queries]
            # Global delta of swapping this cluster's queries from their
            # current plans to the solver's selection.  Same-wave clusters
            # share no savings with this one, so the delta is independent
            # of completion order.
            selected_mask[old_plans] = False
            delta = (
                float(arrays.plan_cost[new_plans].sum())
                - float(arrays.plan_cost[old_plans].sum())
                - _realized_with(arrays, new_plans, selected_mask)
                - _intra_savings(arrays, new_plans, scratch)
                + _realized_with(arrays, old_plans, selected_mask)
                + _intra_savings(arrays, old_plans, scratch)
            )
            if delta <= 1e-12:
                selected_mask[new_plans] = True
                choices[queries] = new_plans - arrays.query_offsets[queries]
                current_cost += delta
                recorder.record(
                    MQOSolution.from_precomputed(
                        problem,
                        arrays.choices_to_plans(choices).tolist(),
                        current_cost,
                        True,
                    )
                )
            else:  # solver's pick would worsen the stitched cost: keep baseline
                selected_mask[old_plans] = True
            _notify_progress(progress_observers, self.name, completed, total)

        workers = max(1, min(self.max_workers, schedule.max_wave_size))
        if workers > 1:
            executor: Optional[ThreadPoolExecutor] = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="decomp"
            )
        else:
            executor = None
        try:
            for wave in schedule.waves:
                _WAVE_SIZE.set(len(wave))
                if executor is not None and len(wave) > 1:
                    futures = {
                        executor.submit(run_cluster, index, conditioning): index
                        for index in wave
                    }
                    for future in as_completed(futures):
                        cluster_index = futures[future]
                        try:
                            subproblem, result = future.result()
                        except Exception as exc:  # noqa: BLE001 — cluster failures
                            # degrade to the baseline selection, never the solve.
                            completed += 1
                            errors[cluster_index] = f"{type(exc).__name__}: {exc}"
                            _notify_progress(
                                progress_observers, self.name, completed, total
                            )
                            continue
                        merge(cluster_index, subproblem, result)
                else:
                    for cluster_index in wave:
                        try:
                            subproblem, result = run_cluster(cluster_index, conditioning)
                        except Exception as exc:  # noqa: BLE001 — see above
                            completed += 1
                            errors[cluster_index] = f"{type(exc).__name__}: {exc}"
                            _notify_progress(
                                progress_observers, self.name, completed, total
                            )
                            continue
                        merge(cluster_index, subproblem, result)
                # Freeze the conditioning set for the next wave: whatever is
                # now selected for every finished cluster's queries (the
                # solver picks, or the baseline where a solve failed).
                for index in wave:
                    query_done[np.asarray(clusters[index], dtype=np.int64)] = True
                conditioning = tuple(
                    int(p)
                    for p in arrays.choices_to_plans(choices)[query_done].tolist()
                )
        finally:
            if executor is not None:
                executor.shutdown(wait=True)

        with tracer.span("mqo.stitch", {"clusters": total}) as span:
            selected = arrays.choices_to_plans(choices).tolist()
            solution = problem.solution_from_selection(selected)
            recorder.record(solution)
            span.set_attribute("failed", len(errors))
            span.set_attribute("cost", solution.cost)
        trajectory = recorder.finish()
        trajectory.best_solution = solution

        return ParallelDecompositionResult(
            problem=problem,
            solution=solution,
            clusters=[tuple(cluster) for cluster in clusters],
            solve_order=list(schedule.solve_order),
            waves=[list(wave) for wave in schedule.waves],
            cluster_results=cluster_results,
            trajectory=trajectory,
            partition_ms=partition_ms,
            errors=errors,
        )


class DecomposedAnytimeSolver(AnytimeSolver):
    """Service-registrable anytime view of the parallel decomposition.

    Registered as ``"decomposed_qa"`` with a ``min_plans`` capability one
    past the annealer's device capacity, so the portfolio and the server
    route instances *beyond* embedding capacity here instead of failing —
    while small instances keep their existing solver line-up untouched.
    The cluster cap adapts per instance: as many queries per cluster as
    keep the worst-case sub-QUBO within the device (bounded by
    ``max_cluster_size``).
    """

    name = DECOMPOSED_SOLVER_NAME

    def __init__(
        self,
        max_cluster_size: int = 32,
        frontend: "ServiceFrontend | None" = None,
        max_workers: int | None = None,
    ) -> None:
        if max_cluster_size <= 0:
            raise InvalidProblemError(
                f"max_cluster_size must be positive, got {max_cluster_size}"
            )
        self.max_cluster_size = max_cluster_size
        self._frontend = frontend
        self.max_workers = max_workers

    def _cluster_cap(self, problem: MQOProblem) -> int:
        """Largest query count whose worst-case sub-QUBO fits the device."""
        from repro.service.qa_adapter import QuantumAnnealingSolver

        device_plans = QuantumAnnealingSolver.default_max_plans()
        widest_query = int(problem.arrays().plans_per_query.max())
        return max(1, min(self.max_cluster_size, device_plans // max(1, widest_query)))

    def solve(
        self,
        problem: MQOProblem,
        time_budget_ms: float,
        seed: SeedLike = None,
    ) -> SolverTrajectory:
        """Run the partition–solve–stitch pipeline under ``time_budget_ms``."""
        self._check_budget(time_budget_ms)
        pipeline = ParallelDecomposition(
            frontend=self._frontend,
            max_cluster_size=self._cluster_cap(problem),
            max_workers=self.max_workers,
        )
        base_seed = None if seed is None else int(seed)  # SeedLike -> request seed
        return pipeline.solve(
            problem, time_budget_ms=time_budget_ms, seed=base_seed
        ).trajectory
