"""Lightweight spans with context propagation and a no-op fast path.

A :class:`Span` names one timed stage of the pipeline (``mqo.qubo_build``,
``mqo.anneal``, ``service.solve`` …).  Spans nest through a
``contextvars.ContextVar``: whichever span is *current* when a new one
starts becomes its parent, so a trace reconstructs the call tree without
any explicit plumbing.

Two propagation gaps need explicit help:

* **Threads** — ``contextvars`` do not cross ``ThreadPoolExecutor``
  boundaries.  Capture :meth:`Tracer.current_context` before spawning
  and re-install it inside the worker with :meth:`Tracer.activate`
  (the portfolio scheduler does exactly this, mirroring how it already
  forwards improvement observers).
* **Processes** — a :class:`SpanContext` round-trips through
  :meth:`SpanContext.to_dict` / :meth:`SpanContext.from_dict`, so batch
  jobs can carry their parent context into a ``ProcessPoolExecutor``
  worker and ship finished spans back as dictionaries for
  :meth:`Tracer.adopt`.

Tracing defaults to *disabled*.  The disabled path allocates nothing:
:meth:`Tracer.span` returns one shared no-op singleton after a single
attribute check, so instrumentation can stay inline on the hot path.
Per-iteration loops (e.g. hill-climbing improvements) should still guard
on :attr:`Tracer.enabled` and prefer counters over spans.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.obs.metrics import get_registry

__all__ = ["Span", "SpanContext", "Tracer", "get_tracer", "configure_tracer"]

#: Spans discarded because the tracer ring buffer was full — a real
#: counter (not just :attr:`Tracer.dropped`) so lost telemetry is itself
#: visible in the Prometheus exposition, including federated shards.
_SPANS_DROPPED = get_registry().counter(
    "repro_obs_spans_dropped_total",
    "Finished spans dropped because the tracer ring buffer was full.",
)

#: Current tracer ring-buffer occupancy (finished, undrained spans).
_BUFFER_OCCUPANCY = get_registry().gauge(
    "repro_obs_span_buffer_spans",
    "Finished spans currently buffered by the tracer.",
)

#: The ambient span context of the running task (None outside any span).
_CURRENT: ContextVar[Optional["SpanContext"]] = ContextVar("repro_obs_span", default=None)

#: Process-unique prefix so span ids never collide across pool workers.
_ID_PREFIX = uuid.uuid4().hex[:8]
_ID_COUNTER = itertools.count(1)


def _new_span_id() -> str:
    """A process-unique span id (cheap: counter + fixed random prefix)."""
    return f"{_ID_PREFIX}-{next(_ID_COUNTER):08x}"


class SpanContext:
    """The serialisable identity of a span: ``(trace_id, span_id)``.

    This is what crosses thread and process boundaries; the heavyweight
    :class:`Span` (timings, attributes) never travels.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def to_dict(self) -> Dict[str, str]:
        """JSON-friendly form for crossing a process boundary."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanContext":
        """Rebuild a context shipped via :meth:`to_dict`."""
        return cls(trace_id=str(payload["trace_id"]), span_id=str(payload["span_id"]))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpanContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SpanContext trace={self.trace_id} span={self.span_id}>"


class Span:
    """One timed, named stage; usable as a context manager.

    Entering the span makes it the ambient parent for spans started
    underneath it (same task); exiting records the duration and hands
    the finished span to its tracer.
    """

    __slots__ = (
        "name",
        "context",
        "parent_id",
        "attributes",
        "start_s",
        "duration_ms",
        "status",
        "_tracer",
        "_start_perf",
        "_token",
    )

    def __init__(
        self,
        name: str,
        tracer: Optional["Tracer"] = None,
        parent: Optional[SpanContext] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        trace_id = parent.trace_id if parent is not None else uuid.uuid4().hex[:16]
        self.name = name
        self.context = SpanContext(trace_id, _new_span_id())
        self.parent_id = parent.span_id if parent is not None else None
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.start_s = 0.0
        self.duration_ms: Optional[float] = None
        self.status = "ok"
        self._tracer = tracer
        self._start_perf = 0.0
        self._token = None

    # -------------------------------------------------------------- #
    # Recording
    # -------------------------------------------------------------- #
    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one JSON-scalar attribute to the span."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self.start_s = time.time()
        self._start_perf = time.perf_counter()
        self._token = _CURRENT.set(self.context)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_ms = (time.perf_counter() - self._start_perf) * 1000.0
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if self._tracer is not None:
            self._tracer._record(self)
        return None

    # -------------------------------------------------------------- #
    # Serialisation (NDJSON export / process-pool return path)
    # -------------------------------------------------------------- #
    def to_dict(self) -> Dict[str, Any]:
        """One JSON-friendly record (one NDJSON line) for this span."""
        return {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "start_s": round(self.start_s, 6),
            "duration_ms": (
                round(self.duration_ms, 6) if self.duration_ms is not None else None
            ),
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a finished span from its :meth:`to_dict` record."""
        span = cls(name=str(payload["name"]))
        span.context = SpanContext(str(payload["trace_id"]), str(payload["span_id"]))
        parent_id = payload.get("parent_id")
        span.parent_id = None if parent_id is None else str(parent_id)
        span.start_s = float(payload.get("start_s", 0.0))
        duration = payload.get("duration_ms")
        span.duration_ms = None if duration is None else float(duration)
        span.status = str(payload.get("status", "ok"))
        span.attributes = dict(payload.get("attributes", {}))
        return span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Span {self.name} {self.duration_ms} ms>"


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        """Discarded — tracing is off."""
        return None


#: The singleton no-op span; never mutated, safe to share everywhere.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans and buffers finished ones until they are drained.

    The buffer is bounded (``buffer_size`` most recent spans are kept;
    older ones are dropped and counted in :attr:`dropped`), so a
    long-running server with tracing left on cannot grow without bound.
    """

    def __init__(self, enabled: bool = False, buffer_size: int = 20000) -> None:
        if buffer_size <= 0:
            raise ValueError(f"buffer_size must be positive, got {buffer_size}")
        self.enabled = enabled
        self.buffer_size = buffer_size
        self.dropped = 0
        self._finished: deque = deque(maxlen=buffer_size)
        self._lock = threading.Lock()

    # -------------------------------------------------------------- #
    # Span creation and context plumbing
    # -------------------------------------------------------------- #
    def span(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        """A new child span of the ambient context (no-op when disabled).

        The disabled path performs one attribute check and returns the
        shared :data:`NOOP_SPAN` — no allocation, no contextvar access.
        """
        if not self.enabled:
            return NOOP_SPAN
        return Span(name, tracer=self, parent=_CURRENT.get(), attributes=attributes)

    def current_context(self) -> Optional[SpanContext]:
        """The ambient span context (capture before spawning threads)."""
        if not self.enabled:
            return None
        return _CURRENT.get()

    @contextmanager
    def activate(self, context: Optional[SpanContext]) -> Iterator[None]:
        """Install ``context`` as the ambient parent for this block.

        Used on the far side of a thread or process hop; ``None`` is
        accepted and means "no parent" (the block runs unchanged).
        """
        if context is None:
            yield
            return
        token = _CURRENT.set(context)
        try:
            yield
        finally:
            _CURRENT.reset(token)

    # -------------------------------------------------------------- #
    # Collection
    # -------------------------------------------------------------- #
    def _record(self, span: Span) -> None:
        """Buffer one finished span (called from ``Span.__exit__``)."""
        with self._lock:
            if len(self._finished) == self.buffer_size:
                self.dropped += 1
                _SPANS_DROPPED.inc()
            self._finished.append(span)
            _BUFFER_OCCUPANCY.set(len(self._finished))

    def adopt(self, records: Iterable[Dict[str, Any]]) -> int:
        """Ingest span dictionaries produced in another process.

        Returns the number of spans adopted.  Used by the batch executor
        to merge the spans a pool worker shipped back with its result.
        """
        count = 0
        with self._lock:
            for record in records:
                if len(self._finished) == self.buffer_size:
                    self.dropped += 1
                    _SPANS_DROPPED.inc()
                self._finished.append(Span.from_dict(record))
                count += 1
            _BUFFER_OCCUPANCY.set(len(self._finished))
        return count

    def drain(self) -> List[Span]:
        """Remove and return every buffered finished span (oldest first)."""
        with self._lock:
            spans = list(self._finished)
            self._finished.clear()
            _BUFFER_OCCUPANCY.set(0)
        return spans

    def __len__(self) -> int:
        """Number of finished spans currently buffered."""
        with self._lock:
            return len(self._finished)


#: The process-wide tracer every instrumented module uses.
_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled by default)."""
    return _GLOBAL_TRACER


def configure_tracer(enabled: bool, buffer_size: Optional[int] = None) -> Tracer:
    """Enable or disable the global tracer in place.

    Mutating (rather than swapping) the singleton keeps every module
    that grabbed a reference at import time on the live configuration.
    Returns the tracer for convenience.
    """
    if buffer_size is not None:
        if buffer_size <= 0:
            raise ValueError(f"buffer_size must be positive, got {buffer_size}")
        with _GLOBAL_TRACER._lock:
            _GLOBAL_TRACER.buffer_size = buffer_size
            _GLOBAL_TRACER._finished = deque(_GLOBAL_TRACER._finished, maxlen=buffer_size)
    _GLOBAL_TRACER.enabled = enabled
    return _GLOBAL_TRACER
