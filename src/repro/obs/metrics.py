"""Generic metrics: counters, gauges, histograms, and one percentile.

The registry is deliberately small — just enough structure for the
server's metrics endpoint and the Prometheus exposition in
:mod:`repro.obs.export`:

* instruments are grouped into *families* by metric name; a family has
  one type (counter/gauge/histogram) and optional per-child labels,
* every instrument is thread-safe (one small lock each; the recording
  paths are already lock-protected call sites today),
* histograms keep constant memory: cumulative buckets + lifetime
  count/sum/max + a bounded ring of recent samples for percentiles.

This module is also the home of the repository's **one** percentile
definition.  Before it existed there were two — ``bench/stats.py`` used
the nearest-rank estimator while ``server/metrics.py`` used a rounded
linear index — which made client-side and server-side tails disagree on
small windows.  Nearest rank wins (it is the convention the BENCH
documents were committed with); both callers now delegate here.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    "percentiles",
    "sorted_percentiles",
    "DEFAULT_BUCKETS_MS",
]

#: Default histogram bucket upper bounds, sized for millisecond latencies.
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


# ------------------------------------------------------------------ #
# The canonical percentile estimator
# ------------------------------------------------------------------ #
def _check_q(q: float) -> None:
    if not 0.0 < q <= 1.0:
        raise ReproError(f"percentile q must be in (0, 1], got {q}")


def sorted_percentiles(ordered: Sequence[float], qs: Sequence[float]) -> List[float]:
    """Nearest-rank percentiles of an **already sorted** sample list.

    The single-sort building block: sort once, then take as many
    percentiles as needed in O(1) each.
    """
    if not ordered:
        raise ReproError("cannot take a percentile of zero samples")
    n = len(ordered)
    values = []
    for q in qs:
        _check_q(q)
        rank = max(1, math.ceil(q * n))
        values.append(float(ordered[rank - 1]))
    return values


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in (0, 1])."""
    return sorted_percentiles(sorted(samples), (q,))[0]


def percentiles(samples: Sequence[float], qs: Sequence[float]) -> List[float]:
    """Nearest-rank percentiles for every ``q`` in ``qs``, sorting once."""
    return sorted_percentiles(sorted(samples), qs)


# ------------------------------------------------------------------ #
# Instruments
# ------------------------------------------------------------------ #
class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Increase the counter (negative amounts are rejected)."""
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease (amount={amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, inflight jobs …)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (may be negative)."""
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value


class Histogram:
    """Constant-memory distribution: buckets, lifetime stats, sample window.

    Cumulative bucket counts serve the Prometheus exposition; the
    bounded ring of most recent samples serves percentile snapshots
    (the lifetime count/sum/max are exact regardless of the window).
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "labels",
        "buckets",
        "_bucket_counts",
        "_window",
        "_samples",
        "_cursor",
        "count",
        "total",
        "max_value",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        window: int = 2048,
        buckets: Sequence[float] = DEFAULT_BUCKETS_MS,
    ) -> None:
        if window <= 0:
            raise ReproError(f"histogram window must be positive, got {window}")
        if list(buckets) != sorted(buckets):
            raise ReproError(f"histogram buckets must be sorted, got {list(buckets)}")
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._bucket_counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._window = window
        self._samples: List[float] = []
        self._cursor = 0
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        sample = float(value)
        with self._lock:
            self.count += 1
            self.total += sample
            if sample > self.max_value:
                self.max_value = sample
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if sample <= bound:
                    index = i
                    break
            self._bucket_counts[index] += 1
            if len(self._samples) < self._window:
                self._samples.append(sample)
            else:
                self._samples[self._cursor] = sample
                self._cursor = (self._cursor + 1) % self._window

    @property
    def mean(self) -> float:
        """Lifetime mean (0 when no samples)."""
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def window_percentiles(self, qs: Sequence[float]) -> List[float]:
        """Percentiles over the recent-sample window, sorting **once**.

        Returns zeros when no samples have been observed (metrics
        snapshots must render before traffic arrives).
        """
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return [0.0] * len(qs)
        return sorted_percentiles(ordered, qs)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at ``+Inf``."""
        with self._lock:
            counts = list(self._bucket_counts)
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts[:-1]):
            running += count
            pairs.append((bound, running))
        pairs.append((math.inf, running + counts[-1]))
        return pairs

    def state_snapshot(self) -> Dict[str, Any]:
        """The mergeable lifetime state (buckets, counts, sum, max).

        The recent-sample window is deliberately excluded: percentiles
        cannot be merged across processes, only bucket counts can.
        """
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "bucket_counts": list(self._bucket_counts),
                "count": self.count,
                "total": self.total,
                "max": self.max_value,
            }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Add another histogram's :meth:`state_snapshot` into this one.

        Bucket bounds must match exactly — merging differently-bucketed
        histograms of the same name is a registration error upstream.
        """
        bounds = [float(b) for b in state.get("buckets", ())]
        if bounds != list(self.buckets):
            raise ReproError(
                f"histogram {self.name!r}: cannot merge mismatched buckets "
                f"{bounds} into {list(self.buckets)}"
            )
        counts = state.get("bucket_counts", ())
        if len(counts) != len(self._bucket_counts):
            raise ReproError(
                f"histogram {self.name!r}: snapshot has {len(counts)} bucket "
                f"counts, expected {len(self._bucket_counts)}"
            )
        with self._lock:
            for index, count in enumerate(counts):
                self._bucket_counts[index] += int(count)
            self.count += int(state.get("count", 0))
            self.total += float(state.get("total", 0.0))
            self.max_value = max(self.max_value, float(state.get("max", 0.0)))


# ------------------------------------------------------------------ #
# Registry
# ------------------------------------------------------------------ #
class _Family:
    """All instruments sharing one metric name (one type, many labels)."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: Dict[Tuple[Tuple[str, str], ...], Any] = {}


def _label_key(labels: Optional[Dict[str, str]]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items())) if labels else ()


class MetricsRegistry:
    """Thread-safe get-or-create store of metric families.

    Instruments are identified by ``(name, labels)``; asking twice for
    the same identity returns the same object, so call sites can simply
    re-request instead of caching handles.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _get_or_create(self, name: str, kind: str, help_text: str, labels, factory):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(name, kind, help_text)
            elif family.kind != kind:
                raise ReproError(
                    f"metric {name!r} is a {family.kind}, cannot re-register as {kind}"
                )
            if help_text and not family.help:
                family.help = help_text
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = factory()
            return child

    def counter(self, name: str, help: str = "", labels=None) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get_or_create(name, "counter", help, labels, lambda: Counter(name, labels))

    def gauge(self, name: str, help: str = "", labels=None) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get_or_create(name, "gauge", help, labels, lambda: Gauge(name, labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels=None,
        window: int = 2048,
        buckets: Sequence[float] = DEFAULT_BUCKETS_MS,
        factory=None,
    ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``.

        ``factory`` lets a caller register a :class:`Histogram`
        subclass (the server's ``LatencyStats``) under this name.
        """
        make = factory or (lambda: Histogram(name, labels, window=window, buckets=buckets))
        return self._get_or_create(name, "histogram", help, labels, make)

    def collect(self) -> List[_Family]:
        """Every family, name-sorted (the exporters iterate this)."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def to_snapshot(self) -> Dict[str, Any]:
        """The whole registry as one plain-data, pickle/JSON-safe dict.

        This is the federation wire format: shard processes ship it over
        the control pipe and the parent rebuilds it with
        :meth:`merge_snapshot`.  Counters and gauges carry their value;
        histograms carry their mergeable lifetime state (bucket counts,
        count, sum, max — the percentile window does not travel).
        """
        families: List[Dict[str, Any]] = []
        for family in self.collect():
            children: List[Dict[str, Any]] = []
            for key, instrument in sorted(family.children.items()):
                child: Dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    child.update(instrument.state_snapshot())
                else:
                    child["value"] = instrument.value
                children.append(child)
            families.append(
                {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "children": children,
                }
            )
        return {"families": families}

    def merge_snapshot(
        self, snapshot: Dict[str, Any], extra_labels: Optional[Dict[str, str]] = None
    ) -> None:
        """Merge a :meth:`to_snapshot` payload into this registry.

        Merge semantics per kind: counters **sum**, gauges are
        **last-write-wins** per label set, histograms merge
        **bucket-wise** (bounds must match).  ``extra_labels`` is applied
        to every merged series — the server uses ``{"shard": "N"}`` to
        keep per-shard series distinct, then merges the same snapshot
        again *without* extra labels to synthesize the cluster rollup.
        """
        for family in snapshot.get("families", ()):
            name = family["name"]
            kind = family["kind"]
            help_text = family.get("help", "")
            for child in family.get("children", ()):
                labels = dict(child.get("labels") or {})
                if extra_labels:
                    labels.update(extra_labels)
                label_arg = labels or None
                if kind == "counter":
                    self.counter(name, help_text, label_arg).inc(int(child["value"]))
                elif kind == "gauge":
                    self.gauge(name, help_text, label_arg).set(float(child["value"]))
                elif kind == "histogram":
                    histogram = self.histogram(
                        name, help_text, label_arg, buckets=tuple(child["buckets"])
                    )
                    histogram.merge_state(child)
                else:
                    raise ReproError(f"unknown metric kind {kind!r} in snapshot")

    def counters_snapshot(self) -> Dict[str, int]:
        """Unlabelled counters as one flat ``{name: value}`` dictionary."""
        snapshot: Dict[str, int] = {}
        for family in self.collect():
            if family.kind != "counter":
                continue
            child = family.children.get(())
            if child is not None:
                snapshot[family.name] = child.value
        return snapshot


#: The process-wide registry used by service/pipeline instrumentation.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _GLOBAL_REGISTRY


def _iter_labelled(families: Iterable[_Family]):
    """Yield ``(family, labels_dict, instrument)`` triples (export helper)."""
    for family in families:
        for key, instrument in sorted(family.children.items()):
            yield family, dict(key), instrument
