"""Exporters: NDJSON trace dumps and Prometheus text exposition.

NDJSON (one JSON object per line) is the trace interchange format — it
appends cheaply, streams through ``jq``, and round-trips through
:func:`span_from_json` without loss.  The Prometheus renderer follows
the text exposition format version 0.0.4 (``# HELP``/``# TYPE`` headers,
``_bucket``/``_sum``/``_count`` series for histograms, ``+Inf`` final
bucket), which is what the server's ``metrics`` protocol op serves.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, _iter_labelled
from repro.obs.trace import Span

__all__ = [
    "spans_to_ndjson",
    "write_ndjson",
    "span_from_json",
    "render_prometheus",
]

SpanLike = Union[Span, Dict[str, Any]]


def _as_record(span: SpanLike) -> Dict[str, Any]:
    return span.to_dict() if isinstance(span, Span) else dict(span)


def spans_to_ndjson(spans: Iterable[SpanLike]) -> str:
    """Serialise spans to NDJSON text (one compact JSON object per line)."""
    lines = [json.dumps(_as_record(span), sort_keys=True) for span in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_ndjson(spans: Iterable[SpanLike], path: Union[str, Path], append: bool = False) -> Path:
    """Write (or append) spans to ``path`` as NDJSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a" if append else "w") as handle:
        handle.write(spans_to_ndjson(spans))
    return target


def span_from_json(line: str) -> Span:
    """Rebuild one :class:`Span` from one NDJSON line."""
    return Span.from_dict(json.loads(line))


# ------------------------------------------------------------------ #
# Prometheus text exposition
# ------------------------------------------------------------------ #
def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _merge_labels(labels: Dict[str, str], extra: Dict[str, str]) -> Dict[str, str]:
    merged = dict(labels)
    merged.update(extra)
    return merged


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text format 0.0.4 (name-sorted)."""
    lines: List[str] = []
    seen_header = set()
    for family, labels, instrument in _iter_labelled(registry.collect()):
        if family.name not in seen_header:
            seen_header.add(family.name)
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(instrument, Counter):
            lines.append(f"{family.name}{_labels_text(labels)} {_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"{family.name}{_labels_text(labels)} {_format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            for bound, cumulative in instrument.cumulative_buckets():
                bucket_labels = _merge_labels(labels, {"le": _format_value(bound)})
                lines.append(f"{family.name}_bucket{_labels_text(bucket_labels)} {cumulative}")
            lines.append(f"{family.name}_sum{_labels_text(labels)} {_format_value(instrument.total)}")
            lines.append(f"{family.name}_count{_labels_text(labels)} {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")
