"""A bounded ring of structured lifecycle events.

Metrics answer *how much*; traces answer *how long*; this module answers
*what happened* — shard spawns and exits, respawns, job retries,
admission rejects, drain begin/end.  Events are tiny dictionaries
(``{"ts", "kind", ...}``) kept in a fixed-size ring so a long-running
server never grows without bound; the most recent window is served by
the ``health`` protocol op and can be dumped to NDJSON (the same
line-per-record format the trace exporter uses).

The log is process-global, mirroring the tracer and metrics registry:
emitters (``server/sharding.py``, ``server/queue.py``, ``server/app.py``)
call :func:`record_event` without plumbing a handle through every layer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

__all__ = [
    "EventLog",
    "get_event_log",
    "record_event",
]

#: Default ring capacity — generous for ops triage, bounded for memory.
DEFAULT_CAPACITY = 1024


class EventLog:
    """Thread-safe bounded ring of event dictionaries."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = int(capacity)
        self._events: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._dropped = 0
        self._lock = threading.Lock()

    def record(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the stored record."""
        event: Dict[str, Any] = {"ts": time.time(), "kind": str(kind)}
        event.update(fields)
        with self._lock:
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(event)
        return event

    def tail(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``limit`` events, oldest first (all when None)."""
        with self._lock:
            events = list(self._events)
        if limit is not None and limit >= 0:
            events = events[-limit:] if limit else []
        return [dict(event) for event in events]

    def clear(self) -> None:
        """Empty the ring (tests; the dropped count is reset too)."""
        with self._lock:
            self._events.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring because it was full."""
        with self._lock:
            return self._dropped

    def write_ndjson(self, path: Union[str, Path], append: bool = False) -> Path:
        """Dump the buffered events to ``path`` as NDJSON; returns the path."""
        from repro.obs.export import write_ndjson

        return write_ndjson(self.tail(), path, append=append)


#: The process-wide event log shared by all server layers.
_GLOBAL_EVENT_LOG = EventLog()


def get_event_log() -> EventLog:
    """The process-wide event log."""
    return _GLOBAL_EVENT_LOG


def record_event(kind: str, **fields: Any) -> Dict[str, Any]:
    """Record one event on the process-wide log (emitter convenience)."""
    return _GLOBAL_EVENT_LOG.record(kind, **fields)
