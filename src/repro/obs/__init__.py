"""Observability layer: tracing, a metrics registry, and exporters.

The paper's central claim is a *time* claim — anytime solution quality
per millisecond across a multi-stage pipeline — so this package gives
every stage a name and a number:

``trace``
    Lightweight spans (:class:`~repro.obs.trace.Tracer`,
    :class:`~repro.obs.trace.Span`) propagated through ``contextvars``
    so they survive the portfolio's racing threads and, via a
    serialisable :class:`~repro.obs.trace.SpanContext`, process-pool
    batch workers.  Disabled tracing is a near-zero-cost no-op.

``metrics``
    A generic registry of counters, gauges and histograms, plus the one
    canonical percentile estimator (nearest rank) shared by the bench
    stats and the server metrics.

``export``
    NDJSON span export and Prometheus text-format exposition.

``events``
    A bounded ring of structured lifecycle events (shard spawns/exits,
    retries, admission rejects, drain) served by the ``health`` op.
"""

from repro.obs.events import EventLog, get_event_log, record_event
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    percentiles,
)
from repro.obs.trace import Span, SpanContext, Tracer, configure_tracer, get_tracer
from repro.obs.export import (
    render_prometheus,
    span_from_json,
    spans_to_ndjson,
    write_ndjson,
)

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "Tracer",
    "configure_tracer",
    "get_event_log",
    "get_registry",
    "get_tracer",
    "record_event",
    "percentile",
    "percentiles",
    "render_prometheus",
    "span_from_json",
    "spans_to_ndjson",
    "write_ndjson",
]
