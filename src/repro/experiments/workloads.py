"""Deprecated shim — the embedded-testcase generator moved to
:mod:`repro.workloads.embedded`.

Instance generation lives in the workload subsystem now, where the
Section 7.1 shape is also registered as the ``embedded`` family
(buildable through :func:`repro.workloads.get_family` /
:class:`repro.workloads.ScenarioSpec` like every other generator).
This module re-exports the public names for existing callers.
"""

from __future__ import annotations

from repro.workloads.embedded import EmbeddedTestCase, generate_embedded_testcase

__all__ = ["EmbeddedTestCase", "generate_embedded_testcase"]
