"""Builders for the tabular exhibits of the paper's evaluation (Table 1)."""

from __future__ import annotations

import statistics
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ReproError
from repro.experiments.runner import InstanceResult
from repro.experiments.scenarios import TestCaseClass
from repro.utils.tables import format_table

__all__ = ["table1_rows", "table1_table"]

#: Solver whose time-to-optimality Table 1 reports.
TABLE1_SOLVER = "LIN-MQO"


def table1_rows(
    results_by_class: Dict[TestCaseClass, Sequence[InstanceResult]],
) -> List[Tuple[int, float, float, float]]:
    """Rows ``(num_queries, min_ms, median_ms, max_ms)`` for LIN-MQO.

    The time reported per instance is the moment the LIN-MQO incumbent
    first reached the best known cost of the instance; instances where
    LIN-MQO never reached it within its budget contribute the full budget
    (a conservative lower bound, flagged in EXPERIMENTS.md).
    """
    if not results_by_class:
        raise ReproError("no results given")
    rows = []
    for test_class, results in results_by_class.items():
        times = []
        for result in results:
            trajectory = result.trajectories.get(TABLE1_SOLVER)
            if trajectory is None:
                continue
            reached = trajectory.time_to_reach(result.best_known_cost)
            times.append(reached if reached is not None else trajectory.total_time_ms)
        if not times:
            continue
        rows.append(
            (
                test_class.num_queries,
                min(times),
                statistics.median(times),
                max(times),
            )
        )
    rows.sort(key=lambda row: -row[0])
    return rows


def table1_table(results_by_class: Dict[TestCaseClass, Sequence[InstanceResult]]) -> str:
    """Rendered Table 1: milliseconds until LIN-MQO finds the optimal solution."""
    rows = table1_rows(results_by_class)
    return format_table(
        ["# Queries", "Minimum", "Median", "Maximum"],
        rows,
        float_fmt=".1f",
        title="Table 1: milliseconds until finding the optimal solution (LIN-MQO)",
    )
