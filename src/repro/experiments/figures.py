"""Builders for the figure data of the paper's evaluation.

Every function returns plain row data (lists of tuples) plus a rendered
plain-text table so the benchmark harness can both print the exhibit and
assert on its structure.  The series correspond one-to-one to the paper's
figure legends.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Sequence, Tuple

from repro.core.complexity import capacity_frontier
from repro.exceptions import ReproError
from repro.experiments.metrics import geometric_mean, scaled_cost, speedup_over_classical
from repro.experiments.runner import InstanceResult
from repro.experiments.scenarios import TestCaseClass
from repro.utils.tables import format_table

__all__ = [
    "quality_vs_time_rows",
    "quality_vs_time_table",
    "figure4_table",
    "figure5_table",
    "figure6_rows",
    "figure6_table",
    "figure7_rows",
    "figure7_table",
]


# --------------------------------------------------------------------------- #
# Figures 4 and 5: solution quality versus optimisation time
# --------------------------------------------------------------------------- #
def quality_vs_time_rows(
    results: Sequence[InstanceResult],
    checkpoints_ms: Sequence[float],
    solver_names: Sequence[str],
) -> List[Tuple]:
    """Average scaled cost per solver at every checkpoint.

    Each row is ``(checkpoint_ms, cost_solver_1, cost_solver_2, ...)``
    in the order of ``solver_names``; costs are averaged over instances.
    Checkpoints before a solver's first solution contribute the scaled
    cost of the pessimistic reference (1.0), mirroring how the paper's
    plots simply show no improvement yet.
    """
    if not results:
        raise ReproError("no instance results given")
    rows = []
    for checkpoint in checkpoints_ms:
        row: List[float] = [float(checkpoint)]
        for name in solver_names:
            values = []
            for result in results:
                trajectory = result.trajectories.get(name)
                if trajectory is None:
                    continue
                cost = trajectory.cost_at_time(checkpoint)
                value = scaled_cost(cost, result.best_known_cost, result.reference_cost)
                values.append(min(value, 1.0) if value != float("inf") else 1.0)
            row.append(sum(values) / len(values) if values else float("nan"))
        rows.append(tuple(row))
    return rows


def quality_vs_time_table(
    results: Sequence[InstanceResult],
    checkpoints_ms: Sequence[float],
    solver_names: Sequence[str],
    title: str,
) -> str:
    """Rendered quality-versus-time table (one column per solver)."""
    rows = quality_vs_time_rows(results, checkpoints_ms, solver_names)
    headers = ["time (ms)"] + list(solver_names)
    return format_table(headers, rows, float_fmt=".4f", title=title)


def figure4_table(
    results: Sequence[InstanceResult],
    checkpoints_ms: Sequence[float],
    solver_names: Sequence[str],
    test_class: TestCaseClass,
) -> str:
    """Figure 4: quality versus time for the 2-plans-per-query class."""
    title = (
        "Figure 4: scaled solution cost vs optimization time "
        f"({test_class.label}, average over {len(results)} instances)"
    )
    return quality_vs_time_table(results, checkpoints_ms, solver_names, title)


def figure5_table(
    results: Sequence[InstanceResult],
    checkpoints_ms: Sequence[float],
    solver_names: Sequence[str],
    test_class: TestCaseClass,
) -> str:
    """Figure 5: quality versus time for the 5-plans-per-query class."""
    title = (
        "Figure 5: scaled solution cost vs optimization time "
        f"({test_class.label}, average over {len(results)} instances)"
    )
    return quality_vs_time_table(results, checkpoints_ms, solver_names, title)


# --------------------------------------------------------------------------- #
# Figure 6: quantum speedup versus qubits per variable
# --------------------------------------------------------------------------- #
def figure6_rows(
    results_by_class: Dict[TestCaseClass, Sequence[InstanceResult]],
    classical_budget_ms: float,
) -> List[Tuple[str, float, float]]:
    """Per test class: (label, qubits per variable, average speedup)."""
    rows = []
    for test_class, results in results_by_class.items():
        if not results:
            continue
        qubits_per_variable = statistics.mean(
            result.testcase.qubits_per_variable for result in results
        )
        speedups = []
        for result in results:
            qa = result.quantum_trajectory()
            if not qa.points:
                continue
            first_read_time, first_read_cost = qa.points[0]
            speedups.append(
                speedup_over_classical(
                    quantum_first_read_cost=first_read_cost,
                    quantum_first_read_time_ms=first_read_time,
                    classical_trajectories=result.classical_trajectories(),
                    classical_budget_ms=classical_budget_ms,
                )
            )
        average_speedup = geometric_mean(speedups) if speedups else float("nan")
        rows.append((test_class.label, qubits_per_variable, average_speedup))
    rows.sort(key=lambda row: row[1])
    return rows


def figure6_table(
    results_by_class: Dict[TestCaseClass, Sequence[InstanceResult]],
    classical_budget_ms: float,
) -> str:
    """Figure 6: average quantum speedup per class, ordered by qubits/variable."""
    rows = figure6_rows(results_by_class, classical_budget_ms)
    return format_table(
        ["test class", "qubits per variable", "avg speedup (x)"],
        rows,
        float_fmt=".2f",
        title="Figure 6: quantum speedup vs qubits per logical variable",
    )


# --------------------------------------------------------------------------- #
# Figure 7: representable problem dimensions per qubit budget
# --------------------------------------------------------------------------- #
def figure7_rows(
    qubit_budgets: Sequence[int] = (1152, 2304, 4608),
    plans_range: Sequence[int] = tuple(range(2, 21)),
    pattern: str = "clustered",
) -> List[Tuple]:
    """Rows ``(plans_per_query, max_queries@budget1, max_queries@budget2, ...)``."""
    frontiers = {
        budget: {
            point.plans_per_query: point.max_queries
            for point in capacity_frontier(budget, plans_range, pattern=pattern)
        }
        for budget in qubit_budgets
    }
    rows = []
    for plans_per_query in plans_range:
        rows.append(
            tuple(
                [plans_per_query]
                + [frontiers[budget][plans_per_query] for budget in qubit_budgets]
            )
        )
    return rows


def figure7_table(
    qubit_budgets: Sequence[int] = (1152, 2304, 4608),
    plans_range: Sequence[int] = tuple(range(2, 21)),
    pattern: str = "clustered",
) -> str:
    """Figure 7: maximal problem dimensions representable per qubit budget."""
    rows = figure7_rows(qubit_budgets, plans_range, pattern)
    headers = ["plans/query"] + [f"{budget} qubits" for budget in qubit_budgets]
    return format_table(
        headers,
        rows,
        title=f"Figure 7: maximal representable queries ({pattern} embedding pattern)",
    )
