"""Experiment orchestration: run all solvers on generated instances.

For every generated instance the runner executes

* the quantum-annealing pipeline (QA) on the device simulator, using the
  embedding that was co-generated with the instance, and
* the classical baselines (LIN-MQO, LIN-QUB, CLIMB, GA(50), GA(200))
  under the profile's wall-clock budget,

and collects everything needed to render the paper's exhibits: anytime
trajectories, the best known / proven optimal cost, embedding statistics
and timing information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.annealer.device import DWaveSamplerSimulator
from repro.baselines.anytime import AnytimeSolver, SolverTrajectory
from repro.baselines.genetic import GeneticAlgorithmSolver
from repro.baselines.hillclimb import IteratedHillClimbing
from repro.baselines.ilp_mqo import IntegerProgrammingMQOSolver
from repro.baselines.ilp_qubo import IntegerProgrammingQUBOSolver
from repro.chimera.defects import DefectModel
from repro.chimera.hardware import DWAVE_2X
from repro.chimera.topology import ChimeraGraph
from repro.core.pipeline import QuantumMQO, QuantumMQOResult
from repro.exceptions import ReproError
from repro.experiments.metrics import reference_cost
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.scenarios import TestCaseClass, paper_test_classes
from repro.experiments.workloads import EmbeddedTestCase, generate_embedded_testcase
from repro.service.frontend import ServiceFrontend
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng

__all__ = ["QuantumAnnealingFrontend", "InstanceResult", "ExperimentRunner"]

#: Display name of the quantum-annealing approach in figures.
QA_SOLVER_NAME = "QA"


class QuantumAnnealingFrontend:
    """Runs the QA pipeline on an embedded test case and yields a trajectory.

    The trajectory's time axis is *device time* (reads times the per-read
    duration), matching how the paper accounts for the annealer.
    """

    name = QA_SOLVER_NAME

    def __init__(self, device: DWaveSamplerSimulator, repair_invalid: bool = True) -> None:
        self.device = device
        self.repair_invalid = repair_invalid

    def solve_testcase(
        self,
        testcase: EmbeddedTestCase,
        num_reads: int,
        num_gauges: int,
        seed: SeedLike = None,
    ) -> Tuple[SolverTrajectory, QuantumMQOResult]:
        """Solve one embedded test case and return (trajectory, detailed result)."""
        pipeline = QuantumMQO(
            device=self.device,
            embedder=testcase.embedding,
            repair_invalid=self.repair_invalid,
            seed=seed,
        )
        result = pipeline.solve(
            testcase.problem, num_reads=num_reads, num_gauges=num_gauges, seed=seed
        )
        points: List[Tuple[float, float]] = []
        best = float("inf")
        for time_ms, cost in result.trajectory:
            if cost < best - 1e-12:
                best = cost
                points.append((time_ms, cost))
        trajectory = SolverTrajectory(
            solver_name=self.name,
            points=points,
            best_solution=result.best_solution,
            proved_optimal=False,
            total_time_ms=result.device_time_ms,
        )
        return trajectory, result


@dataclass
class InstanceResult:
    """Everything recorded for one instance of one test-case class."""

    testcase: EmbeddedTestCase
    trajectories: Dict[str, SolverTrajectory]
    quantum_result: QuantumMQOResult
    best_known_cost: float
    reference_cost: float
    proved_optimal: bool

    @property
    def problem_label(self) -> str:
        """Instance label for reports."""
        return self.testcase.problem.name

    def classical_trajectories(self) -> List[SolverTrajectory]:
        """Trajectories of every solver except QA."""
        return [t for name, t in self.trajectories.items() if name != QA_SOLVER_NAME]

    def quantum_trajectory(self) -> SolverTrajectory:
        """The QA trajectory."""
        return self.trajectories[QA_SOLVER_NAME]


class ExperimentRunner:
    """Generate instances and run the full solver line-up on them.

    When a :class:`~repro.service.frontend.ServiceFrontend` is supplied,
    the classical solver sweep is routed through its portfolio scheduler
    instead of the sequential in-process loop: all baselines race
    concurrently under the profile's budget and the runner records the
    per-member trajectories the race returns.  The solver line-up is then
    resolved *by name* against the frontend's registry, so custom solver
    instances must be registered there first.
    """

    def __init__(
        self,
        profile: ExperimentProfile | None = None,
        topology: ChimeraGraph | None = None,
        device: DWaveSamplerSimulator | None = None,
        solvers: Sequence[AnytimeSolver] | None = None,
        frontend: ServiceFrontend | None = None,
        seed: SeedLike = None,
    ) -> None:
        self.profile = profile or get_profile()
        self._rng = ensure_rng(seed)
        self.topology = topology if topology is not None else self._build_topology()
        self.device = device if device is not None else DWaveSamplerSimulator(
            spec=DWAVE_2X,
            topology=self.topology,
            num_sweeps=self.profile.sa_sweeps,
            seed=self._rng,
        )
        self.solvers: List[AnytimeSolver] = (
            list(solvers) if solvers is not None else self._default_solvers()
        )
        self.frontend = frontend
        self.quantum = QuantumAnnealingFrontend(self.device)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _build_topology(self) -> ChimeraGraph:
        base = ChimeraGraph(self.profile.chimera_rows, self.profile.chimera_cols)
        # Reproduce the paper machine's yield (1097 of 1152 functional qubits).
        return DefectModel().apply(base, seed=self._rng)

    def _default_solvers(self) -> List[AnytimeSolver]:
        solvers: List[AnytimeSolver] = [
            IntegerProgrammingMQOSolver(),
            IteratedHillClimbing(),
            GeneticAlgorithmSolver(population_size=50),
            GeneticAlgorithmSolver(population_size=200),
        ]
        if self.profile.include_slow_solvers:
            solvers.insert(1, IntegerProgrammingQUBOSolver())
        return solvers

    def test_classes(self, plans_range: tuple = (2, 3, 4, 5)) -> List[TestCaseClass]:
        """The evaluation classes for this runner's topology and profile."""
        return paper_test_classes(self.topology, self.profile, plans_range)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def generate_instances(
        self, test_class: TestCaseClass, num_instances: int | None = None
    ) -> List[EmbeddedTestCase]:
        """Generate the instances of one test-case class."""
        count = num_instances if num_instances is not None else self.profile.num_instances
        instances = []
        for child in spawn_rng(self._rng, count):
            instances.append(
                generate_embedded_testcase(
                    num_queries=test_class.num_queries,
                    plans_per_query=test_class.plans_per_query,
                    topology=self.topology,
                    seed=child,
                )
            )
        return instances

    def run_instance(self, testcase: EmbeddedTestCase) -> InstanceResult:
        """Run QA and every classical solver on one instance."""
        trajectories: Dict[str, SolverTrajectory] = {}
        qa_trajectory, quantum_result = self.quantum.solve_testcase(
            testcase,
            num_reads=self.profile.num_reads,
            num_gauges=self.profile.num_gauges,
            seed=self._rng,
        )
        trajectories[QA_SOLVER_NAME] = qa_trajectory

        if self.frontend is not None:
            race = self.frontend.race(
                testcase.problem,
                time_budget_ms=self.profile.classical_budget_ms,
                seed=int(self._rng.integers(0, 2**63 - 1)),
                solvers=[solver.name for solver in self.solvers],
            )
            if race.errors:
                raise ReproError(
                    f"portfolio members failed on {testcase.problem.name}: {race.errors}"
                )
            trajectories.update(race.trajectories)
        else:
            for solver in self.solvers:
                trajectories[solver.name] = solver.solve(
                    testcase.problem,
                    time_budget_ms=self.profile.classical_budget_ms,
                    seed=self._rng,
                )

        best_known = min(t.best_cost for t in trajectories.values())
        proved = any(
            t.proved_optimal and abs(t.best_cost - best_known) < 1e-9
            for t in trajectories.values()
        )
        return InstanceResult(
            testcase=testcase,
            trajectories=trajectories,
            quantum_result=quantum_result,
            best_known_cost=best_known,
            reference_cost=reference_cost(testcase.problem),
            proved_optimal=proved,
        )

    def run_class(
        self, test_class: TestCaseClass, num_instances: int | None = None
    ) -> List[InstanceResult]:
        """Generate and run every instance of one test-case class."""
        return [
            self.run_instance(testcase)
            for testcase in self.generate_instances(test_class, num_instances)
        ]

    def run_all_classes(
        self, plans_range: tuple = (2, 3, 4, 5), num_instances: int | None = None
    ) -> Dict[TestCaseClass, List[InstanceResult]]:
        """Run every test-case class; returns results keyed by class."""
        results: Dict[TestCaseClass, List[InstanceResult]] = {}
        for test_class in self.test_classes(plans_range):
            results[test_class] = self.run_class(test_class, num_instances)
        return results

    def solver_names(self) -> List[str]:
        """Solver display names in reporting order (QA first)."""
        return [QA_SOLVER_NAME] + [solver.name for solver in self.solvers]
