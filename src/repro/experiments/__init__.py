"""Experiment harness reproducing the paper's evaluation (Section 7).

The harness generates the four test-case classes (2-5 plans per query
with the maximal number of queries that fits on the device), runs the
quantum-annealing pipeline and the classical baselines under identical
conditions, and renders the same exhibits the paper reports: Table 1
(time to optimality of LIN-MQO), Figures 4 and 5 (cost versus
optimisation time), Figure 6 (speedup versus qubits per variable) and
Figure 7 (representable problem dimensions per qubit budget).
"""

from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.workloads import EmbeddedTestCase, generate_embedded_testcase
from repro.experiments.scenarios import TestCaseClass, paper_test_classes
from repro.experiments.metrics import reference_cost, scaled_cost, speedup_over_classical
from repro.experiments.runner import ExperimentRunner, InstanceResult, QuantumAnnealingFrontend
from repro.experiments.figures import (
    figure4_table,
    figure5_table,
    figure6_table,
    figure7_table,
    quality_vs_time_table,
)
from repro.experiments.tables import table1_rows, table1_table

__all__ = [
    "ExperimentProfile",
    "get_profile",
    "EmbeddedTestCase",
    "generate_embedded_testcase",
    "TestCaseClass",
    "paper_test_classes",
    "reference_cost",
    "scaled_cost",
    "speedup_over_classical",
    "ExperimentRunner",
    "InstanceResult",
    "QuantumAnnealingFrontend",
    "figure4_table",
    "figure5_table",
    "figure6_table",
    "figure7_table",
    "quality_vs_time_table",
    "table1_rows",
    "table1_table",
]
