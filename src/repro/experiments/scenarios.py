"""The paper's test-case classes and their scaling per benchmark profile.

Section 7.2 evaluates four classes: "between two and five alternative
plans per query and the associated maximal number of queries that can be
treated using the available qubits (between 537 queries for two plans and
108 queries for five plans)".  The class sizes are therefore *derived*
from the device capacity; this module recomputes them for whichever
topology the active profile uses and applies the profile's query-scale
factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List

from repro.chimera.topology import ChimeraGraph
from repro.embedding.native import NativeClusteredEmbedder
from repro.exceptions import ReproError
from repro.experiments.profiles import ExperimentProfile

__all__ = ["TestCaseClass", "paper_test_classes", "PAPER_CLASS_SIZES"]

#: The class sizes reported in the paper for the 1097-functional-qubit D-Wave 2X.
PAPER_CLASS_SIZES = {2: 537, 3: 253, 4: 140, 5: 108}


@dataclass(frozen=True)
class TestCaseClass:
    """One evaluation class: a plans-per-query setting and its query count."""

    #: Tell pytest not to collect this class despite its ``Test`` prefix.
    __test__: ClassVar[bool] = False

    plans_per_query: int
    num_queries: int

    def __post_init__(self) -> None:
        if self.plans_per_query <= 0 or self.num_queries <= 0:
            raise ReproError("test-case class dimensions must be positive")

    @property
    def label(self) -> str:
        """Short display label, e.g. ``"537 Queries, 2 Plans"``."""
        return f"{self.num_queries} Queries, {self.plans_per_query} Plans"


def paper_test_classes(
    topology: ChimeraGraph,
    profile: ExperimentProfile,
    plans_range: tuple = (2, 3, 4, 5),
) -> List[TestCaseClass]:
    """The four evaluation classes scaled to ``topology`` and ``profile``.

    For every plans-per-query value the maximal number of queries that the
    compact embedding fits on ``topology`` is computed (the paper's
    "associated maximal number of queries"), then multiplied by the
    profile's ``query_scale``.
    """
    embedder = NativeClusteredEmbedder(topology)
    classes = []
    for plans_per_query in plans_range:
        capacity = embedder.capacity(plans_per_query)
        if capacity <= 0:
            raise ReproError(
                f"topology cannot host any query with {plans_per_query} plans"
            )
        num_queries = max(2, int(capacity * profile.query_scale))
        classes.append(
            TestCaseClass(plans_per_query=plans_per_query, num_queries=num_queries)
        )
    return classes
