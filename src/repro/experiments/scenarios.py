"""Deprecated shim — the paper's test-case classes moved to
:mod:`repro.workloads.embedded`.

The class sizes are *derived* from the device capacity (between 537
queries for two plans and 108 queries for five plans on the D-Wave 2X,
Section 7.2); that derivation now lives next to the embedded-instance
generator in the workload subsystem.  This module re-exports the public
names for existing callers.
"""

from __future__ import annotations

from repro.workloads.embedded import PAPER_CLASS_SIZES, TestCaseClass, paper_test_classes

__all__ = ["TestCaseClass", "paper_test_classes", "PAPER_CLASS_SIZES"]
