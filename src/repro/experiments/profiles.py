"""Benchmark profiles: paper-scale versus CI-scale experiment settings.

The paper's evaluation runs 20 instances per test class with classical
time budgets up to 100 seconds; replaying that verbatim takes hours.
Each benchmark therefore reads the ``REPRO_PROFILE`` environment variable
(``smoke`` < ``default`` < ``paper``) and scales the number of instances,
the instance sizes and the checkpoint grid accordingly.  The *structure*
of every exhibit (its rows/series) is identical across profiles; only the
scale changes, which EXPERIMENTS.md documents.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import ReproError

__all__ = ["ExperimentProfile", "get_profile", "PROFILES"]

#: Environment variable selecting the benchmark profile.
PROFILE_ENV_VAR = "REPRO_PROFILE"


@dataclass(frozen=True)
class ExperimentProfile:
    """All scale knobs of one benchmark profile.

    Attributes
    ----------
    name:
        Profile identifier.
    query_scale:
        Fraction of the device-capacity query count used per test class.
    num_instances:
        Instances generated per test class (paper: 20).
    classical_budget_ms:
        Wall-clock budget per classical solver run.
    checkpoints_ms:
        Time checkpoints at which solution quality is reported
        (paper: 1, 10, 100, 1e3, 1e4, 1e5 ms).
    num_reads / num_gauges:
        Annealing reads and gauge batches per instance (paper: 1000 / 10).
    sa_sweeps:
        Sweeps per read of the simulated annealer.
    chimera_rows / chimera_cols:
        Device topology size in unit cells (paper machine: 12 x 12).
    include_slow_solvers:
        Whether LIN-QUB (the slowest baseline) is included.
    """

    name: str
    query_scale: float
    num_instances: int
    classical_budget_ms: float
    checkpoints_ms: Tuple[float, ...]
    num_reads: int
    num_gauges: int
    sa_sweeps: int
    chimera_rows: int = 12
    chimera_cols: int = 12
    include_slow_solvers: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.query_scale <= 1.0:
            raise ReproError(f"query_scale must be in (0, 1], got {self.query_scale}")
        if self.num_instances <= 0 or self.num_reads <= 0 or self.num_gauges <= 0:
            raise ReproError("instance, read and gauge counts must be positive")
        if self.classical_budget_ms <= 0:
            raise ReproError("classical_budget_ms must be positive")
        if not self.checkpoints_ms or any(t <= 0 for t in self.checkpoints_ms):
            raise ReproError("checkpoints must be positive")


PROFILES = {
    "smoke": ExperimentProfile(
        name="smoke",
        query_scale=0.04,
        num_instances=1,
        classical_budget_ms=300.0,
        checkpoints_ms=(1.0, 10.0, 100.0, 300.0),
        num_reads=50,
        num_gauges=5,
        sa_sweeps=40,
        chimera_rows=6,
        chimera_cols=6,
        include_slow_solvers=False,
    ),
    "default": ExperimentProfile(
        name="default",
        query_scale=0.15,
        num_instances=2,
        classical_budget_ms=2000.0,
        checkpoints_ms=(1.0, 10.0, 100.0, 1000.0, 2000.0),
        num_reads=300,
        num_gauges=10,
        sa_sweeps=200,
        chimera_rows=12,
        chimera_cols=12,
        include_slow_solvers=True,
    ),
    "paper": ExperimentProfile(
        name="paper",
        query_scale=1.0,
        num_instances=20,
        classical_budget_ms=100_000.0,
        checkpoints_ms=(1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0),
        num_reads=1000,
        num_gauges=10,
        sa_sweeps=300,
        chimera_rows=12,
        chimera_cols=12,
        include_slow_solvers=True,
    ),
}


def get_profile(name: str | None = None) -> ExperimentProfile:
    """Return the requested profile (default: ``REPRO_PROFILE`` or ``default``)."""
    if name is None:
        name = os.environ.get(PROFILE_ENV_VAR, "default")
    try:
        return PROFILES[name]
    except KeyError:
        raise ReproError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
