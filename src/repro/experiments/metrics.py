"""Quality and speedup metrics used by the evaluation.

The paper reports solution quality as "scaled execution cost": raw
execution costs divided by a constant so that curves of different test
classes are comparable.  We normalise slightly more explicitly so the
metric is self-describing:

    scaled_cost(c) = (c - c_opt) / (c_ref - c_opt)

where ``c_opt`` is the best known (usually proven optimal) cost and
``c_ref`` is a fixed pessimistic reference — the cost of selecting the
most expensive plan for every query without any sharing.  The value is 0
for the optimum and grows towards 1 for very poor selections, matching
the 0 - 0.5 ranges visible in Figures 4 and 5.

The quantum speedup of Figure 6 follows the paper's definition: the
average time the *best* classical solver needs to match the quality of
the solution produced by the *first* annealing run, divided by the device
time of that first run.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from repro.baselines.anytime import SolverTrajectory
from repro.exceptions import ReproError
from repro.mqo.problem import MQOProblem

__all__ = ["reference_cost", "scaled_cost", "speedup_over_classical", "geometric_mean"]


def reference_cost(problem: MQOProblem) -> float:
    """Pessimistic reference: most expensive plan per query, no sharing."""
    return sum(
        max(problem.plan_cost(p) for p in query.plan_indices) for query in problem.queries
    )


def scaled_cost(cost: float, optimum: float, reference: float) -> float:
    """Normalised cost in ``[0, ~1]`` (0 = optimal).

    ``inf`` costs (no solution yet) map to ``inf`` so plots/tables show
    the gap explicitly.
    """
    if cost == float("inf"):
        return float("inf")
    span = reference - optimum
    if span <= 0:
        # Degenerate instance where every valid selection costs the same.
        return 0.0 if cost <= optimum + 1e-9 else 1.0
    return max(0.0, cost - optimum) / span


def speedup_over_classical(
    quantum_first_read_cost: float,
    quantum_first_read_time_ms: float,
    classical_trajectories: Sequence[SolverTrajectory],
    classical_budget_ms: float,
) -> float:
    """Quantum speedup for one instance (Figure 6 definition).

    The numerator is the earliest time at which *any* classical solver
    matches the cost reached by the first annealing read; if none ever
    matches it within the budget, the budget itself is used (making the
    reported speedup a lower bound, as in the paper's "at least 1000x"
    phrasing).  The denominator is the device time of the first read.
    """
    if quantum_first_read_time_ms <= 0:
        raise ReproError("the first annealing read must take positive device time")
    if classical_budget_ms <= 0:
        raise ReproError("classical_budget_ms must be positive")
    if not classical_trajectories:
        raise ReproError("at least one classical trajectory is required")
    best_classical_time: Optional[float] = None
    for trajectory in classical_trajectories:
        reached_at = trajectory.time_to_reach(quantum_first_read_cost)
        if reached_at is not None and (
            best_classical_time is None or reached_at < best_classical_time
        ):
            best_classical_time = reached_at
    if best_classical_time is None:
        best_classical_time = classical_budget_ms
    # A classical solver can in principle be faster than one annealing read;
    # the ratio is reported as-is (values < 1 mean "no quantum advantage").
    return best_classical_time / quantum_first_read_time_ms


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (used to aggregate per-instance speedups)."""
    values = [float(v) for v in values]
    if not values:
        raise ReproError("cannot average an empty collection")
    if any(v <= 0 for v in values):
        raise ReproError("geometric mean requires positive values")
    log_sum = sum(math.log(value) for value in values)
    return math.exp(log_sum / len(values))
