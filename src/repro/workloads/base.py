"""Scenario model and family registry of the workload subsystem.

A *family* is a deterministic, seed-parameterized generator of MQO
instances (registered under a stable name via :func:`workload_family`);
a :class:`ScenarioSpec` pins one family down to a concrete, replayable
scenario (name, seed, parameter values).  Suites
(:mod:`repro.workloads.suites`) are ordered collections of scenario
specs that the bench orchestrator (:mod:`repro.bench`) runs against any
registered solver.

Determinism contract: building the same spec twice MUST yield
byte-identical problems (asserted by the test suite through the JSON
serialization), so families may only draw randomness from the
:class:`numpy.random.Generator` derived from the spec's seed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Tuple

from repro.exceptions import ReproError
from repro.mqo.problem import MQOProblem

__all__ = [
    "WorkloadError",
    "ScenarioSpec",
    "WorkloadFamily",
    "workload_family",
    "register_family",
    "get_family",
    "list_families",
    "build_scenario",
]


class WorkloadError(ReproError):
    """Raised for unknown families/suites and invalid scenario specs."""


#: Signature of a family builder: ``(seed, **params) -> MQOProblem``.
FamilyBuilder = Callable[..., MQOProblem]


@dataclass(frozen=True)
class WorkloadFamily:
    """One registered scenario family.

    Attributes
    ----------
    name:
        Stable registry name (``star``, ``zipf``, ...).
    description:
        One-line summary shown by ``repro-mqo bench --list``.
    builder:
        Deterministic instance builder ``(seed, **params) -> MQOProblem``.
    tags:
        Free-form labels (``topology``, ``skew``, ``stream``, ...).
    """

    name: str
    description: str
    builder: FamilyBuilder
    tags: Tuple[str, ...] = ()

    def build(self, seed: int, **params: Any) -> MQOProblem:
        """Build one instance of this family for ``seed`` and ``params``."""
        return self.builder(seed, **params)


@dataclass(frozen=True)
class ScenarioSpec:
    """One concrete, replayable scenario: a family pinned to parameters.

    Attributes
    ----------
    name:
        Scenario name, unique within its suite (used in BENCH reports).
    family:
        Name of a registered :class:`WorkloadFamily`.
    seed:
        Base seed; instance ``i`` of the scenario is built with
        ``seed + i`` so multi-instance runs stay deterministic.
    params:
        Family-specific keyword arguments.
    """

    name: str
    family: str
    seed: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("scenario name must be non-empty")
        object.__setattr__(self, "params", dict(self.params))

    def build(self, instance: int = 0) -> MQOProblem:
        """Build instance number ``instance`` of this scenario.

        The problem's name is rewritten to
        ``<scenario>#<instance>`` so bench reports and JSONL workloads
        carry the scenario provenance.
        """
        if instance < 0:
            raise WorkloadError(f"instance must be non-negative, got {instance}")
        family = get_family(self.family)
        problem = family.build(self.seed + instance, **self.params)
        problem.name = f"{self.name}#{instance}"
        return problem

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (documented in docs/workloads.md)."""
        return {
            "name": self.name,
            "family": self.family,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        try:
            return cls(
                name=str(data["name"]),
                family=str(data["family"]),
                seed=int(data.get("seed", 0)),
                params=dict(data.get("params", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(f"invalid scenario spec {data!r}: {exc}") from exc


_FAMILIES: Dict[str, WorkloadFamily] = {}
_FAMILIES_LOCK = threading.Lock()


def register_family(family: WorkloadFamily, replace: bool = False) -> WorkloadFamily:
    """Register ``family`` under its name; duplicate names raise."""
    with _FAMILIES_LOCK:
        if family.name in _FAMILIES and not replace:
            raise WorkloadError(
                f"workload family {family.name!r} is already registered"
            )
        _FAMILIES[family.name] = family
    return family


def workload_family(
    name: str, description: str, tags: Tuple[str, ...] = ()
) -> Callable[[FamilyBuilder], FamilyBuilder]:
    """Decorator registering a builder function as a workload family.

    Usage::

        @workload_family("star", "hub-and-spoke sharing")
        def build_star(seed, num_queries=8, ...):
            ...
    """

    def decorate(builder: FamilyBuilder) -> FamilyBuilder:
        register_family(
            WorkloadFamily(name=name, description=description, builder=builder, tags=tags)
        )
        return builder

    return decorate


def get_family(name: str) -> WorkloadFamily:
    """The family registered under ``name`` (raises on unknown names)."""
    with _FAMILIES_LOCK:
        try:
            return _FAMILIES[name]
        except KeyError:
            raise WorkloadError(
                f"unknown workload family {name!r}; registered: {sorted(_FAMILIES)}"
            ) from None


def list_families() -> List[WorkloadFamily]:
    """Every registered family, sorted by name."""
    with _FAMILIES_LOCK:
        return sorted(_FAMILIES.values(), key=lambda family: family.name)


def build_scenario(spec: ScenarioSpec, instance: int = 0) -> MQOProblem:
    """Convenience wrapper for :meth:`ScenarioSpec.build`."""
    return spec.build(instance)
