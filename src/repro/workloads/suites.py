"""Workload suites: named, versioned bundles of scenarios.

A :class:`WorkloadSuite` is what the bench orchestrator runs: an ordered
tuple of :class:`~repro.workloads.base.ScenarioSpec` plus run defaults
(time budget, instances per scenario) and an optional open-loop
:class:`~repro.workloads.arrivals.ArrivalProcess`.  Suites register
under stable names; ``repro-mqo bench --suite <name>`` looks them up
here.

Built-in suites:

* ``smoke`` — one small scenario per family; finishes in seconds and is
  the suite CI runs on every PR.
* ``standard`` — mid-sized instances across every family, the default
  for local comparisons.
* ``stress`` — dense/oversubscribed instances at larger budgets.
* ``stream-poisson`` / ``stream-bursty`` — open-loop traffic against a
  live server (arrival schedules from :mod:`repro.workloads.arrivals`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.base import ScenarioSpec, WorkloadError, get_family

__all__ = [
    "WorkloadSuite",
    "register_suite",
    "get_suite",
    "list_suites",
]


@dataclass(frozen=True)
class WorkloadSuite:
    """One named bundle of scenarios with run defaults.

    Attributes
    ----------
    name / description:
        Registry identity and the one-liner shown by ``bench --list``.
    scenarios:
        Ordered scenario specs; names must be unique within the suite.
    default_budget_ms:
        Per-job solve budget the orchestrator uses unless overridden.
    instances_per_scenario:
        Distinct instances built per scenario (seeds ``seed + i``).
    arrival:
        Optional open-loop traffic shape; when set, the orchestrator's
        server mode submits on this schedule instead of closed-loop.
    """

    name: str
    description: str
    scenarios: Tuple[ScenarioSpec, ...]
    default_budget_ms: float = 100.0
    instances_per_scenario: int = 2
    arrival: Optional[ArrivalProcess] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("suite name must be non-empty")
        if not self.scenarios:
            raise WorkloadError(f"suite {self.name!r} has no scenarios")
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        names = [spec.name for spec in self.scenarios]
        if len(set(names)) != len(names):
            raise WorkloadError(f"suite {self.name!r} has duplicate scenario names")
        if self.default_budget_ms <= 0:
            raise WorkloadError(
                f"default_budget_ms must be positive, got {self.default_budget_ms}"
            )
        if self.instances_per_scenario <= 0:
            raise WorkloadError(
                f"instances_per_scenario must be positive, got {self.instances_per_scenario}"
            )
        for spec in self.scenarios:
            get_family(spec.family)  # fail fast on unknown families

    @property
    def families(self) -> Tuple[str, ...]:
        """The distinct families this suite covers, sorted."""
        return tuple(sorted({spec.family for spec in self.scenarios}))


_SUITES: Dict[str, WorkloadSuite] = {}
_SUITES_LOCK = threading.Lock()


def register_suite(suite: WorkloadSuite, replace: bool = False) -> WorkloadSuite:
    """Register ``suite`` under its name; duplicate names raise."""
    with _SUITES_LOCK:
        if suite.name in _SUITES and not replace:
            raise WorkloadError(f"workload suite {suite.name!r} is already registered")
        _SUITES[suite.name] = suite
    return suite


def get_suite(name: str) -> WorkloadSuite:
    """The suite registered under ``name`` (raises on unknown names)."""
    with _SUITES_LOCK:
        try:
            return _SUITES[name]
        except KeyError:
            raise WorkloadError(
                f"unknown workload suite {name!r}; registered: {sorted(_SUITES)}"
            ) from None


def list_suites() -> List[WorkloadSuite]:
    """Every registered suite, sorted by name."""
    with _SUITES_LOCK:
        return sorted(_SUITES.values(), key=lambda suite: suite.name)


def _smoke_scenarios() -> Tuple[ScenarioSpec, ...]:
    """One small scenario per family — the CI suite."""
    return (
        ScenarioSpec("star-small", "star", seed=11, params={"num_queries": 6, "plans_per_query": 2}),
        ScenarioSpec("chain-small", "chain", seed=12, params={"num_queries": 8, "plans_per_query": 2}),
        ScenarioSpec("clique-small", "clique", seed=13, params={"num_queries": 6, "plans_per_query": 2}),
        ScenarioSpec(
            "bipartite-small",
            "bipartite",
            seed=14,
            params={"num_producers": 3, "num_consumers": 4, "plans_per_query": 2},
        ),
        ScenarioSpec("zipf-small", "zipf", seed=15, params={"num_queries": 8, "plans_per_query": 2}),
        ScenarioSpec(
            "correlated-small",
            "correlated",
            seed=16,
            params={"num_queries": 8, "plans_per_query": 2},
        ),
        ScenarioSpec("tpch-small", "tpch_mix", seed=17, params={"num_queries": 8}),
        ScenarioSpec(
            "oversub-small",
            "oversubscribed",
            seed=18,
            params={"plans_per_query": 2, "capacity_factor": 1.5, "cell_rows": 2, "cell_cols": 2},
        ),
        ScenarioSpec("paper-small", "paper", seed=19, params={"num_queries": 8, "plans_per_query": 2}),
        ScenarioSpec("random-small", "random", seed=20, params={"num_queries": 8, "plans_per_query": 2}),
        ScenarioSpec(
            "clustered-small",
            "clustered",
            seed=21,
            params={"num_clusters": 2, "queries_per_cluster": 3, "plans_per_query": 2},
        ),
    )


def _standard_scenarios() -> Tuple[ScenarioSpec, ...]:
    """Mid-sized instances across every family."""
    return (
        ScenarioSpec("star", "star", seed=111, params={"num_queries": 16, "plans_per_query": 3}),
        ScenarioSpec(
            "chain-window2",
            "chain",
            seed=112,
            params={"num_queries": 24, "plans_per_query": 3, "window": 2},
        ),
        ScenarioSpec("clique", "clique", seed=113, params={"num_queries": 12, "plans_per_query": 3}),
        ScenarioSpec(
            "bipartite",
            "bipartite",
            seed=114,
            params={"num_producers": 6, "num_consumers": 10, "plans_per_query": 3},
        ),
        ScenarioSpec("zipf", "zipf", seed=115, params={"num_queries": 20, "plans_per_query": 3}),
        ScenarioSpec(
            "correlated", "correlated", seed=116, params={"num_queries": 20, "plans_per_query": 3}
        ),
        ScenarioSpec("tpch", "tpch_mix", seed=117, params={"num_queries": 22}),
        ScenarioSpec(
            "oversub",
            "oversubscribed",
            seed=118,
            params={"plans_per_query": 2, "capacity_factor": 1.5, "cell_rows": 3, "cell_cols": 3},
        ),
        ScenarioSpec("paper", "paper", seed=119, params={"num_queries": 20, "plans_per_query": 2}),
        ScenarioSpec("random", "random", seed=120, params={"num_queries": 20, "plans_per_query": 3}),
        ScenarioSpec(
            "clustered",
            "clustered",
            seed=121,
            params={"num_clusters": 4, "queries_per_cluster": 4, "plans_per_query": 3},
        ),
    )


def _stress_scenarios() -> Tuple[ScenarioSpec, ...]:
    """Dense and beyond-capacity instances."""
    return (
        ScenarioSpec(
            "clique-dense",
            "clique",
            seed=211,
            params={"num_queries": 24, "plans_per_query": 3, "density": 0.95},
        ),
        ScenarioSpec(
            "zipf-heavy",
            "zipf",
            seed=212,
            params={"num_queries": 40, "plans_per_query": 4, "alpha": 1.3, "density": 0.3},
        ),
        ScenarioSpec(
            "tpch-heavy", "tpch_mix", seed=213, params={"num_queries": 44, "heavy_bias": 0.9}
        ),
        ScenarioSpec(
            "oversub-2x",
            "oversubscribed",
            seed=214,
            params={"plans_per_query": 2, "capacity_factor": 2.0, "cell_rows": 4, "cell_cols": 4},
        ),
        ScenarioSpec(
            "star-wide", "star", seed=215, params={"num_queries": 48, "plans_per_query": 3}
        ),
    )


def _stream_scenarios() -> Tuple[ScenarioSpec, ...]:
    """Small instances suitable for high-rate open-loop submission."""
    return (
        ScenarioSpec("stream-chain", "chain", seed=311, params={"num_queries": 5, "plans_per_query": 2}),
        ScenarioSpec("stream-star", "star", seed=312, params={"num_queries": 5, "plans_per_query": 2}),
        ScenarioSpec("stream-tpch", "tpch_mix", seed=313, params={"num_queries": 5}),
    )


def _register_builtin_suites() -> None:
    """Register the built-in suites (idempotent via replace)."""
    register_suite(
        WorkloadSuite(
            name="smoke",
            description="one small scenario per family; the CI gate suite",
            scenarios=_smoke_scenarios(),
            default_budget_ms=40.0,
            instances_per_scenario=2,
        ),
        replace=True,
    )
    register_suite(
        WorkloadSuite(
            name="standard",
            description="mid-sized instances across every family",
            scenarios=_standard_scenarios(),
            default_budget_ms=250.0,
            instances_per_scenario=3,
        ),
        replace=True,
    )
    register_suite(
        WorkloadSuite(
            name="stress",
            description="dense, skewed and beyond-capacity instances",
            scenarios=_stress_scenarios(),
            default_budget_ms=500.0,
            instances_per_scenario=2,
        ),
        replace=True,
    )
    register_suite(
        WorkloadSuite(
            name="stream-poisson",
            description="open-loop Poisson traffic against a live server",
            scenarios=_stream_scenarios(),
            default_budget_ms=30.0,
            instances_per_scenario=1,
            arrival=ArrivalProcess(kind="poisson", rate_per_s=10.0, duration_s=3.0),
        ),
        replace=True,
    )
    register_suite(
        WorkloadSuite(
            name="stream-bursty",
            description="open-loop bursty traffic against a live server",
            scenarios=_stream_scenarios(),
            default_budget_ms=30.0,
            instances_per_scenario=1,
            arrival=ArrivalProcess(
                kind="bursty",
                rate_per_s=5.0,
                duration_s=3.0,
                burst_every_s=1.0,
                burst_size=8,
            ),
        ),
        replace=True,
    )


_register_builtin_suites()
