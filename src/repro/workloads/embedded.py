"""Embedding-co-designed instances and the paper's evaluation classes.

Home of the generators that previously lived in
:mod:`repro.experiments.workloads` / :mod:`repro.experiments.scenarios`
(both remain as thin deprecation shims): instance generation now lives
in one place — the workload subsystem — and the Section 7.1 shape is a
registered family (``embedded``) like every other generator.

The paper's test cases are co-designed with the embedding: every query
is its own cluster, and sharing links only exist where the physical
topology provides couplers between the chains of the involved plans
(Section 7.1).  :func:`generate_embedded_testcase` therefore first
embeds the queries with the compact per-cell pattern, then places cost
savings (uniform from ``{1, 2}`` scaled by a constant) on a random
subset of the physically couplable cross-query plan pairs, and finally
returns the problem *together with* its embedding so the pipeline does
not have to search for one again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, List, Tuple

from repro.chimera.topology import ChimeraGraph
from repro.embedding.base import Embedding
from repro.embedding.native import NativeClusteredEmbedder
from repro.exceptions import EmbeddingNotFoundError, InvalidProblemError, ReproError
from repro.mqo.generator import MQOGeneratorConfig
from repro.mqo.problem import MQOProblem
from repro.utils.rng import SeedLike, ensure_rng
from repro.workloads.base import workload_family

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.experiments.profiles import ExperimentProfile

__all__ = [
    "EmbeddedTestCase",
    "generate_embedded_testcase",
    "build_embedded",
    "TestCaseClass",
    "paper_test_classes",
    "PAPER_CLASS_SIZES",
]


@dataclass
class EmbeddedTestCase:
    """An MQO instance bundled with its hardware embedding.

    Attributes
    ----------
    problem:
        The generated MQO problem (plan indices ``q * l + j``).
    embedding:
        Chains for every plan on ``topology``.
    topology:
        The Chimera graph the embedding targets.
    plans_per_query:
        Number of alternative plans per query (uniform across queries).
    """

    problem: MQOProblem
    embedding: Embedding
    topology: ChimeraGraph
    plans_per_query: int

    @property
    def num_queries(self) -> int:
        """Number of queries in the instance."""
        return self.problem.num_queries

    @property
    def qubits_per_variable(self) -> float:
        """Average chain length of the embedding (Figure 6 x-axis)."""
        return self.embedding.average_chain_length()


def generate_embedded_testcase(
    num_queries: int,
    plans_per_query: int,
    topology: ChimeraGraph,
    sharing_density: float = 0.75,
    config: MQOGeneratorConfig | None = None,
    seed: SeedLike = None,
    name: str = "",
) -> EmbeddedTestCase:
    """Generate one Section 7.1 style instance together with its embedding.

    Parameters
    ----------
    num_queries / plans_per_query:
        Problem dimensions.  ``num_queries`` may not exceed the capacity
        of the compact per-cell embedding on ``topology``.
    topology:
        Target hardware graph (typically from :data:`repro.chimera.DWAVE_2X`).
    sharing_density:
        Probability with which each physically couplable cross-query plan
        pair receives a sharing link.
    config:
        Cost/saving distribution knobs (defaults to the paper's: integer
        costs, savings uniform from ``{1, 2}``).

    Raises
    ------
    EmbeddingNotFoundError
        If the requested number of queries does not fit on the topology.
    """
    if num_queries <= 0 or plans_per_query <= 0:
        raise InvalidProblemError("num_queries and plans_per_query must be positive")
    if not 0.0 <= sharing_density <= 1.0:
        raise InvalidProblemError(f"sharing_density must be in [0, 1], got {sharing_density}")
    config = config or MQOGeneratorConfig()
    rng = ensure_rng(seed)

    embedder = NativeClusteredEmbedder(topology)
    capacity = embedder.capacity(plans_per_query)
    if num_queries > capacity:
        raise EmbeddingNotFoundError(
            f"{num_queries} queries with {plans_per_query} plans each exceed the "
            f"device capacity of {capacity} queries"
        )

    clusters: List[List[int]] = [
        [query * plans_per_query + offset for offset in range(plans_per_query)]
        for query in range(num_queries)
    ]
    embedding = embedder.embed(clusters)

    plan_costs = [
        [
            config.scale * float(rng.integers(config.cost_low, config.cost_high + 1))
            for _ in range(plans_per_query)
        ]
        for _ in range(num_queries)
    ]

    savings: Dict[Tuple[int, int], float] = {}
    choices = config.saving_choices
    for p1, p2 in embedder.couplable_pairs(embedding):
        if p1 // plans_per_query == p2 // plans_per_query:
            continue  # same query: that coupler carries the E_M penalty, not a saving
        if rng.random() >= sharing_density:
            continue
        pair = (p1, p2) if p1 < p2 else (p2, p1)
        savings[pair] = config.scale * float(choices[int(rng.integers(0, len(choices)))])

    problem = MQOProblem(
        plan_costs,
        savings,
        name=name or f"embedded-q{num_queries}-l{plans_per_query}",
    )
    return EmbeddedTestCase(
        problem=problem,
        embedding=embedding,
        topology=topology,
        plans_per_query=plans_per_query,
    )


@workload_family(
    "embedded",
    "the paper's Section 7.1 embedding-co-designed instances",
    tags=("paper", "embedded"),
)
def build_embedded(
    seed: int,
    num_queries: int = 10,
    plans_per_query: int = 2,
    cell_rows: int = 4,
    cell_cols: int = 4,
    sharing_density: float = 0.75,
) -> MQOProblem:
    """The embedded-testcase family: Section 7.1 instances by device size.

    Same generator as :func:`generate_embedded_testcase` (sharing links
    only on physically couplable plan pairs of a ``cell_rows`` x
    ``cell_cols`` Chimera device), registered so suites and the bench
    orchestrator can draw these instances like any other family.  The
    registry builder returns only the problem; callers that also need
    the embedding use :func:`generate_embedded_testcase` directly.
    """
    case = generate_embedded_testcase(
        num_queries=num_queries,
        plans_per_query=plans_per_query,
        topology=ChimeraGraph(cell_rows, cell_cols),
        sharing_density=sharing_density,
        seed=seed,
    )
    return case.problem


#: The class sizes reported in the paper for the 1097-functional-qubit D-Wave 2X.
PAPER_CLASS_SIZES = {2: 537, 3: 253, 4: 140, 5: 108}


@dataclass(frozen=True)
class TestCaseClass:
    """One evaluation class: a plans-per-query setting and its query count."""

    #: Tell pytest not to collect this class despite its ``Test`` prefix.
    __test__: ClassVar[bool] = False

    plans_per_query: int
    num_queries: int

    def __post_init__(self) -> None:
        if self.plans_per_query <= 0 or self.num_queries <= 0:
            raise ReproError("test-case class dimensions must be positive")

    @property
    def label(self) -> str:
        """Short display label, e.g. ``"537 Queries, 2 Plans"``."""
        return f"{self.num_queries} Queries, {self.plans_per_query} Plans"


def paper_test_classes(
    topology: ChimeraGraph,
    profile: "ExperimentProfile",
    plans_range: tuple = (2, 3, 4, 5),
) -> List[TestCaseClass]:
    """The four evaluation classes scaled to ``topology`` and ``profile``.

    For every plans-per-query value the maximal number of queries that the
    compact embedding fits on ``topology`` is computed (the paper's
    "associated maximal number of queries"), then multiplied by the
    profile's ``query_scale``.
    """
    embedder = NativeClusteredEmbedder(topology)
    classes = []
    for plans_per_query in plans_range:
        capacity = embedder.capacity(plans_per_query)
        if capacity <= 0:
            raise ReproError(f"topology cannot host any query with {plans_per_query} plans")
        num_queries = max(2, int(capacity * profile.query_scale))
        classes.append(TestCaseClass(plans_per_query=plans_per_query, num_queries=num_queries))
    return classes
