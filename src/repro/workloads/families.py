"""The built-in scenario families.

Every family is a deterministic, seed-parameterized MQO instance
generator registered through :func:`~repro.workloads.base.workload_family`.
The catalog deliberately goes far beyond the paper's evaluation shapes
(which survive as the ``paper``/``random``/``clustered`` wrappers):

* **query-graph topologies** — ``star``, ``chain``, ``clique``,
  ``bipartite`` control *which* queries can share work,
* **cost distributions** — ``zipf`` (heavy-tailed plan costs and
  savings) and ``correlated`` (plan costs clustered around a per-query
  base, savings proportional to the cheaper plan) control *how much*,
* **traffic mixes** — ``tpch_mix`` draws queries from a bank of TPC-H
  inspired templates with shared-scan groups,
* **capacity stress** — ``oversubscribed`` sizes the instance *past*
  the embedding capacity of a configurable Chimera device, exercising
  the decomposition/classical paths instead of the native embedding.

All randomness flows through :func:`repro.utils.rng.ensure_rng`, so a
fixed seed reproduces instances byte-for-byte (asserted by the tests).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.chimera.topology import ChimeraGraph
from repro.embedding.native import NativeClusteredEmbedder
from repro.mqo.generator import (
    MQOGeneratorConfig,
    generate_chimera_native_problem,
    generate_clustered_problem,
    generate_paper_testcase,
    generate_random_problem,
)
from repro.mqo.problem import MQOProblem
from repro.utils.rng import ensure_rng
from repro.workloads.base import WorkloadError, workload_family

__all__ = [
    "build_star",
    "build_chain",
    "build_clique",
    "build_bipartite",
    "build_zipf",
    "build_correlated",
    "build_tpch_mix",
    "build_oversubscribed",
    "build_paper",
    "build_random",
    "build_clustered",
    "build_warehouse",
]


def _check_dimensions(num_queries: int, plans_per_query: int) -> None:
    """Shared validation of the two universal size knobs."""
    if num_queries <= 0 or plans_per_query <= 0:
        raise WorkloadError(
            f"num_queries and plans_per_query must be positive, got "
            f"{num_queries} and {plans_per_query}"
        )


def _check_density(value: float, label: str) -> None:
    """Validate a probability-typed parameter."""
    if not 0.0 <= value <= 1.0:
        raise WorkloadError(f"{label} must be in [0, 1], got {value}")


@workload_family(
    "star",
    "hub-and-spoke sharing: every spoke query shares only with the hub",
    tags=("topology",),
)
def build_star(
    seed: int,
    num_queries: int = 8,
    plans_per_query: int = 2,
    hub_density: float = 0.8,
) -> MQOProblem:
    """Star query graph: query 0 is the hub, all sharing passes through it.

    Models one hot shared sub-expression (a popular materialised view or
    scan) that many otherwise-independent queries can reuse.  Savings
    exist only between hub plans and spoke plans, each pair sharing with
    probability ``hub_density``.
    """
    _check_dimensions(num_queries, plans_per_query)
    if num_queries < 2:
        raise WorkloadError("a star needs at least 2 queries (hub + 1 spoke)")
    _check_density(hub_density, "hub_density")
    config = MQOGeneratorConfig()
    rng = ensure_rng(seed)

    plan_costs = [
        [float(rng.integers(config.cost_low, config.cost_high + 1)) for _ in range(plans_per_query)]
        for _ in range(num_queries)
    ]
    savings: Dict[Tuple[int, int], float] = {}
    choices = config.saving_choices
    for spoke in range(1, num_queries):
        for hub_plan in range(plans_per_query):
            for spoke_plan in range(plans_per_query):
                if rng.random() >= hub_density:
                    continue
                pair = (hub_plan, spoke * plans_per_query + spoke_plan)
                savings[pair] = float(choices[int(rng.integers(0, len(choices)))])
    return MQOProblem(plan_costs, savings, name=f"star-q{num_queries}-l{plans_per_query}")


@workload_family(
    "chain",
    "pipeline sharing: queries share only within a sliding neighbour window",
    tags=("topology", "paper"),
)
def build_chain(
    seed: int,
    num_queries: int = 10,
    plans_per_query: int = 2,
    window: int = 1,
    density: float = 0.75,
) -> MQOProblem:
    """Chain query graph (the paper's embedding-friendly shape, generalised).

    Sharing links exist only between queries whose indices differ by at
    most ``window``; each couplable cross plan pair shares with
    probability ``density``.
    """
    _check_dimensions(num_queries, plans_per_query)
    return generate_chimera_native_problem(
        num_queries=num_queries,
        plans_per_query=plans_per_query,
        neighbor_window=window,
        cross_pair_density=density,
        seed=seed,
        name=f"chain-q{num_queries}-l{plans_per_query}-w{window}",
    )


@workload_family(
    "clique",
    "dense all-pairs sharing: every query pair can reuse work",
    tags=("topology", "dense"),
)
def build_clique(
    seed: int,
    num_queries: int = 8,
    plans_per_query: int = 2,
    density: float = 0.9,
) -> MQOProblem:
    """Clique query graph: (almost) every cross-query plan pair shares.

    The densest sharing structure — the worst case for embedding (chain
    lengths grow with degree) and the best case for MQO gains.
    """
    _check_dimensions(num_queries, plans_per_query)
    _check_density(density, "density")
    return generate_random_problem(
        num_queries=num_queries,
        plans_per_query=plans_per_query,
        sharing_density=density,
        seed=seed,
        name=f"clique-q{num_queries}-l{plans_per_query}",
    )


@workload_family(
    "bipartite",
    "two-tier sharing: producers and consumers share only across tiers",
    tags=("topology",),
)
def build_bipartite(
    seed: int,
    num_producers: int = 4,
    num_consumers: int = 6,
    plans_per_query: int = 2,
    density: float = 0.6,
) -> MQOProblem:
    """Bipartite query graph: ETL-style producer/consumer plan sharing.

    Queries split into a producer tier (building intermediates) and a
    consumer tier (reading them); savings exist only between tiers, each
    cross-tier plan pair sharing with probability ``density``.
    """
    if num_producers <= 0 or num_consumers <= 0:
        raise WorkloadError("both tiers need at least one query")
    _check_dimensions(num_producers + num_consumers, plans_per_query)
    _check_density(density, "density")
    config = MQOGeneratorConfig()
    rng = ensure_rng(seed)
    num_queries = num_producers + num_consumers

    plan_costs = [
        [float(rng.integers(config.cost_low, config.cost_high + 1)) for _ in range(plans_per_query)]
        for _ in range(num_queries)
    ]
    savings: Dict[Tuple[int, int], float] = {}
    choices = config.saving_choices
    for producer in range(num_producers):
        for consumer in range(num_producers, num_queries):
            for a in range(plans_per_query):
                for b in range(plans_per_query):
                    if rng.random() >= density:
                        continue
                    pair = (
                        producer * plans_per_query + a,
                        consumer * plans_per_query + b,
                    )
                    savings[pair] = float(choices[int(rng.integers(0, len(choices)))])
    return MQOProblem(
        plan_costs,
        savings,
        name=f"bipartite-p{num_producers}-c{num_consumers}-l{plans_per_query}",
    )


@workload_family(
    "zipf",
    "heavy-tailed plan costs and savings (Zipf-distributed)",
    tags=("skew",),
)
def build_zipf(
    seed: int,
    num_queries: int = 10,
    plans_per_query: int = 3,
    alpha: float = 1.8,
    density: float = 0.2,
    cost_cap: float = 1000.0,
) -> MQOProblem:
    """Zipf-skewed instance: a few very expensive plans and savings.

    Plan costs and savings are drawn from a Zipf(``alpha``) distribution
    capped at ``cost_cap`` — the classic web/OLAP skew where most work
    is cheap but the tail dominates the total.  Sharing pairs are chosen
    uniformly with probability ``density``; each saving is capped by the
    cheaper plan of the pair so solutions keep non-trivial structure.
    """
    _check_dimensions(num_queries, plans_per_query)
    _check_density(density, "density")
    if alpha <= 1.0:
        raise WorkloadError(f"alpha must be > 1 for a Zipf distribution, got {alpha}")
    if cost_cap <= 0:
        raise WorkloadError(f"cost_cap must be positive, got {cost_cap}")
    rng = ensure_rng(seed)

    plan_costs = [
        [min(float(rng.zipf(alpha)), cost_cap) for _ in range(plans_per_query)]
        for _ in range(num_queries)
    ]
    savings: Dict[Tuple[int, int], float] = {}
    num_plans = num_queries * plans_per_query
    for p1 in range(num_plans):
        for p2 in range(p1 + 1, num_plans):
            if p1 // plans_per_query == p2 // plans_per_query:
                continue
            if rng.random() >= density:
                continue
            cheaper = min(
                plan_costs[p1 // plans_per_query][p1 % plans_per_query],
                plan_costs[p2 // plans_per_query][p2 % plans_per_query],
            )
            draw = min(float(rng.zipf(alpha)), cost_cap)
            value = min(draw, cheaper)
            if value > 0:
                savings[(p1, p2)] = value
    return MQOProblem(plan_costs, savings, name=f"zipf-q{num_queries}-l{plans_per_query}")


@workload_family(
    "correlated",
    "per-query base costs with correlated plan costs and savings",
    tags=("skew",),
)
def build_correlated(
    seed: int,
    num_queries: int = 10,
    plans_per_query: int = 3,
    jitter: float = 0.25,
    density: float = 0.25,
    share_fraction: float = 0.5,
) -> MQOProblem:
    """Correlated costs: plans of one query cluster around a base cost.

    Each query draws a base cost; its plans deviate by at most
    ``jitter`` (relative).  A sharing pair saves ``share_fraction`` of
    the cheaper plan's cost — expensive queries both cost and save more,
    the correlation real optimizers face.
    """
    _check_dimensions(num_queries, plans_per_query)
    _check_density(density, "density")
    if not 0.0 <= jitter <= 1.0:
        raise WorkloadError(f"jitter must be in [0, 1], got {jitter}")
    if not 0.0 < share_fraction < 1.0:
        raise WorkloadError(f"share_fraction must be in (0, 1), got {share_fraction}")
    rng = ensure_rng(seed)

    base_costs = [float(rng.uniform(2.0, 20.0)) for _ in range(num_queries)]
    plan_costs = [
        [
            round(base * (1.0 + jitter * float(rng.uniform(-1.0, 1.0))), 6)
            for _ in range(plans_per_query)
        ]
        for base in base_costs
    ]
    savings: Dict[Tuple[int, int], float] = {}
    num_plans = num_queries * plans_per_query
    for p1 in range(num_plans):
        for p2 in range(p1 + 1, num_plans):
            if p1 // plans_per_query == p2 // plans_per_query:
                continue
            if rng.random() >= density:
                continue
            cheaper = min(
                plan_costs[p1 // plans_per_query][p1 % plans_per_query],
                plan_costs[p2 // plans_per_query][p2 % plans_per_query],
            )
            value = round(share_fraction * cheaper, 6)
            if value > 0:
                savings[(p1, p2)] = value
    return MQOProblem(
        plan_costs, savings, name=f"correlated-q{num_queries}-l{plans_per_query}"
    )


#: TPC-H inspired template bank: (plans, base_cost, scan_group).  The 22
#: entries mirror the spirit of TPC-H Q1..Q22 — a few heavy aggregation
#: queries, many mid-weight joins, light lookups — partitioned into scan
#: groups of queries touching the same large tables (lineitem, orders,
#: ...); only queries in one group can share work.
_TPCH_TEMPLATES: Tuple[Tuple[int, float, int], ...] = (
    (2, 95.0, 0),  # Q1: lineitem full-scan aggregation
    (3, 12.0, 1),  # Q2: part/supplier lookup
    (3, 55.0, 0),  # Q3: lineitem + orders join
    (2, 35.0, 2),  # Q4: orders semi-join
    (4, 60.0, 0),  # Q5: 6-way join over lineitem
    (2, 40.0, 0),  # Q6: lineitem range filter
    (4, 58.0, 0),  # Q7: volume shipping join
    (4, 62.0, 0),  # Q8: national market share
    (4, 70.0, 1),  # Q9: product profit (part-driven)
    (3, 45.0, 2),  # Q10: returned items
    (3, 15.0, 1),  # Q11: important stock
    (2, 38.0, 2),  # Q12: shipping modes
    (2, 25.0, 3),  # Q13: customer distribution
    (2, 42.0, 0),  # Q14: promotion effect
    (2, 44.0, 0),  # Q15: top supplier (revenue view)
    (3, 14.0, 1),  # Q16: parts/supplier counts
    (3, 48.0, 0),  # Q17: small-quantity orders
    (3, 52.0, 2),  # Q18: large-volume customers
    (2, 46.0, 0),  # Q19: discounted revenue
    (3, 18.0, 1),  # Q20: potential part promotion
    (4, 56.0, 0),  # Q21: suppliers who kept orders waiting
    (2, 22.0, 3),  # Q22: global sales opportunity
)


@workload_family(
    "tpch_mix",
    "TPC-H inspired template mix with shared-scan groups",
    tags=("mix",),
)
def build_tpch_mix(
    seed: int,
    num_queries: int = 12,
    density: float = 0.5,
    share_fraction: float = 0.3,
    heavy_bias: float = 0.0,
) -> MQOProblem:
    """A template-mix instance in the spirit of TPC-H.

    Each query instantiates one of 22 templates (plans-per-query, base
    cost and *scan group* — which big table dominates it).  Queries from
    the same scan group can share scans: each cross plan pair shares
    with probability ``density``, saving ``share_fraction`` of the
    cheaper plan.  ``heavy_bias`` in [0, 1) skews the template draw
    toward the expensive templates (0 = uniform).
    """
    if num_queries <= 0:
        raise WorkloadError(f"num_queries must be positive, got {num_queries}")
    _check_density(density, "density")
    if not 0.0 < share_fraction < 1.0:
        raise WorkloadError(f"share_fraction must be in (0, 1), got {share_fraction}")
    if not 0.0 <= heavy_bias < 1.0:
        raise WorkloadError(f"heavy_bias must be in [0, 1), got {heavy_bias}")
    rng = ensure_rng(seed)

    weights = [1.0 + heavy_bias * (cost / 100.0) for _, cost, _ in _TPCH_TEMPLATES]
    total_weight = sum(weights)
    probabilities = [w / total_weight for w in weights]
    template_ids = [
        int(rng.choice(len(_TPCH_TEMPLATES), p=probabilities)) for _ in range(num_queries)
    ]

    plan_costs = []
    groups = []
    for template_id in template_ids:
        plans, base_cost, group = _TPCH_TEMPLATES[template_id]
        # Alternative plans of one template spread around its base cost
        # (index/hash/merge variants of the same logical query).
        plan_costs.append(
            [round(base_cost * (1.0 + 0.2 * float(rng.uniform(-1.0, 1.0))), 6) for _ in range(plans)]
        )
        groups.append(group)

    plan_offsets = []
    cursor = 0
    for costs in plan_costs:
        plan_offsets.append(cursor)
        cursor += len(costs)

    savings: Dict[Tuple[int, int], float] = {}
    for q1 in range(num_queries):
        for q2 in range(q1 + 1, num_queries):
            if groups[q1] != groups[q2]:
                continue
            for a in range(len(plan_costs[q1])):
                for b in range(len(plan_costs[q2])):
                    if rng.random() >= density:
                        continue
                    cheaper = min(plan_costs[q1][a], plan_costs[q2][b])
                    value = round(share_fraction * cheaper, 6)
                    if value > 0:
                        savings[(plan_offsets[q1] + a, plan_offsets[q2] + b)] = value
    return MQOProblem(plan_costs, savings, name=f"tpch-mix-q{num_queries}")


@workload_family(
    "oversubscribed",
    "chain instance sized beyond a device's embedding capacity",
    tags=("capacity", "stress"),
)
def build_oversubscribed(
    seed: int,
    plans_per_query: int = 2,
    capacity_factor: float = 1.5,
    cell_rows: int = 4,
    cell_cols: int = 4,
    density: float = 0.75,
) -> MQOProblem:
    """An instance that does NOT fit the given Chimera device.

    The query count is the native clustered-embedding capacity of a
    ``cell_rows`` x ``cell_cols`` Chimera graph multiplied by
    ``capacity_factor`` (> 1), so the native pipeline must decompose or
    fall back to classical solvers — the beyond-hardware-capacity regime
    of Figure 7.
    """
    _check_dimensions(1, plans_per_query)
    if capacity_factor <= 1.0:
        raise WorkloadError(
            f"capacity_factor must exceed 1 to oversubscribe, got {capacity_factor}"
        )
    if cell_rows <= 0 or cell_cols <= 0:
        raise WorkloadError("cell_rows and cell_cols must be positive")
    topology = ChimeraGraph(cell_rows, cell_cols)
    capacity = NativeClusteredEmbedder(topology).capacity(plans_per_query)
    if capacity <= 0:
        raise WorkloadError(
            f"a {cell_rows}x{cell_cols} Chimera graph cannot host any query "
            f"with {plans_per_query} plans"
        )
    num_queries = max(capacity + 1, int(math.ceil(capacity * capacity_factor)))
    return generate_chimera_native_problem(
        num_queries=num_queries,
        plans_per_query=plans_per_query,
        neighbor_window=1,
        cross_pair_density=density,
        seed=seed,
        name=(
            f"oversub-q{num_queries}-l{plans_per_query}"
            f"-cap{capacity}-{cell_rows}x{cell_cols}"
        ),
    )


@workload_family(
    "paper",
    "the paper's Section 7.1 evaluation instances",
    tags=("paper",),
)
def build_paper(
    seed: int, num_queries: int = 10, plans_per_query: int = 2
) -> MQOProblem:
    """The paper's evaluation shape (chain, savings uniform from {1, 2})."""
    _check_dimensions(num_queries, plans_per_query)
    return generate_paper_testcase(num_queries, plans_per_query, seed=seed)


@workload_family(
    "random",
    "fully random sharing structure (uniform density)",
    tags=("baseline",),
)
def build_random(
    seed: int,
    num_queries: int = 10,
    plans_per_query: int = 2,
    density: float = 0.1,
) -> MQOProblem:
    """Uniformly random sharing — the unstructured control family."""
    _check_dimensions(num_queries, plans_per_query)
    return generate_random_problem(
        num_queries=num_queries,
        plans_per_query=plans_per_query,
        sharing_density=density,
        seed=seed,
    )


@workload_family(
    "clustered",
    "independent dense clusters (the Section 6 decomposition shape)",
    tags=("topology", "paper"),
)
def build_clustered(
    seed: int,
    num_clusters: int = 3,
    queries_per_cluster: int = 3,
    plans_per_query: int = 2,
    intra_density: float = 0.8,
    inter_density: float = 0.0,
) -> MQOProblem:
    """Dense clusters with little or no cross-cluster sharing."""
    _check_dimensions(num_clusters * queries_per_cluster, plans_per_query)
    return generate_clustered_problem(
        num_clusters=num_clusters,
        queries_per_cluster=queries_per_cluster,
        plans_per_query=plans_per_query,
        intra_cluster_density=intra_density,
        inter_cluster_density=inter_density,
        seed=seed,
    )


@workload_family(
    "warehouse",
    "data-warehouse dashboards: dense subject areas, sparse conformed links",
    tags=("topology", "scale"),
)
def build_warehouse(
    seed: int,
    num_queries: int = 400,
    plans_per_query: int = 3,
    group_size: int = 8,
    intra_density: float = 0.6,
    link_density: float = 0.3,
    link_span: int = 3,
    links_per_pair: int = 2,
) -> MQOProblem:
    """Giant-instance shape for the decomposition path (10k-50k plans).

    Queries model dashboard panels grouped into *subject areas* of
    ``group_size`` queries each: within an area (almost) every query
    pair can reuse work (each cross plan pair shares with probability
    ``intra_density``), while areas are connected only through sparse
    *conformed dimension* links — an area links to each of its
    ``link_span`` successors with probability ``link_density``, and a
    linked pair shares just ``links_per_pair`` random plan pairs.

    The result is exactly the structure the partition-solve-stitch
    pipeline is built for: heavy intra-cluster savings, a thin chain of
    cross-cluster edges (so the wave schedule stays shallow), and a
    plan count past single-QUBO capacity (the default 400 queries x 3
    plans already exceeds the simulated device; the decomposition bench
    scales ``num_queries`` to 10k-50k plans).  Savings are batched per
    area, so generating a 50k-plan instance takes about a second.
    """
    _check_dimensions(num_queries, plans_per_query)
    if group_size <= 0:
        raise WorkloadError(f"group_size must be positive, got {group_size}")
    _check_density(intra_density, "intra_density")
    _check_density(link_density, "link_density")
    if link_span < 0 or links_per_pair < 0:
        raise WorkloadError(
            f"link_span and links_per_pair must be non-negative, got "
            f"{link_span} and {links_per_pair}"
        )
    config = MQOGeneratorConfig()
    rng = ensure_rng(seed)
    choices = config.saving_choices

    costs = rng.integers(
        config.cost_low, config.cost_high + 1, size=(num_queries, plans_per_query)
    )
    plan_costs = [[float(c) for c in row] for row in costs]

    savings: Dict[Tuple[int, int], float] = {}
    num_groups = (num_queries + group_size - 1) // group_size
    span = plans_per_query * plans_per_query
    for group in range(num_groups):
        members = range(group * group_size, min((group + 1) * group_size, num_queries))
        pairs = [(qa, qb) for i, qa in enumerate(members) for qb in list(members)[i + 1 :]]
        if not pairs:
            continue
        count = len(pairs) * span
        hits = rng.random(count) < intra_density
        values = rng.integers(0, len(choices), size=count)
        for k in hits.nonzero()[0].tolist():
            qa, qb = pairs[k // span]
            pa, pb = (k % span) // plans_per_query, (k % span) % plans_per_query
            savings[(qa * plans_per_query + pa, qb * plans_per_query + pb)] = float(
                choices[int(values[k])]
            )
    for group in range(num_groups):
        lo_a = group * group_size
        size_a = min(group_size, num_queries - lo_a)
        for offset in range(1, link_span + 1):
            other = group + offset
            if other >= num_groups:
                break
            if rng.random() >= link_density:
                continue
            lo_b = other * group_size
            size_b = min(group_size, num_queries - lo_b)
            for _ in range(links_per_pair):
                qa = lo_a + int(rng.integers(0, size_a))
                qb = lo_b + int(rng.integers(0, size_b))
                pa = int(rng.integers(0, plans_per_query))
                pb = int(rng.integers(0, plans_per_query))
                savings[(qa * plans_per_query + pa, qb * plans_per_query + pb)] = float(
                    choices[int(rng.integers(0, len(choices)))]
                )
    return MQOProblem(
        plan_costs,
        savings,
        name=f"warehouse-q{num_queries}-l{plans_per_query}-g{group_size}",
    )
