"""Deterministic open-loop arrival processes for dynamic workloads.

Closed-loop load (the throughput benchmarks' default) submits the next
job when the previous result returns, which can never overload the
system under test.  Open-loop load submits on a *schedule* regardless of
completions — the regime where queues actually grow.  This module
generates such schedules deterministically from a seed:

* :func:`poisson_arrivals` — memoryless traffic at a target rate,
* :func:`bursty_arrivals` — Poisson background plus periodic bursts of
  back-to-back arrivals (the "everyone refreshes the dashboard at 9am"
  shape).

An :class:`ArrivalProcess` bundles the knobs into a serialisable record
so suites can carry their traffic shape, and :func:`schedule_jobs`
zips a schedule with scenario specs into concrete ``(due_s, spec,
instance)`` submissions for the bench orchestrator, ``repro-mqo serve``
load generators, or JSONL workload emission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.utils.rng import ensure_rng
from repro.workloads.base import ScenarioSpec, WorkloadError

__all__ = [
    "ArrivalProcess",
    "poisson_arrivals",
    "bursty_arrivals",
    "arrival_times",
    "schedule_jobs",
]


def poisson_arrivals(rate_per_s: float, duration_s: float, seed: int) -> List[float]:
    """Arrival offsets (seconds) of a Poisson process, sorted ascending.

    Inter-arrival gaps are exponential with mean ``1 / rate_per_s``;
    offsets beyond ``duration_s`` are dropped.
    """
    if rate_per_s <= 0:
        raise WorkloadError(f"rate_per_s must be positive, got {rate_per_s}")
    if duration_s <= 0:
        raise WorkloadError(f"duration_s must be positive, got {duration_s}")
    rng = ensure_rng(seed)
    times: List[float] = []
    clock = 0.0
    while True:
        clock += float(rng.exponential(1.0 / rate_per_s))
        if clock >= duration_s:
            return times
        times.append(round(clock, 9))


def bursty_arrivals(
    rate_per_s: float,
    duration_s: float,
    seed: int,
    burst_every_s: float = 1.0,
    burst_size: int = 5,
    burst_spread_s: float = 0.01,
) -> List[float]:
    """Poisson background traffic plus periodic arrival bursts.

    Every ``burst_every_s`` seconds, ``burst_size`` extra jobs arrive
    nearly simultaneously (uniformly spread over ``burst_spread_s``).
    The merged schedule is sorted ascending.
    """
    if burst_every_s <= 0:
        raise WorkloadError(f"burst_every_s must be positive, got {burst_every_s}")
    if burst_size < 0:
        raise WorkloadError(f"burst_size must be non-negative, got {burst_size}")
    if burst_spread_s < 0:
        raise WorkloadError(f"burst_spread_s must be non-negative, got {burst_spread_s}")
    background = poisson_arrivals(rate_per_s, duration_s, seed)
    rng = ensure_rng(seed + 1)  # independent stream for the burst jitter
    bursts: List[float] = []
    epoch = burst_every_s
    while epoch < duration_s:
        for _ in range(burst_size):
            offset = epoch + float(rng.uniform(0.0, burst_spread_s)) if burst_spread_s else epoch
            if offset < duration_s:
                bursts.append(round(offset, 9))
        epoch += burst_every_s
    return sorted(background + bursts)


@dataclass(frozen=True)
class ArrivalProcess:
    """A serialisable traffic shape attached to a workload suite.

    Attributes
    ----------
    kind:
        ``"poisson"`` or ``"bursty"``.
    rate_per_s / duration_s:
        Background arrival rate and open-loop window length.
    burst_every_s / burst_size / burst_spread_s:
        Burst parameters (``bursty`` only; ignored for ``poisson``).
    """

    kind: str
    rate_per_s: float
    duration_s: float
    burst_every_s: float = 1.0
    burst_size: int = 5
    burst_spread_s: float = 0.01

    def __post_init__(self) -> None:
        if self.kind not in ("poisson", "bursty"):
            raise WorkloadError(
                f"arrival kind must be 'poisson' or 'bursty', got {self.kind!r}"
            )

    def times(self, seed: int) -> List[float]:
        """The arrival offsets of this process for ``seed``."""
        return arrival_times(self, seed)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form carried inside BENCH documents."""
        return {
            "kind": self.kind,
            "rate_per_s": self.rate_per_s,
            "duration_s": self.duration_s,
            "burst_every_s": self.burst_every_s,
            "burst_size": self.burst_size,
            "burst_spread_s": self.burst_spread_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrivalProcess":
        """Rebuild a process from :meth:`to_dict` output."""
        try:
            return cls(
                kind=str(data["kind"]),
                rate_per_s=float(data["rate_per_s"]),
                duration_s=float(data["duration_s"]),
                burst_every_s=float(data.get("burst_every_s", 1.0)),
                burst_size=int(data.get("burst_size", 5)),
                burst_spread_s=float(data.get("burst_spread_s", 0.01)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(f"invalid arrival process {data!r}: {exc}") from exc


def arrival_times(process: ArrivalProcess, seed: int) -> List[float]:
    """Dispatch to the schedule generator matching ``process.kind``."""
    if process.kind == "poisson":
        return poisson_arrivals(process.rate_per_s, process.duration_s, seed)
    return bursty_arrivals(
        process.rate_per_s,
        process.duration_s,
        seed,
        burst_every_s=process.burst_every_s,
        burst_size=process.burst_size,
        burst_spread_s=process.burst_spread_s,
    )


def schedule_jobs(
    specs: Sequence[ScenarioSpec],
    process: ArrivalProcess,
    seed: int,
) -> List[Tuple[float, ScenarioSpec, int]]:
    """Zip an arrival schedule with scenario specs into submissions.

    Arrivals cycle round-robin over ``specs``; the third tuple element
    is the per-scenario instance counter, so every submission builds a
    distinct deterministic problem (``spec.build(instance)``).
    """
    if not specs:
        raise WorkloadError("schedule_jobs needs at least one scenario spec")
    submissions: List[Tuple[float, ScenarioSpec, int]] = []
    counters = [0] * len(specs)
    for position, due_s in enumerate(arrival_times(process, seed)):
        slot = position % len(specs)
        submissions.append((due_s, specs[slot], counters[slot]))
        counters[slot] += 1
    return submissions
