"""repro.workloads — scenario-diverse MQO workload suites.

The workload subsystem turns "generate me an instance" into a
first-class, registry-driven affair (see ``docs/workloads.md``):

* :mod:`repro.workloads.base` — the :class:`ScenarioSpec` model and the
  family registry (:func:`workload_family` decorator),
* :mod:`repro.workloads.families` — the built-in families: query-graph
  topologies (star/chain/clique/bipartite), skewed and correlated cost
  distributions, a TPC-H inspired template mix, beyond-capacity
  instances, plus the paper's original shapes,
* :mod:`repro.workloads.arrivals` — deterministic open-loop arrival
  schedules (Poisson / bursty),
* :mod:`repro.workloads.suites` — named suites (``smoke``,
  ``standard``, ``stress``, ``stream-*``) consumed by ``repro-mqo
  bench`` and the bench orchestrator.

Importing this package registers every built-in family and suite.
"""

from repro.workloads import families as _families  # registers the families
from repro.workloads.embedded import (
    PAPER_CLASS_SIZES,
    EmbeddedTestCase,
    TestCaseClass,
    generate_embedded_testcase,
    paper_test_classes,
)
from repro.workloads.arrivals import (
    ArrivalProcess,
    arrival_times,
    bursty_arrivals,
    poisson_arrivals,
    schedule_jobs,
)
from repro.workloads.base import (
    ScenarioSpec,
    WorkloadError,
    WorkloadFamily,
    build_scenario,
    get_family,
    list_families,
    register_family,
    workload_family,
)
from repro.workloads.suites import (
    WorkloadSuite,
    get_suite,
    list_suites,
    register_suite,
)

del _families

__all__ = [
    "ArrivalProcess",
    "EmbeddedTestCase",
    "PAPER_CLASS_SIZES",
    "ScenarioSpec",
    "TestCaseClass",
    "generate_embedded_testcase",
    "paper_test_classes",
    "WorkloadError",
    "WorkloadFamily",
    "WorkloadSuite",
    "arrival_times",
    "build_scenario",
    "bursty_arrivals",
    "get_family",
    "get_suite",
    "list_families",
    "list_suites",
    "poisson_arrivals",
    "register_family",
    "register_suite",
    "schedule_jobs",
    "workload_family",
]
