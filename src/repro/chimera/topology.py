"""Chimera graph construction and coordinate arithmetic.

A Chimera graph ``C(rows, cols, shore)`` is a ``rows x cols`` grid of
unit cells.  Each unit cell is a complete bipartite graph
``K_{shore,shore}`` between a *left column* (shore 0) and a *right
column* (shore 1) of qubits.  Inter-cell couplers connect:

* left-column qubits to the same-position left-column qubit in the cells
  directly above and below, and
* right-column qubits to the same-position right-column qubit in the
  cells directly to the left and right,

matching the description of Figure 1 in the paper.  Each qubit has at
most ``shore + 2`` couplers (six for the standard ``shore = 4``).

Qubits are identified by linear indices

    index = ((row * cols) + col) * 2 * shore + column * shore + k

or equivalently by :class:`ChimeraCoordinate` tuples
``(row, col, column, k)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

import networkx as nx

from repro.exceptions import TopologyError

__all__ = ["ChimeraCoordinate", "ChimeraGraph"]


@dataclass(frozen=True, order=True)
class ChimeraCoordinate:
    """Position of a qubit in the Chimera grid.

    Attributes
    ----------
    row / col:
        Unit-cell position in the grid.
    column:
        0 for the left column (vertical inter-cell couplers),
        1 for the right column (horizontal inter-cell couplers).
    k:
        Position within the column, ``0 <= k < shore``.
    """

    row: int
    col: int
    column: int
    k: int


class ChimeraGraph:
    """A Chimera topology with an optional set of broken (unusable) qubits.

    Parameters
    ----------
    rows / cols:
        Grid dimensions in unit cells.
    shore:
        Qubits per column in each unit cell (4 on all D-Wave machines).
    broken_qubits:
        Linear indices of qubits that are not functional.  Broken qubits
        and every coupler incident to them are removed from the usable
        graph, mirroring how the D-Wave system exposes its working graph.
    broken_couplers:
        Additional couplers (pairs of linear indices) that are broken even
        though both endpoints work.
    """

    def __init__(
        self,
        rows: int,
        cols: int | None = None,
        shore: int = 4,
        broken_qubits: Iterable[int] = (),
        broken_couplers: Iterable[Tuple[int, int]] = (),
    ) -> None:
        cols = rows if cols is None else cols
        if rows <= 0 or cols <= 0 or shore <= 0:
            raise TopologyError(
                f"Chimera dimensions must be positive, got rows={rows}, cols={cols}, "
                f"shore={shore}"
            )
        self.rows = rows
        self.cols = cols
        self.shore = shore

        self._num_qubits_total = rows * cols * 2 * shore
        self._broken_qubits: FrozenSet[int] = frozenset(int(q) for q in broken_qubits)
        for q in self._broken_qubits:
            if not 0 <= q < self._num_qubits_total:
                raise TopologyError(f"broken qubit index {q} out of range")

        self._broken_couplers: Set[Tuple[int, int]] = set()
        for u, v in broken_couplers:
            self._broken_couplers.add(self._canonical_edge(int(u), int(v)))

        self._adjacency: Dict[int, Set[int]] = {}
        self._build_adjacency()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _canonical_edge(u: int, v: int) -> Tuple[int, int]:
        if u == v:
            raise TopologyError(f"a coupler cannot connect qubit {u} to itself")
        return (u, v) if u < v else (v, u)

    def _build_adjacency(self) -> None:
        usable = set(range(self._num_qubits_total)) - self._broken_qubits
        self._adjacency = {q: set() for q in usable}
        for u, v in self._iter_all_couplers():
            if u in self._broken_qubits or v in self._broken_qubits:
                continue
            if self._canonical_edge(u, v) in self._broken_couplers:
                continue
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)

    def _iter_all_couplers(self) -> Iterator[Tuple[int, int]]:
        """All couplers of the defect-free topology."""
        for row in range(self.rows):
            for col in range(self.cols):
                # Intra-cell: complete bipartite between the two columns.
                for k_left in range(self.shore):
                    left = self.coordinate_to_index(ChimeraCoordinate(row, col, 0, k_left))
                    for k_right in range(self.shore):
                        right = self.coordinate_to_index(
                            ChimeraCoordinate(row, col, 1, k_right)
                        )
                        yield left, right
                # Inter-cell vertical couplers (left column, towards the cell below).
                if row + 1 < self.rows:
                    for k in range(self.shore):
                        upper = self.coordinate_to_index(ChimeraCoordinate(row, col, 0, k))
                        lower = self.coordinate_to_index(
                            ChimeraCoordinate(row + 1, col, 0, k)
                        )
                        yield upper, lower
                # Inter-cell horizontal couplers (right column, towards the cell right).
                if col + 1 < self.cols:
                    for k in range(self.shore):
                        left_cell = self.coordinate_to_index(ChimeraCoordinate(row, col, 1, k))
                        right_cell = self.coordinate_to_index(
                            ChimeraCoordinate(row, col + 1, 1, k)
                        )
                        yield left_cell, right_cell

    # ------------------------------------------------------------------ #
    # Coordinates
    # ------------------------------------------------------------------ #
    def coordinate_to_index(self, coord: ChimeraCoordinate) -> int:
        """Linear index of a coordinate (validity is checked)."""
        if not (0 <= coord.row < self.rows and 0 <= coord.col < self.cols):
            raise TopologyError(f"cell ({coord.row}, {coord.col}) outside the grid")
        if coord.column not in (0, 1):
            raise TopologyError(f"column must be 0 or 1, got {coord.column}")
        if not 0 <= coord.k < self.shore:
            raise TopologyError(f"k must be in [0, {self.shore}), got {coord.k}")
        cell = coord.row * self.cols + coord.col
        return cell * 2 * self.shore + coord.column * self.shore + coord.k

    def index_to_coordinate(self, index: int) -> ChimeraCoordinate:
        """Coordinate of a linear qubit index (validity is checked)."""
        if not 0 <= index < self._num_qubits_total:
            raise TopologyError(f"qubit index {index} out of range")
        cell, within = divmod(index, 2 * self.shore)
        column, k = divmod(within, self.shore)
        row, col = divmod(cell, self.cols)
        return ChimeraCoordinate(row=row, col=col, column=column, k=k)

    def cell_qubits(self, row: int, col: int, include_broken: bool = False) -> List[int]:
        """Linear indices of the qubits in one unit cell."""
        qubits = [
            self.coordinate_to_index(ChimeraCoordinate(row, col, column, k))
            for column in (0, 1)
            for k in range(self.shore)
        ]
        if include_broken:
            return qubits
        return [q for q in qubits if q not in self._broken_qubits]

    # ------------------------------------------------------------------ #
    # Graph accessors
    # ------------------------------------------------------------------ #
    @property
    def num_cells(self) -> int:
        """Number of unit cells in the grid."""
        return self.rows * self.cols

    @property
    def num_qubits_total(self) -> int:
        """Number of qubit sites including broken ones."""
        return self._num_qubits_total

    @property
    def num_qubits(self) -> int:
        """Number of usable (non-broken) qubits."""
        return len(self._adjacency)

    @property
    def broken_qubits(self) -> FrozenSet[int]:
        """The broken qubit indices."""
        return self._broken_qubits

    @property
    def qubits(self) -> List[int]:
        """Sorted usable qubit indices."""
        return sorted(self._adjacency)

    def edges(self) -> List[Tuple[int, int]]:
        """Sorted usable couplers as canonical pairs."""
        seen: Set[Tuple[int, int]] = set()
        for u, partners in self._adjacency.items():
            for v in partners:
                seen.add(self._canonical_edge(u, v))
        return sorted(seen)

    @property
    def num_couplers(self) -> int:
        """Number of usable couplers."""
        return sum(len(p) for p in self._adjacency.values()) // 2

    def has_qubit(self, index: int) -> bool:
        """Whether ``index`` refers to a usable qubit."""
        return index in self._adjacency

    def has_coupler(self, u: int, v: int) -> bool:
        """Whether a usable coupler connects ``u`` and ``v``."""
        return u in self._adjacency and v in self._adjacency[u]

    def neighbors(self, index: int) -> Set[int]:
        """Usable neighbours of a qubit."""
        if index not in self._adjacency:
            raise TopologyError(f"qubit {index} is broken or out of range")
        return set(self._adjacency[index])

    def degree(self, index: int) -> int:
        """Number of usable couplers incident to a qubit."""
        return len(self.neighbors(index))

    def max_degree(self) -> int:
        """Maximum usable degree over all qubits."""
        if not self._adjacency:
            return 0
        return max(len(p) for p in self._adjacency.values())

    def to_networkx(self) -> nx.Graph:
        """The usable topology as a :class:`networkx.Graph` (with coordinates)."""
        graph = nx.Graph()
        for q in self.qubits:
            graph.add_node(q, chimera_coordinate=self.index_to_coordinate(q))
        graph.add_edges_from(self.edges())
        return graph

    def with_defects(
        self,
        broken_qubits: Iterable[int],
        broken_couplers: Iterable[Tuple[int, int]] = (),
    ) -> "ChimeraGraph":
        """A copy of this topology with additional defects applied."""
        return ChimeraGraph(
            rows=self.rows,
            cols=self.cols,
            shore=self.shore,
            broken_qubits=set(self._broken_qubits) | {int(q) for q in broken_qubits},
            broken_couplers=set(self._broken_couplers)
            | {self._canonical_edge(int(u), int(v)) for u, v in broken_couplers},
        )

    def render_ascii(self, max_cells: int = 4) -> str:
        """A small ASCII rendering of the first ``max_cells`` x ``max_cells`` cells.

        Used by the Figure 1 benchmark to visualise the structure; broken
        qubits are marked with ``x``.
        """
        rows = min(self.rows, max_cells)
        cols = min(self.cols, max_cells)
        lines: List[str] = []
        for row in range(rows):
            for k in range(self.shore):
                cells = []
                for col in range(cols):
                    left = self.coordinate_to_index(ChimeraCoordinate(row, col, 0, k))
                    right = self.coordinate_to_index(ChimeraCoordinate(row, col, 1, k))
                    left_mark = "x" if left in self._broken_qubits else "o"
                    right_mark = "x" if right in self._broken_qubits else "o"
                    cells.append(f"{left_mark}={right_mark}")
                lines.append("   ".join(cells))
            lines.append("")
        return "\n".join(lines).rstrip()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ChimeraGraph C({self.rows},{self.cols},{self.shore}): "
            f"{self.num_qubits}/{self.num_qubits_total} qubits, "
            f"{self.num_couplers} couplers>"
        )
