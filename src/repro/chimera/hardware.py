"""Device specifications for the D-Wave annealers referenced in the paper.

The :class:`DWaveSpec` bundles the topology dimensions with the timing
constants of the annealing cycle.  The paper's experiments use the
D-Wave 2X defaults: 129 microseconds of annealing plus 247 microseconds
of read-out per run (376 microseconds per sample), 1000 runs per test
case split into 10 gauge batches of 100 runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chimera.topology import ChimeraGraph
from repro.exceptions import TopologyError
from repro.utils.rng import SeedLike

__all__ = ["DWaveSpec", "DWAVE_2X", "DWAVE_TWO"]


@dataclass(frozen=True)
class DWaveSpec:
    """Static description of a D-Wave annealer generation.

    Attributes
    ----------
    name:
        Marketing name of the machine generation.
    cell_rows / cell_cols / shore:
        Chimera dimensions.
    functional_qubits:
        Number of working qubits on the specific machine used in the
        paper (1097 of 1152 for the D-Wave 2X at NASA Ames).
    anneal_time_us / readout_time_us:
        Per-run annealing and read-out durations in microseconds.
    default_num_reads / default_num_gauges:
        Paper defaults: 1000 reads split into 10 gauge transformations.
    """

    name: str
    cell_rows: int
    cell_cols: int
    shore: int = 4
    functional_qubits: int | None = None
    anneal_time_us: float = 129.0
    readout_time_us: float = 247.0
    default_num_reads: int = 1000
    default_num_gauges: int = 10

    def __post_init__(self) -> None:
        if self.cell_rows <= 0 or self.cell_cols <= 0 or self.shore <= 0:
            raise TopologyError("device dimensions must be positive")
        if self.anneal_time_us <= 0 or self.readout_time_us < 0:
            raise TopologyError("device timing constants must be positive")
        total = self.total_qubits
        if self.functional_qubits is not None and not 0 < self.functional_qubits <= total:
            raise TopologyError(
                f"functional_qubits must be in (0, {total}], got {self.functional_qubits}"
            )

    @property
    def total_qubits(self) -> int:
        """Number of qubit sites of the full topology."""
        return self.cell_rows * self.cell_cols * 2 * self.shore

    @property
    def num_broken_qubits(self) -> int:
        """Number of broken qubit sites implied by ``functional_qubits``."""
        if self.functional_qubits is None:
            return 0
        return self.total_qubits - self.functional_qubits

    @property
    def time_per_read_us(self) -> float:
        """Anneal + read-out duration of one annealing run, in microseconds."""
        return self.anneal_time_us + self.readout_time_us

    @property
    def time_per_read_ms(self) -> float:
        """Anneal + read-out duration of one annealing run, in milliseconds."""
        return self.time_per_read_us / 1000.0

    def build_topology(self, seed: SeedLike = None, perfect: bool = False) -> ChimeraGraph:
        """Construct the Chimera topology for this device.

        Parameters
        ----------
        seed:
            Seed for sampling the broken-qubit sites (ignored when
            ``perfect`` is true or the spec has no broken qubits).
        perfect:
            Build the defect-free topology regardless of
            ``functional_qubits``.
        """
        from repro.chimera.defects import sample_broken_qubits

        if perfect or self.num_broken_qubits == 0:
            return ChimeraGraph(self.cell_rows, self.cell_cols, self.shore)
        broken = sample_broken_qubits(self.total_qubits, self.num_broken_qubits, seed=seed)
        return ChimeraGraph(
            self.cell_rows, self.cell_cols, self.shore, broken_qubits=broken
        )


#: The machine evaluated in the paper: 1152 qubit sites, 1097 functional.
DWAVE_2X = DWaveSpec(
    name="D-Wave 2X",
    cell_rows=12,
    cell_cols=12,
    shore=4,
    functional_qubits=1097,
)

#: The 512-qubit predecessor referenced in related work (Section 8).
DWAVE_TWO = DWaveSpec(
    name="D-Wave Two",
    cell_rows=8,
    cell_cols=8,
    shore=4,
    functional_qubits=509,
)
