"""Chimera hardware topology model (paper Section 2, Figure 1).

The D-Wave 2X qubit matrix is a 12 x 12 grid of unit cells; each unit
cell holds eight qubits arranged in two columns ("colons" in the paper)
of four.  Within a cell every left-column qubit couples to every
right-column qubit; across cells, left-column qubits couple to their
counterparts in the cells above/below and right-column qubits to their
counterparts in the cells to the left/right.  Each qubit therefore has
at most six couplers.
"""

from repro.chimera.topology import ChimeraCoordinate, ChimeraGraph
from repro.chimera.defects import DefectModel, sample_broken_qubits
from repro.chimera.hardware import DWaveSpec, DWAVE_2X, DWAVE_TWO

__all__ = [
    "ChimeraCoordinate",
    "ChimeraGraph",
    "DefectModel",
    "sample_broken_qubits",
    "DWaveSpec",
    "DWAVE_2X",
    "DWAVE_TWO",
]
