"""Broken-qubit (defect) models for the Chimera topology.

The manufacturing process of the D-Wave qubit matrix is imperfect; on the
machine used in the paper only 1097 of 1152 qubits were functional
(a ~4.8 % defect rate).  The defect model lets experiments reproduce that
yield or sweep it for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List

from repro.chimera.topology import ChimeraGraph
from repro.exceptions import TopologyError
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["DefectModel", "sample_broken_qubits"]


def sample_broken_qubits(
    num_qubits_total: int,
    num_broken: int,
    seed: SeedLike = None,
) -> FrozenSet[int]:
    """Sample ``num_broken`` distinct broken qubit indices uniformly."""
    if num_broken < 0:
        raise TopologyError(f"num_broken must be non-negative, got {num_broken}")
    if num_broken > num_qubits_total:
        raise TopologyError(
            f"cannot break {num_broken} qubits of only {num_qubits_total}"
        )
    rng = ensure_rng(seed)
    chosen = rng.choice(num_qubits_total, size=num_broken, replace=False)
    return frozenset(int(q) for q in chosen)


@dataclass(frozen=True)
class DefectModel:
    """A random-yield defect model.

    Attributes
    ----------
    broken_fraction:
        Fraction of qubit sites that are broken (paper machine: 55/1152).
    """

    broken_fraction: float = 55.0 / 1152.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.broken_fraction < 1.0:
            raise TopologyError(
                f"broken_fraction must be in [0, 1), got {self.broken_fraction}"
            )

    def num_broken(self, num_qubits_total: int) -> int:
        """Number of broken qubits for a topology of the given size."""
        return int(round(self.broken_fraction * num_qubits_total))

    def apply(self, topology: ChimeraGraph, seed: SeedLike = None) -> ChimeraGraph:
        """Return a copy of ``topology`` with randomly sampled broken qubits."""
        already_broken = topology.broken_qubits
        target = self.num_broken(topology.num_qubits_total)
        additional = max(0, target - len(already_broken))
        if additional == 0:
            return topology
        rng = ensure_rng(seed)
        candidates: List[int] = [
            q for q in range(topology.num_qubits_total) if q not in already_broken
        ]
        chosen = rng.choice(len(candidates), size=additional, replace=False)
        new_broken = {candidates[int(i)] for i in chosen}
        return topology.with_defects(new_broken)
