"""Fan-out of incremental anytime updates to subscribed clients.

While a job runs, its solvers record incumbent improvements through
:class:`~repro.baselines.anytime.TrajectoryRecorder`; the worker pool
forwards those improvements (via the thread-local observer hook and
``loop.call_soon_threadsafe``) into the :class:`StreamBroker`, which
maintains one channel per live job.  A channel filters the raw
improvement stream down to the *monotone* best-so-far frontier — racing
portfolio members each report their own improvements, but subscribers
only care when the job-level incumbent improves — stamps a sequence
number, and fans the update out to every sink.

Sinks are plain callables ``sink(payload: dict) -> None`` supplied by
the connection layer; a payload is a protocol frame *without* the ``id``
field, which each sink injects for its own request before writing.  The
broker itself is transport-free and single-threaded (event-loop only),
which keeps it directly unit-testable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

__all__ = ["StreamBroker", "StreamSink"]

#: A subscriber callback; receives protocol frames without the ``id`` field.
StreamSink = Callable[[Dict[str, Any]], None]

#: Improvements smaller than this are noise, not updates.
_IMPROVEMENT_EPS = 1e-12


class _Channel:
    """Per-job stream state: sinks, sequence counter, incumbent filter."""

    __slots__ = ("update_sinks", "result_sinks", "seq", "best_cost")

    def __init__(self) -> None:
        self.update_sinks: List[StreamSink] = []
        self.result_sinks: List[StreamSink] = []
        self.seq = 0
        self.best_cost = float("inf")


class StreamBroker:
    """Routes per-job update and result payloads to registered sinks.

    All methods must be called from the event-loop thread (worker
    threads hand improvements over via ``call_soon_threadsafe``).
    """

    def __init__(self, on_update_streamed: Optional[Callable[[int], None]] = None) -> None:
        self._channels: Dict[str, _Channel] = {}
        # Metrics hook: called with the number of sinks an update reached.
        self._on_update_streamed = on_update_streamed

    # ------------------------------------------------------------------ #
    # Channel lifecycle
    # ------------------------------------------------------------------ #
    def open(self, job_id: str) -> None:
        """Create the channel for a newly admitted job."""
        self._channels.setdefault(job_id, _Channel())

    def is_open(self, job_id: str) -> bool:
        """Whether ``job_id`` has a live channel."""
        return job_id in self._channels

    def subscribe(self, job_id: str, sink: StreamSink, updates: bool = True) -> bool:
        """Attach ``sink`` to a live job.

        With ``updates=True`` the sink receives every incremental update
        plus the final result; with ``updates=False`` only the final
        result (the ``wait`` operation).  Returns ``False`` when the job
        has no live channel (unknown or already closed) — the caller
        falls back to the completed-job registry.
        """
        channel = self._channels.get(job_id)
        if channel is None:
            return False
        if updates:
            channel.update_sinks.append(sink)
        else:
            channel.result_sinks.append(sink)
        return True

    def discard(self, job_id: str) -> None:
        """Drop a channel without delivering anything (admission failed)."""
        self._channels.pop(job_id, None)

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish_improvement(
        self, job_id: str, solver: str, elapsed_ms: float, cost: float
    ) -> bool:
        """Forward one solver improvement if it improves the job incumbent.

        Returns whether an update was emitted.  Non-improving reports
        (a slower portfolio member catching up) are dropped, so streamed
        costs are strictly decreasing and ``seq`` numbers are gap-free.
        """
        channel = self._channels.get(job_id)
        if channel is None:
            return False
        if cost >= channel.best_cost - _IMPROVEMENT_EPS:
            return False
        channel.best_cost = cost
        channel.seq += 1
        payload = {
            "type": "update",
            "job_id": job_id,
            "seq": channel.seq,
            "elapsed_ms": round(float(elapsed_ms), 3),
            "cost": float(cost),
            "solver": solver,
        }
        delivered = 0
        for sink in list(channel.update_sinks):
            try:
                sink(dict(payload))
                delivered += 1
            except Exception:  # noqa: BLE001 — a dead sink must not stop the fan-out
                pass
        if delivered and self._on_update_streamed is not None:
            self._on_update_streamed(delivered)
        return True

    def publish_progress(
        self, job_id: str, solver: str, completed: int, total: int
    ) -> bool:
        """Forward one coarse progress report (decomposition cluster counts).

        Unlike :meth:`publish_improvement` there is no incumbent filter —
        every completion is news — but the frames share the channel's
        ``seq`` counter so subscribers still see one gap-free ordering.
        Clients that predate the ``progress`` frame type ignore it.
        """
        channel = self._channels.get(job_id)
        if channel is None:
            return False
        channel.seq += 1
        payload = {
            "type": "progress",
            "job_id": job_id,
            "seq": channel.seq,
            "solver": solver,
            "completed": int(completed),
            "total": int(total),
        }
        delivered = 0
        for sink in list(channel.update_sinks):
            try:
                sink(dict(payload))
                delivered += 1
            except Exception:  # noqa: BLE001 — see publish_improvement
                pass
        if delivered and self._on_update_streamed is not None:
            self._on_update_streamed(delivered)
        return True

    def close(self, job_id: str, final_payload: Dict[str, Any]) -> int:
        """Deliver the final payload to every sink and drop the channel.

        Returns the number of sinks the final frame reached.
        """
        channel = self._channels.pop(job_id, None)
        if channel is None:
            return 0
        delivered = 0
        for sink in channel.update_sinks + channel.result_sinks:
            try:
                sink(dict(final_payload))
                delivered += 1
            except Exception:  # noqa: BLE001 — see publish_improvement
                pass
        return delivered

    def __len__(self) -> int:
        return len(self._channels)
