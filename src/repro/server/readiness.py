"""Readiness polling for solver servers.

``sleep N`` before talking to a freshly started server is timing-flaky:
on a loaded CI runner N seconds may not be enough, and on a fast laptop
it wastes N seconds.  :func:`wait_for_server` polls instead — first a
raw TCP connect, then a full ``ping`` round-trip over the NDJSON
protocol — and returns as soon as the server actually answers.

Used by the CI server-smoke step (``python -m repro.server.readiness``)
and by the server test fixtures (``tests/server/conftest.py``), so both
share one definition of "the server is up".
"""

from __future__ import annotations

import argparse
import socket
import sys
import time
from typing import List, Optional

from repro.exceptions import ReproError, ServerError
from repro.server.client import SolverClient

__all__ = ["wait_for_server"]

#: Default gap between connection attempts, in seconds.
_POLL_INTERVAL_S = 0.05


def wait_for_server(
    host: str = "127.0.0.1",
    port: int = 7337,
    timeout_s: float = 15.0,
    poll_interval_s: float = _POLL_INTERVAL_S,
    min_shards: Optional[int] = None,
) -> float:
    """Block until a solver server answers a ping at ``host:port``.

    After the ping the probe performs a liveness check through the
    ``health`` op: a server whose verdict is ``draining`` is shutting
    down, not becoming ready, so polling continues.  With ``min_shards``
    the probe additionally waits until at least that many shard
    processes report alive — a sharded server accepts connections
    before its children finish booting, and fault tests must not race a
    respawning shard.

    Returns the seconds spent waiting.  Raises
    :class:`~repro.exceptions.ServerError` when the deadline passes
    without a successful ping round-trip (the last connection error is
    included in the message).
    """
    if timeout_s <= 0:
        raise ReproError(f"timeout_s must be positive, got {timeout_s}")
    start = time.perf_counter()
    deadline = start + timeout_s
    last_error: Optional[Exception] = None
    while time.perf_counter() < deadline:
        # Cheap TCP probe first: most of the waiting happens before the
        # socket is even listening, and a failed connect is far cheaper
        # than building a client.
        try:
            probe = socket.create_connection((host, port), timeout=poll_interval_s * 4)
            probe.close()
        except OSError as exc:
            last_error = exc
            time.sleep(poll_interval_s)
            continue
        try:
            with SolverClient(host=host, port=port, timeout_s=2.0) as client:
                if client.ping():
                    health = client.health()
                    verdict = health.get("verdict")
                    if verdict == "draining":
                        last_error = ServerError("server is draining, not ready")
                    elif min_shards is None:
                        return time.perf_counter() - start
                    elif int(health.get("alive", 0)) >= min_shards:
                        return time.perf_counter() - start
                    else:
                        last_error = ServerError(
                            f"only {health.get('alive', 0)}/{min_shards} shards alive "
                            f"(verdict {verdict})"
                        )
        except ReproError as exc:
            # Listening but not answering yet (or a stale socket from a
            # dying server): keep polling until the deadline.
            last_error = exc
        time.sleep(poll_interval_s)
    detail = f": {last_error}" if last_error is not None else ""
    raise ServerError(
        f"server at {host}:{port} not ready after {timeout_s:.1f}s{detail}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI wrapper: exit 0 once the server is ready, 1 on timeout."""
    parser = argparse.ArgumentParser(description=wait_for_server.__doc__)
    parser.add_argument("--host", type=str, default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, default=7337, help="server port")
    parser.add_argument(
        "--timeout-s", type=float, default=15.0, help="give up after this many seconds"
    )
    parser.add_argument(
        "--min-shards",
        type=int,
        default=None,
        help="additionally wait until this many shard processes report ready",
    )
    args = parser.parse_args(argv)
    try:
        waited = wait_for_server(
            args.host, args.port, timeout_s=args.timeout_s, min_shards=args.min_shards
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"server at {args.host}:{args.port} ready after {waited:.2f}s", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
