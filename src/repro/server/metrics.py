"""Server metrics: per-endpoint latency/throughput plus job counters.

The server records every request it dispatches (per ``op``: count,
errors, handler latency) and every job lifecycle event (submitted,
completed, failed, coalesced, rejected, streamed updates).  Latency
percentiles come from a fixed-size reservoir of the most recent samples,
so the memory footprint is constant no matter how long the server runs.

:meth:`ServerMetrics.snapshot` renders everything into one
JSON-friendly dictionary; the ``stats`` protocol request returns it
verbatim, and the throughput benchmark persists it into
``BENCH_server.json``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["LatencyStats", "EndpointStats", "ServerMetrics"]

#: Job/stream counters tracked by :class:`ServerMetrics`.
_JOB_COUNTERS = (
    "jobs_submitted",
    "jobs_completed",
    "jobs_failed",
    "jobs_coalesced",
    "jobs_rejected",
    "updates_streamed",
    "connections_opened",
    "connections_closed",
)


class LatencyStats:
    """Constant-memory latency aggregate: count, sum and a sample window.

    Percentiles are computed over the most recent ``window`` samples (a
    ring buffer); the count and mean cover the full lifetime.
    """

    def __init__(self, window: int = 2048) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._window = window
        self._samples: List[float] = []
        self._cursor = 0
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def observe(self, latency_ms: float) -> None:
        """Record one latency sample (milliseconds)."""
        value = float(latency_ms)
        self.count += 1
        self.total_ms += value
        if value > self.max_ms:
            self.max_ms = value
        if len(self._samples) < self._window:
            self._samples.append(value)
        else:
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self._window

    def percentile(self, fraction: float) -> float:
        """Latency at ``fraction`` (0..1) over the sample window (0 when empty)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
        return ordered[index]

    @property
    def mean_ms(self) -> float:
        """Lifetime mean latency (0 when no samples)."""
        return self.total_ms / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        """JSON-friendly summary: count, mean, p50, p99, max."""
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 3),
            "p50_ms": round(self.percentile(0.50), 3),
            "p99_ms": round(self.percentile(0.99), 3),
            "max_ms": round(self.max_ms, 3),
        }


class EndpointStats:
    """Request count, error count and handler latency of one endpoint."""

    def __init__(self, window: int = 2048) -> None:
        self.requests = 0
        self.errors = 0
        self.latency = LatencyStats(window=window)

    def observe(self, latency_ms: float, error: bool) -> None:
        """Record one handled request."""
        self.requests += 1
        if error:
            self.errors += 1
        self.latency.observe(latency_ms)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly summary of this endpoint."""
        payload: Dict[str, Any] = {"requests": self.requests, "errors": self.errors}
        payload.update(self.latency.snapshot())
        return payload


class ServerMetrics:
    """Thread-safe aggregate of everything the ``stats`` request reports.

    Handler paths run on the event loop, but job completions are recorded
    from worker coroutines and the benchmark reads snapshots from other
    threads, so a plain lock guards all state.
    """

    def __init__(self, window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._window = window
        self._endpoints: Dict[str, EndpointStats] = {}
        self._counters: Dict[str, int] = {name: 0 for name in _JOB_COUNTERS}
        self.queue_wait = LatencyStats(window=window)
        self.job_run = LatencyStats(window=window)
        self.started_at = time.monotonic()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def observe_request(self, op: str, latency_ms: float, error: bool = False) -> None:
        """Record one protocol request handled for endpoint ``op``."""
        with self._lock:
            endpoint = self._endpoints.get(op)
            if endpoint is None:
                endpoint = self._endpoints[op] = EndpointStats(window=self._window)
            endpoint.observe(latency_ms, error)

    def observe_job(self, queue_wait_ms: float, run_ms: float, failed: bool) -> None:
        """Record one completed job (queue wait + execution time)."""
        with self._lock:
            self.queue_wait.observe(queue_wait_ms)
            self.job_run.observe(run_ms)
            self._counters["jobs_completed"] += 1
            if failed:
                self._counters["jobs_failed"] += 1

    def increment(self, counter: str, amount: int = 1) -> None:
        """Bump one of the job/stream counters by ``amount``."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of one counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def snapshot(
        self,
        queue_depth: Optional[int] = None,
        inflight: Optional[int] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Render all metrics into one JSON-friendly dictionary.

        ``queue_depth``/``inflight`` are point-in-time gauges supplied by
        the caller (the queue and worker pool own that state); ``extra``
        is merged in verbatim (e.g. the result-cache hit rate).
        """
        with self._lock:
            uptime_s = max(time.monotonic() - self.started_at, 1e-9)
            completed = self._counters["jobs_completed"]
            payload: Dict[str, Any] = {
                "uptime_s": round(uptime_s, 3),
                "counters": dict(self._counters),
                "jobs_per_second": round(completed / uptime_s, 3),
                "queue_wait": self.queue_wait.snapshot(),
                "job_run": self.job_run.snapshot(),
                "endpoints": {
                    op: endpoint.snapshot() for op, endpoint in sorted(self._endpoints.items())
                },
            }
        if queue_depth is not None:
            payload["queue_depth"] = queue_depth
        if inflight is not None:
            payload["inflight"] = inflight
        if extra:
            payload.update(extra)
        return payload
