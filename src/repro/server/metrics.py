"""Server metrics: per-endpoint latency/throughput plus job counters.

The server records every request it dispatches (per ``op``: count,
errors, handler latency) and every job lifecycle event (submitted,
completed, failed, coalesced, rejected, streamed updates).  Latency
percentiles come from a fixed-size reservoir of the most recent samples,
so the memory footprint is constant no matter how long the server runs.

All state lives in a :class:`repro.obs.metrics.MetricsRegistry` — one
per :class:`ServerMetrics` instance — so the same numbers back both the
JSON ``stats`` snapshot (:meth:`ServerMetrics.snapshot`, persisted into
``BENCH_server.json`` by the throughput benchmark) and the Prometheus
text exposition served by the ``metrics`` protocol op
(:meth:`ServerMetrics.prometheus_text`).

The sharded tier federates: each shard process ships its process-global
registry as a :meth:`~repro.obs.metrics.MetricsRegistry.to_snapshot`
payload over the control pipe (heartbeat ticks and drain), the parent
stores the latest snapshot per slot (:meth:`ServerMetrics.record_shard_snapshot`)
and the exposition merges everything — per-shard series under a
``shard="N"`` label plus an unlabelled cluster rollup.

Counting semantics: ``jobs_completed`` counts **successes only**,
``jobs_failed`` counts failures, and ``jobs_finished`` is their total —
so ``jobs_per_second`` (successes per second of uptime) can no longer be
inflated by a stream of failing jobs.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from repro.obs.export import render_prometheus
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, get_registry

__all__ = ["LatencyStats", "EndpointStats", "ServerMetrics"]

#: Job/stream counters tracked by :class:`ServerMetrics`.
_JOB_COUNTERS = (
    "jobs_submitted",
    "jobs_completed",
    "jobs_finished",
    "jobs_failed",
    "jobs_coalesced",
    "jobs_rejected",
    "updates_streamed",
    "connections_opened",
    "connections_closed",
    "fusion_windows",
    "fusion_jobs",
)

_COUNTER_HELP = {
    "jobs_submitted": "Jobs admitted into the queue.",
    "jobs_completed": "Jobs finished successfully.",
    "jobs_finished": "Jobs finished, successful or not.",
    "jobs_failed": "Jobs finished with an error.",
    "jobs_coalesced": "Duplicate jobs attached to an in-flight twin.",
    "jobs_rejected": "Jobs refused at admission.",
    "updates_streamed": "Anytime improvement frames streamed to clients.",
    "connections_opened": "Client connections accepted.",
    "connections_closed": "Client connections closed.",
    "fusion_windows": "Fused anneal windows executed.",
    "fusion_jobs": "Jobs that ran inside a fused anneal window.",
}


def _prom_counter_name(short: str) -> str:
    """The Prometheus series name of one short-named job counter."""
    return f"repro_server_{short}_total"


class LatencyStats(Histogram):
    """Constant-memory latency aggregate: count, sum and a sample window.

    A :class:`~repro.obs.metrics.Histogram` specialised for millisecond
    latencies, keeping the historical field names (``total_ms``,
    ``max_ms``) and snapshot shape.  Percentiles are computed over the
    most recent ``window`` samples; :meth:`snapshot` sorts that window
    exactly **once** for all of its percentiles.
    """

    def __init__(self, window: int = 2048, name: str = "latency_ms") -> None:
        super().__init__(name=name, window=window)

    @property
    def total_ms(self) -> float:
        """Lifetime sum of all samples (milliseconds)."""
        return self.total

    @property
    def max_ms(self) -> float:
        """Largest sample ever observed (milliseconds)."""
        return self.max_value

    @property
    def mean_ms(self) -> float:
        """Lifetime mean latency (0 when no samples)."""
        return self.mean

    def percentile(self, fraction: float) -> float:
        """Latency at ``fraction`` (0..1] over the sample window (0 when empty)."""
        return self.window_percentiles((fraction,))[0]

    def snapshot(self) -> Dict[str, float]:
        """JSON-friendly summary: count, mean, p50, p99, max (one sort)."""
        p50, p99 = self.window_percentiles((0.50, 0.99))
        return {
            "count": self.count,
            "mean_ms": round(self.mean, 3),
            "p50_ms": round(p50, 3),
            "p99_ms": round(p99, 3),
            "max_ms": round(self.max_value, 3),
        }


class EndpointStats:
    """Request count, error count and handler latency of one endpoint."""

    def __init__(
        self,
        op: str = "",
        registry: Optional[MetricsRegistry] = None,
        window: int = 2048,
    ) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        labels = {"op": op} if op else None
        self._requests: Counter = registry.counter(
            "repro_server_requests_total", "Protocol requests handled.", labels
        )
        self._errors: Counter = registry.counter(
            "repro_server_request_errors_total", "Protocol requests that errored.", labels
        )
        self.latency: LatencyStats = registry.histogram(
            "repro_server_request_latency_ms",
            "Handler latency per protocol op.",
            labels,
            window=window,
            factory=lambda: LatencyStats(window=window, name="repro_server_request_latency_ms"),
        )

    @property
    def requests(self) -> int:
        """Requests handled on this endpoint."""
        return self._requests.value

    @property
    def errors(self) -> int:
        """Requests that ended in an error frame."""
        return self._errors.value

    def observe(self, latency_ms: float, error: bool) -> None:
        """Record one handled request."""
        self._requests.inc()
        if error:
            self._errors.inc()
        self.latency.observe(latency_ms)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly summary of this endpoint."""
        payload: Dict[str, Any] = {"requests": self.requests, "errors": self.errors}
        payload.update(self.latency.snapshot())
        return payload


class ServerMetrics:
    """Thread-safe aggregate of everything the ``stats`` request reports.

    Handler paths run on the event loop, but job completions are recorded
    from worker coroutines and the benchmark reads snapshots from other
    threads; the individual instruments are thread-safe and a small lock
    guards the endpoint map.
    """

    def __init__(self, window: int = 2048, registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self._window = window
        self.registry = registry if registry is not None else MetricsRegistry()
        self._endpoints: Dict[str, EndpointStats] = {}
        self._shard_counters: Dict[tuple, Counter] = {}
        self._shard_metric_snapshots: Dict[int, Dict[str, Any]] = {}
        self._counters: Dict[str, Counter] = {
            name: self.registry.counter(_prom_counter_name(name), _COUNTER_HELP.get(name, ""))
            for name in _JOB_COUNTERS
        }
        self.queue_wait: LatencyStats = self.registry.histogram(
            "repro_server_queue_wait_ms",
            "Time jobs spent queued before a worker picked them up.",
            window=window,
            factory=lambda: LatencyStats(window=window, name="repro_server_queue_wait_ms"),
        )
        self.job_run: LatencyStats = self.registry.histogram(
            "repro_server_job_run_ms",
            "Job execution time on the worker pool.",
            window=window,
            factory=lambda: LatencyStats(window=window, name="repro_server_job_run_ms"),
        )
        self.fusion_window_ms: LatencyStats = self.registry.histogram(
            "repro_server_fusion_window_ms",
            "Wall-clock execution time of fused anneal windows "
            "(compare with repro_server_job_run_ms for solo jobs).",
            window=window,
            factory=lambda: LatencyStats(window=window, name="repro_server_fusion_window_ms"),
        )
        self._fusion_batch_gauge = self.registry.gauge(
            "repro_server_fusion_batch_size",
            "Jobs coalesced into the most recent fused anneal window.",
        )
        self._uptime_gauge = self.registry.gauge(
            "repro_server_uptime_seconds", "Seconds since the metrics were created."
        )
        self.started_at = time.monotonic()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def observe_request(self, op: str, latency_ms: float, error: bool = False) -> None:
        """Record one protocol request handled for endpoint ``op``."""
        with self._lock:
            endpoint = self._endpoints.get(op)
            if endpoint is None:
                endpoint = self._endpoints[op] = EndpointStats(
                    op=op, registry=self.registry, window=self._window
                )
        endpoint.observe(latency_ms, error)

    def observe_job(self, queue_wait_ms: float, run_ms: float, failed: bool) -> None:
        """Record one finished job (queue wait + execution time).

        Every finished job counts into ``jobs_finished``; only successes
        count into ``jobs_completed``, only failures into ``jobs_failed``.
        """
        self.queue_wait.observe(queue_wait_ms)
        self.job_run.observe(run_ms)
        self._counters["jobs_finished"].inc()
        if failed:
            self._counters["jobs_failed"].inc()
        else:
            self._counters["jobs_completed"].inc()

    def increment(self, counter: str, amount: int = 1) -> None:
        """Bump one of the job/stream counters by ``amount``."""
        with self._lock:
            instrument = self._counters.get(counter)
            if instrument is None:
                instrument = self._counters[counter] = self.registry.counter(
                    _prom_counter_name(counter)
                )
        instrument.inc(amount)

    def observe_fusion_window(self, batch_size: int, window_ms: float) -> None:
        """Record one executed fusion window (size + wall-clock).

        Average batch size is derivable from the counters
        (``fusion_jobs / fusion_windows``); the gauge exposes the most
        recent window for live dashboards.
        """
        self.increment("fusion_windows")
        self.increment("fusion_jobs", batch_size)
        self._fusion_batch_gauge.set(batch_size)
        self.fusion_window_ms.observe(window_ms)

    def counter(self, name: str) -> int:
        """Current value of one counter (0 when never incremented)."""
        with self._lock:
            instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def counter_value(self, name: str) -> int:
        """Read-only alias of :meth:`counter` for instrumented code.

        Counter *reads* take the short snapshot key (``"fusion_jobs"``),
        not the ``repro_``-prefixed exposition name, so call sites in
        ``src`` use this spelling — the metric-name lint reserves
        ``.counter(...)`` for series registrations.
        """
        return self.counter(name)

    # ------------------------------------------------------------------ #
    # Per-shard labelled counters (the sharded worker tier)
    # ------------------------------------------------------------------ #
    _SHARD_COUNTER_HELP = {
        "jobs": "Jobs finished per shard process.",
        "failures": "Jobs failed per shard process.",
        "restarts": "Shard process respawns after an unexpected death.",
        "retries": "Jobs re-dispatched after their owning shard died.",
    }

    def _shard_counter(self, short: str, shard: int) -> Counter:
        """The ``{shard="<i>"}``-labelled series of one shard counter."""
        with self._lock:
            key = (short, shard)
            instrument = self._shard_counters.get(key)
            if instrument is None:
                instrument = self._shard_counters[key] = self.registry.counter(
                    f"repro_server_shard_{short}_total",
                    self._SHARD_COUNTER_HELP.get(short, ""),
                    {"shard": str(shard)},
                )
        return instrument

    def observe_shard_job(self, shard: int, failed: bool) -> None:
        """Record one job finished by shard ``shard``."""
        self._shard_counter("jobs", shard).inc()
        if failed:
            self._shard_counter("failures", shard).inc()

    def observe_shard_restart(self, shard: int) -> None:
        """Record one respawn of shard ``shard`` after an unexpected death."""
        self._shard_counter("restarts", shard).inc()

    def observe_shard_retry(self, shard: int) -> None:
        """Record one job retried away from dead shard ``shard``."""
        self._shard_counter("retries", shard).inc()

    def set_shard_gauge(self, short: str, shard: int, value: float, help: str = "") -> None:
        """Set the ``{shard="<i>"}``-labelled gauge ``repro_server_shard_<short>``."""
        self.registry.gauge(
            f"repro_server_shard_{short}", help, {"shard": str(shard)}
        ).set(value)

    def shard_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-shard counter values keyed by shard index (may be empty)."""
        with self._lock:
            items = list(self._shard_counters.items())
        snapshot: Dict[str, Dict[str, int]] = {}
        for (short, shard), instrument in items:
            snapshot.setdefault(str(shard), {})[short] = instrument.value
        return snapshot

    # ------------------------------------------------------------------ #
    # Metrics federation (shard registry snapshots)
    # ------------------------------------------------------------------ #
    def record_shard_snapshot(self, shard: int, snapshot: Dict[str, Any]) -> None:
        """Store the latest registry snapshot shipped by shard ``shard``.

        Shards send *cumulative* snapshots on every heartbeat, so the
        parent keeps only the newest one per slot — merging happens
        afresh at exposition time, never destructively.  The store is
        guarded by the metrics lock: heartbeats land on the event loop
        while :meth:`snapshot`/:meth:`prometheus_text` may run from a
        benchmark thread mid-drain.
        """
        with self._lock:
            self._shard_metric_snapshots[int(shard)] = snapshot

    def shard_metric_snapshots(self) -> Dict[int, Dict[str, Any]]:
        """The latest federated snapshot per shard slot (may be empty)."""
        with self._lock:
            return dict(self._shard_metric_snapshots)

    def federated_registry(self) -> MetricsRegistry:
        """One merged registry: server + process-global + shard snapshots.

        Per-shard series carry a ``shard="N"`` label; each shard snapshot
        is additionally merged *unlabelled* so the plain series act as the
        cluster rollup (parent + every shard).  Counter semantics: a
        respawned shard restarts its counters from zero, so a federated
        counter may step down after a respawn — the standard Prometheus
        counter-reset, which ``rate()`` absorbs.  Rollup gauges are
        last-write-wins across shards; prefer the labelled series.
        """
        merged = MetricsRegistry()
        merged.merge_snapshot(self.registry.to_snapshot())
        merged.merge_snapshot(get_registry().to_snapshot())
        for shard, snapshot in sorted(self.shard_metric_snapshots().items()):
            merged.merge_snapshot(snapshot, extra_labels={"shard": str(shard)})
            merged.merge_snapshot(snapshot)
        return merged

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def uptime_s(self) -> float:
        """Seconds since this metrics object was created (never zero)."""
        return max(time.monotonic() - self.started_at, 1e-9)

    def snapshot(
        self,
        queue_depth: Optional[int] = None,
        inflight: Optional[int] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Render all metrics into one JSON-friendly dictionary.

        ``queue_depth``/``inflight`` are point-in-time gauges supplied by
        the caller (the queue and worker pool own that state); ``extra``
        is merged in verbatim (e.g. the result-cache hit rate).
        """
        with self._lock:
            counters = {name: instrument.value for name, instrument in self._counters.items()}
            endpoints = {
                op: endpoint.snapshot() for op, endpoint in sorted(self._endpoints.items())
            }
        uptime_s = self.uptime_s()
        payload: Dict[str, Any] = {
            "uptime_s": round(uptime_s, 3),
            "counters": counters,
            "jobs_per_second": round(counters["jobs_completed"] / uptime_s, 3),
            "jobs_finished_per_second": round(counters["jobs_finished"] / uptime_s, 3),
            "queue_wait": self.queue_wait.snapshot(),
            "job_run": self.job_run.snapshot(),
            "fusion_window": self.fusion_window_ms.snapshot(),
            "endpoints": endpoints,
        }
        if queue_depth is not None:
            payload["queue_depth"] = queue_depth
        if inflight is not None:
            payload["inflight"] = inflight
        if extra:
            payload.update(extra)
        return payload

    def prometheus_text(
        self, queue_depth: Optional[int] = None, inflight: Optional[int] = None
    ) -> str:
        """The cluster-wide exposition in Prometheus text format.

        Point-in-time gauges (uptime, and queue depth / inflight when
        the caller supplies them) are refreshed just before rendering;
        the output federates this instance's registry, the process-global
        registry and every shard's latest snapshot (see
        :meth:`federated_registry`).
        """
        self._uptime_gauge.set(self.uptime_s())
        if queue_depth is not None:
            self.registry.gauge("repro_server_queue_depth", "Jobs waiting in the queue.").set(
                queue_depth
            )
        if inflight is not None:
            self.registry.gauge("repro_server_inflight_jobs", "Jobs currently executing.").set(
                inflight
            )
        return render_prometheus(self.federated_registry())
