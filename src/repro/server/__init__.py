"""repro.server — the async solver server in front of the service layer.

PR 1 made the reproduction batchable (:mod:`repro.service`), PR 2 made
it fast (:mod:`repro.annealer`); this package makes it *servable*: a
long-running asyncio TCP server with a stable wire protocol, so many
clients can share one warm process (caches, prepared pipelines, a
bounded worker pool) instead of paying cold-start per invocation.

* :mod:`repro.server.protocol` — newline-delimited JSON frames: ops,
  priorities, response types, size limits,
* :mod:`repro.server.queue` — priority job queue with round-robin
  per-client fairness and bounded admission control (backpressure),
* :mod:`repro.server.workers` — worker pool draining the queue into
  :class:`~repro.service.frontend.ServiceFrontend`, coalescing
  duplicate in-flight requests by cache key,
* :mod:`repro.server.sharding` — :class:`ShardPool`, the multi-process
  worker tier: one shard process per core, jobs routed by canonical
  problem hash, zero-copy column handoff (see ``docs/server.md``),
* :mod:`repro.server.streaming` — fan-out of incremental anytime
  updates to subscribed clients while jobs run,
* :mod:`repro.server.metrics` — per-endpoint latency/throughput and
  job counters behind the ``stats`` request,
* :mod:`repro.server.app` — :class:`SolverServer` (connections,
  dispatch, graceful drain) and :func:`run_server_in_thread`,
* :mod:`repro.server.client` — :class:`SolverClient`, the blocking
  Python client,
* :mod:`repro.server.readiness` — :func:`wait_for_server`, the
  poll-until-ping readiness probe shared by CI and the test fixtures.

Quick start::

    from repro.server import ServerConfig, SolverClient, run_server_in_thread

    handle = run_server_in_thread(ServerConfig(port=0, workers=2))
    with SolverClient(port=handle.port) as client:
        result = client.solve({"queries": 8, "plans": 2, "seed": 1},
                              solver="CLIMB", budget_ms=100.0)
        print(result.winner, result.best_cost)
    handle.stop()

Or from a shell: ``repro-mqo serve`` / ``repro-mqo submit``.
"""

from repro.server.app import ServerConfig, ServerHandle, SolverServer, run_server_in_thread
# NOTE: repro.server.readiness is deliberately NOT imported here: it is
# run as `python -m repro.server.readiness` (the CI readiness poll), and
# importing it from the package __init__ would trigger Python's
# found-in-sys.modules RuntimeWarning on every such invocation.  Import
# it directly: `from repro.server.readiness import wait_for_server`.
from repro.server.client import SolverClient
from repro.server.metrics import EndpointStats, LatencyStats, ServerMetrics
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PRIORITIES,
    PROTOCOL_VERSION,
    REQUEST_OPS,
    decode_frame,
    encode_frame,
)
from repro.server.queue import FairScheduler, JobQueue, ServerJob
from repro.server.sharding import ShardPool, default_shard_count, shard_for
from repro.server.streaming import StreamBroker
from repro.server.workers import BasePool, WorkerPool

__all__ = [
    "ServerConfig",
    "SolverServer",
    "ServerHandle",
    "run_server_in_thread",
    "SolverClient",
    "ServerMetrics",
    "LatencyStats",
    "EndpointStats",
    "FairScheduler",
    "JobQueue",
    "ServerJob",
    "StreamBroker",
    "BasePool",
    "WorkerPool",
    "ShardPool",
    "shard_for",
    "default_shard_count",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "REQUEST_OPS",
    "PRIORITIES",
    "encode_frame",
    "decode_frame",
]
