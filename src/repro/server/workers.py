"""Worker pool: drain the job queue into the service frontend.

``num_workers`` asyncio tasks pull jobs off the :class:`JobQueue` and
run each through :meth:`ServiceFrontend.submit` on a thread-pool
executor, so the event loop stays responsive while solvers burn CPU.
Around every solve the worker installs an anytime-improvement observer
(:func:`~repro.baselines.anytime.observe_improvements`) that forwards
incumbent improvements — including those made on portfolio member
threads — back to the event loop, where the
:class:`~repro.server.streaming.StreamBroker` fans them out to
subscribed clients.

Duplicate in-flight requests are **coalesced**: a job whose coalesce key
(request cache key + exact problem token, the same identity the batch
executor dedupes on) matches a queued-or-running job is not enqueued at
all; it is parked as a *follower* of that representative and, on
completion, receives an echo of the representative's result marked
``from_cache`` — four clients asking for the same expensive solve cost
the server one execution.

Batching note: jobs are executed one request per executor slot rather
than being re-grouped through :meth:`ServiceFrontend.solve_batch`.
Batch grouping would share one observer context across many jobs, which
would make streamed improvements unattributable to a job; concurrency
comes from the worker count instead, and cross-job reuse (result cache,
prepared-pipeline cache, coalescing) is preserved.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List

from repro.baselines.anytime import observe_improvements
from repro.exceptions import AdmissionError
from repro.server.metrics import ServerMetrics
from repro.server.queue import JobQueue, ServerJob
from repro.server.streaming import StreamBroker
from repro.service.frontend import ServiceFrontend
from repro.service.jobs import SolveResult, dedupe_key, echo_result_for_duplicate

__all__ = ["BasePool", "WorkerPool"]


def _result_payload(job: ServerJob) -> Dict[str, object]:
    """The broker payload carrying a job's final result."""
    assert job.result is not None
    return {
        "type": "result",
        "job_id": job.job_id,
        "result": job.result.to_dict(),
    }


class BasePool:
    """Shared admission, coalescing and completion bookkeeping.

    The server can execute jobs on two tiers — executor threads
    (:class:`WorkerPool`) or shard processes
    (:class:`~repro.server.sharding.ShardPool`) — but admission control,
    in-flight coalescing, follower echoing and completion accounting are
    tier-independent: they live here, run only on the event-loop thread,
    and the tiers plug in their execution machinery around them.

    Parameters
    ----------
    queue:
        Source of admitted jobs; ``None`` popped from it signals drain.
    broker:
        Stream broker updates and final results are published through.
    metrics:
        Counter/latency sink.
    coalesce:
        Fold duplicate in-flight requests onto one execution (default).
    """

    def __init__(
        self,
        queue: JobQueue,
        broker: StreamBroker,
        metrics: ServerMetrics,
        coalesce: bool = True,
    ) -> None:
        self.queue = queue
        self.broker = broker
        self.metrics = metrics
        self.coalesce = coalesce
        self._tasks: List["asyncio.Task[None]"] = []
        self._inflight_by_key: Dict[str, ServerJob] = {}
        self._followers: Dict[str, List[ServerJob]] = {}

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle surface shared by the tiers
    # ------------------------------------------------------------------ #
    @property
    def active(self) -> int:
        """Number of jobs currently executing (tier-specific)."""
        raise NotImplementedError

    def pending_jobs(self) -> int:
        """Queued plus executing jobs (drain waits for this to hit zero)."""
        return self.queue.depth + self.active

    def start(self) -> None:
        """Spawn the tier's tasks on the running event loop."""
        raise NotImplementedError

    async def join(self) -> None:
        """Wait for every pool task to exit (requires ``queue.drain()`` first)."""
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    def cancel_tasks(self) -> None:
        """Cancel the pool's event-loop tasks (drain timed out / hard stop)."""
        for task in self._tasks:
            task.cancel()

    def shutdown_executor(self) -> None:
        """Tear down tier-specific execution resources (after :meth:`join`)."""

    def extra_stats(self) -> Dict[str, object]:
        """Tier-specific additions to the ``stats`` snapshot (may be empty)."""
        return {}

    def health(self) -> Dict[str, object]:
        """Structured liveness state served by the ``health`` protocol op.

        The thread tier is in-process — its workers cannot die without
        taking the server with them — so the verdict is simply ``ok``
        or ``draining``.  :class:`~repro.server.sharding.ShardPool`
        overrides this with real per-shard state.
        """
        return {
            "verdict": "draining" if self.queue.draining else "ok",
            "tier": "threads",
            "active": self.active,
            "queue_depth": self.queue.depth,
            "draining": self.queue.draining,
        }

    def refresh_gauges(self) -> None:
        """Refresh tier-specific gauges before a metrics render (no-op here)."""

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    @staticmethod
    def coalesce_key(job: ServerJob) -> str:
        """Duplicate-detection identity of a job (shared with the batch
        executor's dedupe via :func:`repro.service.jobs.dedupe_key`)."""
        return dedupe_key(job.request)

    def admit(self, job: ServerJob) -> str:
        """Queue ``job``, or coalesce it onto an in-flight duplicate.

        Returns ``"queued"`` or ``"coalesced"``.  Raises
        :class:`~repro.exceptions.AdmissionError` when the queue refuses
        the job; the caller turns that into a backpressure error frame.
        Coalesced followers are bounded too: they are rejected while the
        server drains, and each representative accepts at most the
        queue's capacity in followers — a duplicate storm cannot grow
        server state without limit.
        """
        job.coalesce_key = self.coalesce_key(job)
        if self.coalesce:
            representative = self._inflight_by_key.get(job.coalesce_key)
            if representative is not None:
                if self.queue.draining:
                    raise AdmissionError(
                        "server is draining; no new jobs accepted", code="draining"
                    )
                followers = self._followers.setdefault(representative.job_id, [])
                if len(followers) >= self.queue.capacity:
                    raise AdmissionError(
                        f"job {representative.job_id} already has {len(followers)} "
                        "coalesced duplicates; retry later",
                        code="queue_full",
                    )
                job.coalesced_with = representative.job_id
                followers.append(job)
                # An urgent duplicate must not wait behind a lazy queued
                # representative: the representative inherits the urgency.
                if job.priority < representative.priority:
                    self.queue.promote(representative, job.priority)
                self.metrics.increment("jobs_submitted")
                self.metrics.increment("jobs_coalesced")
                return "coalesced"
        self.queue.push(job)  # may raise AdmissionError
        self._inflight_by_key[job.coalesce_key] = job
        self.metrics.increment("jobs_submitted")
        return "queued"

    # ------------------------------------------------------------------ #
    # Completion
    # ------------------------------------------------------------------ #
    def _finish(self, job: ServerJob, result: SolveResult) -> None:
        """Publish a finished job's result to it and all its followers."""
        job.result = result
        job.finished_at = time.monotonic()
        self.metrics.observe_job(
            queue_wait_ms=job.queue_wait_ms(),
            run_ms=job.run_time_ms(),
            failed=not result.ok,
        )
        self._inflight_by_key.pop(job.coalesce_key, None)
        followers = self._followers.pop(job.job_id, [])
        self.broker.close(job.job_id, _result_payload(job))
        for follower in followers:
            follower.result = echo_result_for_duplicate(result, follower.request)
            # A follower admitted after its representative started never
            # waited past its own admission; clamp so queue-wait samples
            # stay non-negative.
            if follower.started_at is None:
                follower.started_at = max(job.started_at or follower.enqueued_at,
                                          follower.enqueued_at)
            follower.finished_at = time.monotonic()
            self.metrics.observe_job(queue_wait_ms=follower.queue_wait_ms(), run_ms=0.0,
                                     failed=not follower.result.ok)
            self.broker.close(follower.job_id, _result_payload(follower))


class WorkerPool(BasePool):
    """Asyncio workers that execute queued jobs on executor threads.

    Parameters
    ----------
    frontend:
        The service facade jobs are executed through (cache-aware).
    queue / broker / metrics / coalesce:
        See :class:`BasePool`.
    num_workers:
        Number of concurrent jobs (asyncio tasks *and* executor threads).
    """

    def __init__(
        self,
        frontend: ServiceFrontend,
        queue: JobQueue,
        broker: StreamBroker,
        metrics: ServerMetrics,
        num_workers: int = 2,
        coalesce: bool = True,
    ) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        super().__init__(queue=queue, broker=broker, metrics=metrics, coalesce=coalesce)
        self.frontend = frontend
        self.num_workers = num_workers
        self._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="repro-server-worker"
        )
        self._active = 0

    @property
    def active(self) -> int:
        """Number of jobs currently executing."""
        return self._active

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the worker tasks on the running event loop."""
        if self._tasks:
            raise RuntimeError("worker pool already started")
        for index in range(self.num_workers):
            task = asyncio.get_running_loop().create_task(
                self._worker(), name=f"repro-server-worker-{index}"
            )
            self._tasks.append(task)

    def shutdown_executor(self) -> None:
        """Tear down the thread pool (after :meth:`join`)."""
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def _worker(self) -> None:
        """One worker task: pop, execute, publish — until drained."""
        while True:
            job = await self.queue.get()
            if job is None:
                return
            self._active += 1
            try:
                await self._run_job(job)
            finally:
                self._active -= 1

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    async def _run_job(self, job: ServerJob) -> None:
        """Execute one job on the executor, streaming improvements."""
        loop = asyncio.get_running_loop()
        job.started_at = time.monotonic()

        def forward_improvement(solver_name: str, _elapsed_ms: float, cost: float) -> None:
            # Runs on the solver thread; elapsed is re-measured against the
            # job's start so updates of racing members share one time axis.
            elapsed_ms = (time.monotonic() - job.started_at) * 1000.0
            try:
                loop.call_soon_threadsafe(
                    self.broker.publish_improvement, job.job_id, solver_name, elapsed_ms, cost
                )
            except RuntimeError:  # loop already closed mid-shutdown
                pass

        def execute() -> SolveResult:
            with observe_improvements(forward_improvement):
                return self.frontend.submit(job.request)

        try:
            result = await loop.run_in_executor(self._executor, execute)
        except Exception as exc:  # noqa: BLE001 — frontend.submit already captures
            # solver errors; this guards the executor/serialisation path.
            result = SolveResult.from_error(job.request, f"{type(exc).__name__}: {exc}")
        self._finish(job, result)
