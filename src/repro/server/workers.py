"""Worker pool: drain the job queue into the service frontend.

``num_workers`` asyncio tasks pull jobs off the :class:`JobQueue` and
run each through :meth:`ServiceFrontend.submit` on a thread-pool
executor, so the event loop stays responsive while solvers burn CPU.
Around every solve the worker installs an anytime-improvement observer
(:func:`~repro.baselines.anytime.observe_improvements`) that forwards
incumbent improvements — including those made on portfolio member
threads — back to the event loop, where the
:class:`~repro.server.streaming.StreamBroker` fans them out to
subscribed clients.

Duplicate in-flight requests are **coalesced**: a job whose coalesce key
(request cache key + exact problem token, the same identity the batch
executor dedupes on) matches a queued-or-running job is not enqueued at
all; it is parked as a *follower* of that representative and, on
completion, receives an echo of the representative's result marked
``from_cache`` — four clients asking for the same expensive solve cost
the server one execution.

Batching note: jobs are executed one request per executor slot rather
than being re-grouped through :meth:`ServiceFrontend.solve_batch`.
Batch grouping would share one observer context across many jobs, which
would make streamed improvements unattributable to a job; concurrency
comes from the worker count instead, and cross-job reuse (result cache,
prepared-pipeline cache, coalescing) is preserved.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List

from repro.baselines.anytime import observe_improvements
from repro.core.decomposition import observe_decomposition_progress
from repro.exceptions import AdmissionError
from repro.obs.trace import get_tracer
from repro.server.metrics import ServerMetrics
from repro.server.queue import JobQueue, ServerJob
from repro.server.streaming import StreamBroker
from repro.service.frontend import ServiceFrontend
from repro.service.jobs import SolveResult, dedupe_key, echo_result_for_duplicate

__all__ = ["BasePool", "WorkerPool", "FusionPool"]


def _result_payload(job: ServerJob) -> Dict[str, object]:
    """The broker payload carrying a job's final result."""
    assert job.result is not None
    return {
        "type": "result",
        "job_id": job.job_id,
        "result": job.result.to_dict(),
    }


class BasePool:
    """Shared admission, coalescing and completion bookkeeping.

    The server can execute jobs on two tiers — executor threads
    (:class:`WorkerPool`) or shard processes
    (:class:`~repro.server.sharding.ShardPool`) — but admission control,
    in-flight coalescing, follower echoing and completion accounting are
    tier-independent: they live here, run only on the event-loop thread,
    and the tiers plug in their execution machinery around them.

    Parameters
    ----------
    queue:
        Source of admitted jobs; ``None`` popped from it signals drain.
    broker:
        Stream broker updates and final results are published through.
    metrics:
        Counter/latency sink.
    coalesce:
        Fold duplicate in-flight requests onto one execution (default).
    """

    def __init__(
        self,
        queue: JobQueue,
        broker: StreamBroker,
        metrics: ServerMetrics,
        coalesce: bool = True,
    ) -> None:
        self.queue = queue
        self.broker = broker
        self.metrics = metrics
        self.coalesce = coalesce
        self._tasks: List["asyncio.Task[None]"] = []
        self._inflight_by_key: Dict[str, ServerJob] = {}
        self._followers: Dict[str, List[ServerJob]] = {}

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle surface shared by the tiers
    # ------------------------------------------------------------------ #
    @property
    def active(self) -> int:
        """Number of jobs currently executing (tier-specific)."""
        raise NotImplementedError

    def pending_jobs(self) -> int:
        """Queued plus executing jobs (drain waits for this to hit zero)."""
        return self.queue.depth + self.active

    def start(self) -> None:
        """Spawn the tier's tasks on the running event loop."""
        raise NotImplementedError

    async def join(self) -> None:
        """Wait for every pool task to exit (requires ``queue.drain()`` first)."""
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    def cancel_tasks(self) -> None:
        """Cancel the pool's event-loop tasks (drain timed out / hard stop)."""
        for task in self._tasks:
            task.cancel()

    def shutdown_executor(self) -> None:
        """Tear down tier-specific execution resources (after :meth:`join`)."""

    def extra_stats(self) -> Dict[str, object]:
        """Tier-specific additions to the ``stats`` snapshot (may be empty)."""
        return {}

    def health(self) -> Dict[str, object]:
        """Structured liveness state served by the ``health`` protocol op.

        The thread tier is in-process — its workers cannot die without
        taking the server with them — so the verdict is simply ``ok``
        or ``draining``.  :class:`~repro.server.sharding.ShardPool`
        overrides this with real per-shard state.
        """
        return {
            "verdict": "draining" if self.queue.draining else "ok",
            "tier": "threads",
            "active": self.active,
            "queue_depth": self.queue.depth,
            "draining": self.queue.draining,
        }

    def refresh_gauges(self) -> None:
        """Refresh tier-specific gauges before a metrics render (no-op here)."""

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    @staticmethod
    def coalesce_key(job: ServerJob) -> str:
        """Duplicate-detection identity of a job (shared with the batch
        executor's dedupe via :func:`repro.service.jobs.dedupe_key`)."""
        return dedupe_key(job.request)

    def admit(self, job: ServerJob) -> str:
        """Queue ``job``, or coalesce it onto an in-flight duplicate.

        Returns ``"queued"`` or ``"coalesced"``.  Raises
        :class:`~repro.exceptions.AdmissionError` when the queue refuses
        the job; the caller turns that into a backpressure error frame.
        Coalesced followers are bounded too: they are rejected while the
        server drains, and each representative accepts at most the
        queue's capacity in followers — a duplicate storm cannot grow
        server state without limit.
        """
        job.coalesce_key = self.coalesce_key(job)
        if self.coalesce:
            representative = self._inflight_by_key.get(job.coalesce_key)
            if representative is not None:
                if self.queue.draining:
                    raise AdmissionError(
                        "server is draining; no new jobs accepted", code="draining"
                    )
                followers = self._followers.setdefault(representative.job_id, [])
                if len(followers) >= self.queue.capacity:
                    raise AdmissionError(
                        f"job {representative.job_id} already has {len(followers)} "
                        "coalesced duplicates; retry later",
                        code="queue_full",
                    )
                job.coalesced_with = representative.job_id
                followers.append(job)
                # An urgent duplicate must not wait behind a lazy queued
                # representative: the representative inherits the urgency.
                if job.priority < representative.priority:
                    self.queue.promote(representative, job.priority)
                self.metrics.increment("jobs_submitted")
                self.metrics.increment("jobs_coalesced")
                return "coalesced"
        self.queue.push(job)  # may raise AdmissionError
        self._inflight_by_key[job.coalesce_key] = job
        self.metrics.increment("jobs_submitted")
        return "queued"

    # ------------------------------------------------------------------ #
    # Completion
    # ------------------------------------------------------------------ #
    def _finish(self, job: ServerJob, result: SolveResult) -> None:
        """Publish a finished job's result to it and all its followers."""
        job.result = result
        job.finished_at = time.monotonic()
        self.metrics.observe_job(
            queue_wait_ms=job.queue_wait_ms(),
            run_ms=job.run_time_ms(),
            failed=not result.ok,
        )
        self._inflight_by_key.pop(job.coalesce_key, None)
        followers = self._followers.pop(job.job_id, [])
        self.broker.close(job.job_id, _result_payload(job))
        for follower in followers:
            follower.result = echo_result_for_duplicate(result, follower.request)
            # A follower admitted after its representative started never
            # waited past its own admission; clamp so queue-wait samples
            # stay non-negative.
            if follower.started_at is None:
                follower.started_at = max(job.started_at or follower.enqueued_at,
                                          follower.enqueued_at)
            follower.finished_at = time.monotonic()
            self.metrics.observe_job(queue_wait_ms=follower.queue_wait_ms(), run_ms=0.0,
                                     failed=not follower.result.ok)
            self.broker.close(follower.job_id, _result_payload(follower))


class WorkerPool(BasePool):
    """Asyncio workers that execute queued jobs on executor threads.

    Parameters
    ----------
    frontend:
        The service facade jobs are executed through (cache-aware).
    queue / broker / metrics / coalesce:
        See :class:`BasePool`.
    num_workers:
        Number of concurrent jobs (asyncio tasks *and* executor threads).
    """

    def __init__(
        self,
        frontend: ServiceFrontend,
        queue: JobQueue,
        broker: StreamBroker,
        metrics: ServerMetrics,
        num_workers: int = 2,
        coalesce: bool = True,
    ) -> None:
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        super().__init__(queue=queue, broker=broker, metrics=metrics, coalesce=coalesce)
        self.frontend = frontend
        self.num_workers = num_workers
        self._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="repro-server-worker"
        )
        self._active = 0

    @property
    def active(self) -> int:
        """Number of jobs currently executing."""
        return self._active

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the worker tasks on the running event loop."""
        if self._tasks:
            raise RuntimeError("worker pool already started")
        for index in range(self.num_workers):
            task = asyncio.get_running_loop().create_task(
                self._worker(), name=f"repro-server-worker-{index}"
            )
            self._tasks.append(task)

    def shutdown_executor(self) -> None:
        """Tear down the thread pool (after :meth:`join`)."""
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def _worker(self) -> None:
        """One worker task: pop, execute, publish — until drained."""
        while True:
            job = await self.queue.get()
            if job is None:
                return
            self._active += 1
            try:
                await self._run_job(job)
            finally:
                self._active -= 1

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    async def _run_job(self, job: ServerJob) -> None:
        """Execute one job on the executor, streaming improvements."""
        loop = asyncio.get_running_loop()
        job.started_at = time.monotonic()

        def forward_improvement(solver_name: str, _elapsed_ms: float, cost: float) -> None:
            # Runs on the solver thread; elapsed is re-measured against the
            # job's start so updates of racing members share one time axis.
            elapsed_ms = (time.monotonic() - job.started_at) * 1000.0
            try:
                loop.call_soon_threadsafe(
                    self.broker.publish_improvement, job.job_id, solver_name, elapsed_ms, cost
                )
            except RuntimeError:  # loop already closed mid-shutdown
                pass

        def forward_progress(solver_name: str, completed: int, total: int) -> None:
            # Decomposed solves report cluster completions; forwarded as
            # "progress" frames (old clients ignore the unknown type).
            try:
                loop.call_soon_threadsafe(
                    self.broker.publish_progress, job.job_id, solver_name, completed, total
                )
            except RuntimeError:  # loop already closed mid-shutdown
                pass

        def execute() -> SolveResult:
            with observe_improvements(forward_improvement):
                with observe_decomposition_progress(forward_progress):
                    return self.frontend.submit(job.request)

        try:
            result = await loop.run_in_executor(self._executor, execute)
        except Exception as exc:  # noqa: BLE001 — frontend.submit already captures
            # solver errors; this guards the executor/serialisation path.
            result = SolveResult.from_error(job.request, f"{type(exc).__name__}: {exc}")
        self._finish(job, result)


class FusionPool(WorkerPool):
    """Worker pool with cross-request anneal fusion.

    Enabled by ``ServerConfig(fusion_window_ms=...)``.  Jobs whose
    solver can join a fused anneal (the annealing-backed solvers in
    ``fusion_solvers``, ``"QA"`` by default) are *staged* instead of
    executed immediately: the first staged job opens an **admission
    window**; every fusable job popped within ``fusion_window_ms`` joins
    it, and when the window expires — or fills up to
    ``fusion_max_jobs`` — the whole batch executes as one fused
    block-diagonal anneal via :meth:`ServiceFrontend.submit_fused`.
    Everything else (portfolio requests, classical solvers) runs on the
    inherited solo path concurrently with open windows.

    Scatter: fused jobs produce no live improvement callbacks (the
    annealer reports its trajectory on the device-time axis after the
    fact — exactly like a solo QA job), so after the window completes
    each job's monotone trajectory is published to its stream
    subscribers before the final result closes the channel.  Two clients
    sharing one window each receive their own stream.

    Observability: every window records
    ``repro_server_fusion_batch_size`` (gauge, last window),
    ``repro_server_fusion_windows_total`` / ``repro_server_fusion_jobs_total``
    (counters) and ``repro_server_fusion_window_ms`` (histogram —
    compare against ``repro_server_job_run_ms`` for solo wall-clock),
    plus ``server.fusion.window`` / ``server.fusion.scatter`` spans.
    """

    def __init__(
        self,
        frontend: ServiceFrontend,
        queue: JobQueue,
        broker: StreamBroker,
        metrics: ServerMetrics,
        num_workers: int = 2,
        coalesce: bool = True,
        fusion_window_ms: float = 2.0,
        fusion_max_jobs: int = 8,
        fusion_solvers: tuple = ("QA",),
    ) -> None:
        if fusion_window_ms <= 0:
            raise ValueError(f"fusion_window_ms must be positive, got {fusion_window_ms}")
        if fusion_max_jobs <= 1:
            raise ValueError(f"fusion_max_jobs must be at least 2, got {fusion_max_jobs}")
        super().__init__(
            frontend=frontend,
            queue=queue,
            broker=broker,
            metrics=metrics,
            num_workers=num_workers,
            coalesce=coalesce,
        )
        self.fusion_window_ms = fusion_window_ms
        self.fusion_max_jobs = fusion_max_jobs
        self.fusion_solvers = tuple(fusion_solvers)
        self._staged: List[ServerJob] = []
        self._fused_running = 0
        self._window_running = False
        self._window_timer: "asyncio.Task[None] | None" = None
        self._aux_tasks: set = set()

    @property
    def active(self) -> int:
        """Executing jobs plus jobs staged in or running through a window."""
        return self._active + len(self._staged) + self._fused_running

    def extra_stats(self) -> Dict[str, object]:
        """Fusion-window state for the ``stats`` snapshot."""
        return {
            "fusion": {
                "window_ms": self.fusion_window_ms,
                "max_jobs": self.fusion_max_jobs,
                "staged": len(self._staged),
                "windows": self.metrics.counter_value("fusion_windows"),
                "jobs_fused": self.metrics.counter_value("fusion_jobs"),
            }
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def join(self) -> None:
        """Wait for workers, open windows and the window timer to finish."""
        await super().join()
        while self._aux_tasks:
            await asyncio.gather(*list(self._aux_tasks), return_exceptions=True)

    def cancel_tasks(self) -> None:
        """Cancel worker tasks plus any window timer/flush tasks."""
        super().cancel_tasks()
        for task in list(self._aux_tasks):
            task.cancel()

    def _spawn_aux(self, coro, name: str) -> "asyncio.Task[None]":
        """Track a timer/flush task so join/cancel cover it."""
        task = asyncio.get_running_loop().create_task(coro, name=name)
        self._aux_tasks.add(task)
        task.add_done_callback(self._aux_tasks.discard)
        return task

    # ------------------------------------------------------------------ #
    # Admission window
    # ------------------------------------------------------------------ #
    def _fusable(self, job: ServerJob) -> bool:
        """Whether a job may join a fused anneal window."""
        return job.request.solver in self.fusion_solvers

    async def _worker(self) -> None:
        """Pop jobs; stage fusable ones into the window, run the rest solo."""
        while True:
            job = await self.queue.get()
            if job is None:
                # Drain: whatever is staged right now is the last window.
                await self._flush_window()
                return
            if self._fusable(job):
                self._stage(job)
                continue
            self._active += 1
            try:
                await self._run_job(job)
            finally:
                self._active -= 1

    def _stage(self, job: ServerJob) -> None:
        """Add a job to the open admission window (opening one if needed)."""
        self._staged.append(job)
        if len(self._staged) >= self.fusion_max_jobs:
            self._spawn_aux(self._flush_window(), name="repro-server-fusion-flush")
        elif self._window_timer is None or self._window_timer.done():
            self._window_timer = self._spawn_aux(
                self._window_expiry(), name="repro-server-fusion-window"
            )

    async def _window_expiry(self) -> None:
        """Flush the window when the admission period ends."""
        await asyncio.sleep(self.fusion_window_ms / 1000.0)
        await self._flush_window()

    async def _flush_window(self) -> None:
        """Execute the staged jobs as one fused batch.

        At most one window executes at a time (continuous batching):
        while one runs, newly staged jobs keep accumulating, and the
        running window's completion flushes them immediately — so under
        load windows grow toward ``fusion_max_jobs`` instead of the
        timer shaving off many tiny batches, while an idle server still
        pays at most ``fusion_window_ms`` of added latency.
        """
        if self._window_running:
            return  # the running window's completion re-flushes
        jobs = self._staged[: self.fusion_max_jobs]
        del self._staged[: len(jobs)]
        # A job staged after this point belongs to a fresh window with its
        # own timer, so drop the handle before any await.  A timer still
        # sleeping (max-jobs or drain flush beat it) is cancelled so a
        # graceful drain does not wait out its full admission window.
        timer, self._window_timer = self._window_timer, None
        if timer is not None and timer is not asyncio.current_task() and not timer.done():
            timer.cancel()
        if not jobs:
            return
        self._window_running = True
        try:
            await self._run_window(jobs)
        finally:
            self._window_running = False
        if self._staged:
            await self._flush_window()

    # ------------------------------------------------------------------ #
    # Fused execution
    # ------------------------------------------------------------------ #
    async def _run_window(self, jobs: List[ServerJob]) -> None:
        """Run one fused batch on the executor and scatter the results."""
        loop = asyncio.get_running_loop()
        self._fused_running += len(jobs)
        started = time.monotonic()
        for job in jobs:
            job.started_at = started
        requests = [job.request for job in jobs]
        tracer = get_tracer()
        try:
            with tracer.span(
                "server.fusion.window", {"batch_size": len(jobs)}
            ):
                results = await loop.run_in_executor(
                    self._executor, lambda: self.frontend.submit_fused(requests)
                )
        except Exception as exc:  # noqa: BLE001 — submit_fused captures solver
            # errors per request; this guards the executor/window path.
            results = [
                SolveResult.from_error(request, f"{type(exc).__name__}: {exc}")
                for request in requests
            ]
        window_ms = (time.monotonic() - started) * 1000.0
        self.metrics.observe_fusion_window(batch_size=len(jobs), window_ms=window_ms)
        try:
            with tracer.span("server.fusion.scatter", {"batch_size": len(jobs)}):
                for job, result in zip(jobs, results):
                    self._scatter(job, result)
        finally:
            self._fused_running -= len(jobs)

    def _scatter(self, job: ServerJob, result: SolveResult) -> None:
        """Publish one fused job's stream updates and final result."""
        # Solo QA jobs stream no live improvements (the trajectory exists
        # only after decoding), so parity for fused jobs means publishing
        # the monotone trajectory now, before the result closes the channel.
        if job.stream and result.ok:
            for time_ms, cost in result.trajectory:
                self.broker.publish_improvement(
                    job.job_id, result.winner or job.request.solver, time_ms, cost
                )
        self._finish(job, result)
