"""The asyncio solver server: connections, dispatch, graceful drain.

:class:`SolverServer` listens on TCP, speaks the newline-delimited JSON
protocol of :mod:`repro.server.protocol`, and drives the subsystem
stack: admission control and per-client fairness in
:class:`~repro.server.queue.JobQueue`, execution and in-flight
coalescing in :class:`~repro.server.workers.WorkerPool`, live anytime
updates through :class:`~repro.server.streaming.StreamBroker`, and
per-endpoint counters in :class:`~repro.server.metrics.ServerMetrics`.

Each connection gets a single outbound FIFO drained by one writer task,
so replies, streamed updates and results never interleave mid-frame and
always arrive in publish order.  Handlers themselves are synchronous —
they only validate, mutate loop-local state and enqueue outbound frames
— which makes the dispatch path free of await-reordering hazards.

Shutdown is a *graceful drain*: the queue stops admitting, already
admitted jobs run to completion (bounded by ``drain_timeout_s``),
results are flushed to their clients, then sockets close.

:func:`run_server_in_thread` hosts a server on a background thread for
tests, benchmarks and notebook use.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set

from repro.exceptions import AdmissionError, ProtocolError, ReproError, ServerError
from repro.obs.events import get_event_log, record_event
from repro.server import protocol
from repro.server.metrics import ServerMetrics
from repro.server.queue import JobQueue, ServerJob
from repro.server.streaming import StreamBroker
from repro.server.workers import FusionPool, WorkerPool
from repro.service.frontend import ServiceFrontend
from repro.service.jobs import request_from_spec

__all__ = ["ServerConfig", "SolverServer", "ServerHandle", "run_server_in_thread"]


@dataclass
class ServerConfig:
    """Tunables of one :class:`SolverServer` instance.

    Attributes
    ----------
    host / port:
        Bind address; port 0 lets the OS pick (read it back from
        :attr:`SolverServer.port` after start).
    workers:
        Concurrent jobs (asyncio worker tasks and executor threads).
        Ignored when ``shards`` selects the multi-process tier.
    shards:
        ``0`` (default) executes jobs on the in-process thread tier
        (:class:`~repro.server.workers.WorkerPool`); a positive count
        runs that many shard *processes*
        (:class:`~repro.server.sharding.ShardPool`), routed by canonical
        problem hash; ``-1`` means one shard per CPU core.
    shard_retry:
        Whether a shard death mid-job retries the job once on a live
        shard (default) instead of failing it immediately.
    shard_heartbeat_s:
        Cadence of each shard's metrics-snapshot heartbeat (sharded
        tier only); also feeds the ``health`` op's staleness verdict.
    queue_capacity / max_jobs_per_client:
        Admission-control bounds of the job queue.
    default_budget_ms / max_budget_ms:
        Budget applied to specs without one, and an optional hard cap —
        requests beyond the cap are rejected at admission.
    max_frame_bytes:
        Wire-frame size limit (both directions).
    drain_timeout_s:
        How long a graceful shutdown waits for in-flight jobs.
    completed_jobs_kept:
        Soft bound on finished jobs kept queryable via ``wait``.  Beyond
        it, finished jobs older than ``completed_job_retention_s`` are
        forgotten; jobs whose results may still be collected (recently
        finished) survive until the hard bound of four times this value.
    completed_job_retention_s:
        Minimum age before a finished job may be pruned under the soft
        bound (protects pipelined clients that wait() after submitting).
    coalesce:
        Fold duplicate in-flight requests onto one execution.
    fusion_window_ms:
        ``0`` (default) disables cross-request anneal fusion; a positive
        value selects :class:`~repro.server.workers.FusionPool` on the
        thread tier: annealing-backed jobs popped within this admission
        window are executed as **one** fused block-diagonal anneal (see
        ``docs/fusion.md``).  Ignored on the sharded tier.
    fusion_max_jobs:
        Jobs per fusion window before it flushes early.
    allow_shutdown:
        Whether clients may stop the server with the ``shutdown`` op.
    server_name:
        Identity string reported in the ``hello`` frame.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    shards: int = 0
    shard_retry: bool = True
    shard_heartbeat_s: float = 1.0
    queue_capacity: int = 128
    max_jobs_per_client: Optional[int] = None
    default_budget_ms: float = 1000.0
    max_budget_ms: Optional[float] = None
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    drain_timeout_s: float = 30.0
    completed_jobs_kept: int = 1024
    completed_job_retention_s: float = 300.0
    coalesce: bool = True
    fusion_window_ms: float = 0.0
    fusion_max_jobs: int = 8
    allow_shutdown: bool = True
    server_name: str = "repro-mqo"


class _Connection:
    """Server-side connection state: identity plus an ordered outbound FIFO."""

    def __init__(self, writer: asyncio.StreamWriter, client_id: str, max_frame_bytes: int) -> None:
        self.writer = writer
        self.client_id = client_id
        self.max_frame_bytes = max_frame_bytes
        self.closed = False
        self._outbound: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self._writer_task = asyncio.get_running_loop().create_task(
            self._drain_outbound(), name=f"repro-server-writer-{client_id}"
        )

    def send_nowait(self, frame: Dict[str, Any]) -> None:
        """Queue one frame for delivery (dropped silently once closed)."""
        if self.closed:
            return
        try:
            data = protocol.encode_frame(frame, self.max_frame_bytes)
        except ProtocolError as exc:
            data = protocol.encode_frame(
                protocol.error_frame(
                    str(frame.get("id", "")), "internal", f"unserialisable frame: {exc}"
                )
            )
        self._outbound.put_nowait(data)

    async def _drain_outbound(self) -> None:
        """Single writer: preserves frame order and serialises socket writes."""
        try:
            while True:
                data = await self._outbound.get()
                if data is None:
                    return
                self.writer.write(data)
                await self.writer.drain()
        except (ConnectionError, OSError):
            pass

    async def close(self) -> None:
        """Flush queued frames, stop the writer task and close the socket."""
        if self.closed:
            return
        self.closed = True
        self._outbound.put_nowait(None)
        try:
            await asyncio.wait_for(self._writer_task, timeout=5.0)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self._writer_task.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class SolverServer:
    """Async NDJSON-over-TCP front door of the MQO solver service.

    Parameters
    ----------
    config:
        Server tunables (defaults are test-friendly: loopback, ephemeral
        port, two workers).
    frontend:
        The :class:`ServiceFrontend` jobs execute through.  Inject one
        with a custom registry/cache to control the solver line-up (the
        end-to-end tests register scripted solvers this way).
    frontend_factory:
        Zero-argument frontend builder for the sharded tier
        (``config.shards != 0``): invoked once inside every shard
        process, so each shard owns private caches.  Must be picklable
        (module-level function or :func:`functools.partial`) — shard
        processes start via ``forkserver``/``spawn``.  When omitted,
        every shard builds a *default* :class:`ServiceFrontend`; a
        custom registry or cache line-up needs an explicit factory.
        The parent keeps its own instance for ``hello`` / ``stats``
        introspection and (sharded tier) as the accumulating result
        cache that gets checkpointed to disk.
    """

    def __init__(
        self,
        config: ServerConfig | None = None,
        frontend: ServiceFrontend | None = None,
        frontend_factory: Optional[Callable[[], ServiceFrontend]] = None,
    ) -> None:
        self.config = config or ServerConfig()
        if frontend is None and frontend_factory is not None:
            frontend = frontend_factory()
        self.frontend = frontend if frontend is not None else ServiceFrontend()
        self.metrics = ServerMetrics()
        self.queue = JobQueue(
            capacity=self.config.queue_capacity,
            max_per_client=self.config.max_jobs_per_client,
        )
        self.broker = StreamBroker(
            on_update_streamed=lambda count: self.metrics.increment("updates_streamed", count)
        )
        if self.config.shards != 0:
            # Imported lazily: multiprocessing machinery is only needed
            # when the sharded tier is actually selected.
            from repro.server.sharding import ShardPool

            if frontend_factory is None:
                # A frontend *instance* cannot cross the forkserver/spawn
                # process boundary (registries and executors rarely
                # pickle); shards fall back to default frontends.  Pass a
                # picklable factory to give shards a custom line-up.
                frontend_factory = ServiceFrontend
            self.pool: Any = ShardPool(
                frontend_factory=frontend_factory,
                queue=self.queue,
                broker=self.broker,
                metrics=self.metrics,
                num_shards=self.config.shards,
                coalesce=self.config.coalesce,
                retry_on_shard_death=self.config.shard_retry,
                result_cache=self.frontend.cache,
                heartbeat_interval_s=self.config.shard_heartbeat_s,
            )
        elif self.config.fusion_window_ms > 0:
            self.pool = FusionPool(
                frontend=self.frontend,
                queue=self.queue,
                broker=self.broker,
                metrics=self.metrics,
                num_workers=self.config.workers,
                coalesce=self.config.coalesce,
                fusion_window_ms=self.config.fusion_window_ms,
                fusion_max_jobs=self.config.fusion_max_jobs,
            )
        else:
            self.pool = WorkerPool(
                frontend=self.frontend,
                queue=self.queue,
                broker=self.broker,
                metrics=self.metrics,
                num_workers=self.config.workers,
                coalesce=self.config.coalesce,
            )
        self.host = self.config.host
        self.port = self.config.port
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: Set[_Connection] = set()
        self._jobs: Dict[str, ServerJob] = {}
        self._job_counter = 0
        self._connection_counter = 0
        self._stopping = False
        self._stopped: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listening socket and spawn the worker pool."""
        if self._server is not None:
            raise ServerError("server already started")
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_frame_bytes,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self.pool.start()
        record_event(
            "server_started", host=self.host, port=self.port, shards=self.config.shards
        )

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` (or a client ``shutdown``) completes."""
        if self._stopped is None:
            raise ServerError("server was never started")
        await self._stopped.wait()

    async def stop(self, drain: bool = True) -> None:
        """Stop the server; with ``drain`` (default) finish admitted jobs.

        The queue stops admitting immediately.  Worker tasks finish the
        backlog (bounded by ``drain_timeout_s``), results are flushed to
        their connections, then every socket closes and
        :meth:`wait_stopped` unblocks.
        """
        if self._stopped is None:
            raise ServerError("server was never started")
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        record_event("drain_begin", pending=self.pool.pending_jobs(), graceful=drain)
        self.queue.drain()
        if drain:
            try:
                await asyncio.wait_for(self.pool.join(), timeout=self.config.drain_timeout_s)
            except asyncio.TimeoutError:  # drain overran its budget; force it
                self.pool.cancel_tasks()
        else:
            self.pool.cancel_tasks()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for connection in list(self._connections):
            await connection.close()
        self.pool.shutdown_executor()
        record_event("drain_end", host=self.host, port=self.port)
        self._stopped.set()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Read frames off one client socket until EOF or a framing error."""
        self._connection_counter += 1
        connection = _Connection(
            writer, f"conn-{self._connection_counter}", self.config.max_frame_bytes
        )
        self._connections.add(connection)
        self.metrics.increment("connections_opened")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized line: framing is lost, drop the connection.
                    connection.send_nowait(
                        protocol.error_frame(
                            "", "protocol",
                            f"frame exceeds the {self.config.max_frame_bytes}-byte limit",
                        )
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                # Awaiting keeps per-connection request ordering while the
                # parse of a large problem frame runs off the event loop.
                await self._dispatch(connection, line)
        finally:
            self._connections.discard(connection)
            await connection.close()
            self.metrics.increment("connections_closed")

    #: Frames above this size are JSON-decoded on the executor — an 8 MB
    #: problem frame must not stall every connection's event-loop turn.
    _OFFLOAD_DECODE_BYTES = 64 * 1024

    async def _dispatch(self, connection: _Connection, line: bytes) -> None:
        """Decode, validate and route one request frame."""
        started = time.monotonic()
        op_label = "invalid"
        frame_id = ""
        error = False
        try:
            if len(line) > self._OFFLOAD_DECODE_BYTES:
                frame = await asyncio.get_running_loop().run_in_executor(
                    None,
                    lambda: protocol.decode_frame(line, self.config.max_frame_bytes),
                )
            else:
                frame = protocol.decode_frame(line, self.config.max_frame_bytes)
            raw_id = frame.get("id", "")
            if isinstance(raw_id, (str, int)) and not isinstance(raw_id, bool):
                frame_id = str(raw_id)
            request = protocol.parse_request(frame)
            op_label = request.op
            handler = getattr(self, f"_op_{request.op}")
            outcome = handler(connection, request)
            if asyncio.iscoroutine(outcome):
                await outcome
        except ProtocolError as exc:
            error = True
            connection.send_nowait(protocol.error_frame(frame_id, "protocol", str(exc)))
        except AdmissionError as exc:
            error = True
            connection.send_nowait(protocol.error_frame(frame_id, exc.code, str(exc)))
        except ReproError as exc:
            error = True
            connection.send_nowait(protocol.error_frame(frame_id, "bad_request", str(exc)))
        except Exception as exc:  # noqa: BLE001 — one bad request must not kill the server
            error = True
            connection.send_nowait(
                protocol.error_frame(frame_id, "internal", f"{type(exc).__name__}: {exc}")
            )
        finally:
            self.metrics.observe_request(
                op_label, (time.monotonic() - started) * 1000.0, error
            )

    # ------------------------------------------------------------------ #
    # Sinks
    # ------------------------------------------------------------------ #
    @staticmethod
    def _sink(connection: _Connection, request_id: str) -> Callable[[Dict[str, Any]], None]:
        """A broker sink that stamps this request's id onto each payload."""

        def sink(payload: Dict[str, Any]) -> None:
            frame = dict(payload)
            frame["id"] = request_id
            connection.send_nowait(frame)

        return sink

    @staticmethod
    def _updates_only(sink: Callable[[Dict[str, Any]], None]) -> Callable[[Dict[str, Any]], None]:
        """Filter a sink down to ``update`` payloads.

        Used when a coalesced follower listens on its representative's
        channel: the follower must stream the representative's updates
        but take its *final* result (with its own identity) from its own
        channel, so the representative's result payload is dropped here.
        """

        def filtered(payload: Dict[str, Any]) -> None:
            if payload.get("type") == "update":
                sink(payload)

        return filtered

    # ------------------------------------------------------------------ #
    # Job admission (shared by solve and submit)
    # ------------------------------------------------------------------ #
    async def _admit_job(self, connection: _Connection, request: protocol.Request) -> ServerJob:
        """Validate a solve/submit payload and admit the job.

        Spec parsing (problem deserialization or generation) can be
        megabytes of CPU work, so it runs on the default executor — one
        oversized request must not stall pings, streamed updates and
        other clients' admissions.  Everything after the parse is
        synchronous again, so admission, the coalesce check and sink
        registration stay atomic with respect to the worker tasks.
        """
        payload = request.payload
        spec = payload.get("spec")
        if not isinstance(spec, dict):
            raise ProtocolError(f"{request.op} needs an object 'spec' field")
        priority = protocol.parse_priority(payload.get("priority"))
        client_field = payload.get("client")
        if client_field is not None and not isinstance(client_field, str):
            raise ProtocolError("'client' must be a string when given")
        client_id = client_field or connection.client_id
        stream = bool(payload.get("stream", False))

        solve_request = await asyncio.get_running_loop().run_in_executor(
            None,
            lambda: request_from_spec(spec, default_budget_ms=self.config.default_budget_ms),
        )
        cap = self.config.max_budget_ms
        if cap is not None and solve_request.time_budget_ms > cap:
            raise AdmissionError(
                f"time budget {solve_request.time_budget_ms:.0f} ms exceeds the "
                f"server cap of {cap:.0f} ms",
                code="budget",
            )
        self._job_counter += 1
        job_id = f"sj-{self._job_counter}"
        if not solve_request.job_id:
            solve_request.job_id = job_id
        job = ServerJob(
            job_id=job_id,
            client_id=client_id,
            request=solve_request,
            priority=priority,
            stream=stream,
        )
        self._jobs[job_id] = job
        self._prune_jobs()
        self.broker.open(job_id)
        try:
            self.pool.admit(job)
        except AdmissionError:
            self.broker.discard(job_id)
            self._jobs.pop(job_id, None)
            self.metrics.increment("jobs_rejected")
            raise
        return job

    def _prune_jobs(self) -> None:
        """Forget finished jobs beyond the configured bounds.

        Soft bound (``completed_jobs_kept``): only finished jobs older
        than the retention window are dropped, so a pipelined client
        that submits and waits later still finds its results.  Hard
        bound (four times the soft bound): oldest finished jobs go
        regardless — memory stays bounded under any traffic.
        """
        excess = len(self._jobs) - self.config.completed_jobs_kept
        if excess <= 0:
            return
        now = time.monotonic()
        retention = self.config.completed_job_retention_s
        for job_id in list(self._jobs):
            if excess <= 0:
                return
            job = self._jobs[job_id]
            if (
                job.done
                and job.finished_at is not None
                and now - job.finished_at > retention
            ):
                del self._jobs[job_id]
                excess -= 1
        hard_excess = len(self._jobs) - 4 * self.config.completed_jobs_kept
        for job_id in list(self._jobs):
            if hard_excess <= 0:
                return
            if self._jobs[job_id].done:
                del self._jobs[job_id]
                hard_excess -= 1

    # ------------------------------------------------------------------ #
    # Operation handlers
    # ------------------------------------------------------------------ #
    def _op_hello(self, connection: _Connection, request: protocol.Request) -> None:
        """Report server identity, registered solvers and limits."""
        from repro import __version__

        connection.send_nowait(
            protocol.hello_frame(
                request.id,
                self.config.server_name,
                __version__,
                self.frontend.registry.names(),
                {
                    "max_frame_bytes": self.config.max_frame_bytes,
                    "queue_capacity": self.config.queue_capacity,
                    "max_jobs_per_client": self.config.max_jobs_per_client,
                    "default_budget_ms": self.config.default_budget_ms,
                    "max_budget_ms": self.config.max_budget_ms,
                    "workers": self.config.workers,
                    "shards": self.config.shards,
                    "fusion_window_ms": self.config.fusion_window_ms,
                },
            )
        )

    def _op_ping(self, connection: _Connection, request: protocol.Request) -> None:
        """Liveness probe."""
        connection.send_nowait(protocol.pong_frame(request.id))

    async def _op_solve(self, connection: _Connection, request: protocol.Request) -> None:
        """Admit a job and deliver its result (and updates) to this request."""
        job = await self._admit_job(connection, request)
        sink = self._sink(connection, request.id)
        # The final result always comes from the job's own channel so it
        # carries the job's own identity even when coalesced.
        self.broker.subscribe(job.job_id, sink, updates=False)
        if job.stream:
            stream_target = (
                job.coalesced_with
                if job.coalesced_with is not None and self.broker.is_open(job.coalesced_with)
                else job.job_id
            )
            self.broker.subscribe(stream_target, self._updates_only(sink), updates=True)
        connection.send_nowait(
            protocol.queued_frame(
                request.id, job.job_id, self.queue.depth, coalesced_with=job.coalesced_with
            )
        )

    async def _op_submit(self, connection: _Connection, request: protocol.Request) -> None:
        """Admit a job fire-and-forget; fetch the outcome via wait/subscribe."""
        job = await self._admit_job(connection, request)
        connection.send_nowait(
            protocol.queued_frame(
                request.id, job.job_id, self.queue.depth, coalesced_with=job.coalesced_with
            )
        )

    def _require_job(self, request: protocol.Request) -> ServerJob:
        """Resolve the ``job_id`` field of a wait/subscribe payload."""
        job_id = request.payload.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ProtocolError(f"{request.op} needs a string 'job_id' field")
        job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError(f"unknown job {job_id!r} (finished jobs are kept for a while)")
        return job

    def _op_wait(self, connection: _Connection, request: protocol.Request) -> None:
        """Deliver a job's final result, now or when it completes."""
        job = self._require_job(request)
        if job.result is not None:
            connection.send_nowait(
                protocol.result_frame(request.id, job.job_id, job.result.to_dict())
            )
            return
        self.broker.subscribe(job.job_id, self._sink(connection, request.id), updates=False)

    def _op_subscribe(self, connection: _Connection, request: protocol.Request) -> None:
        """Attach to a job's live update stream (plus its final result)."""
        job = self._require_job(request)
        connection.send_nowait(protocol.subscribed_frame(request.id, job.job_id, job.state))
        sink = self._sink(connection, request.id)
        if job.result is not None:
            connection.send_nowait(
                protocol.result_frame(request.id, job.job_id, job.result.to_dict())
            )
            return
        self.broker.subscribe(job.job_id, sink, updates=False)
        stream_target = (
            job.coalesced_with
            if job.coalesced_with is not None and self.broker.is_open(job.coalesced_with)
            else job.job_id
        )
        self.broker.subscribe(stream_target, self._updates_only(sink), updates=True)

    def _op_stats(self, connection: _Connection, request: protocol.Request) -> None:
        """Report the metrics snapshot plus live gauges."""
        extra: Dict[str, Any] = {
            "jobs_tracked": len(self._jobs),
            "draining": self.queue.draining,
            "stream_channels": len(self.broker),
        }
        extra.update(self.pool.extra_stats())
        if self.frontend.cache is not None:
            stats = self.frontend.cache.stats
            extra["result_cache"] = {
                "entries": len(self.frontend.cache),
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": round(stats.hit_rate, 4),
            }
        connection.send_nowait(
            protocol.stats_frame(
                request.id,
                self.metrics.snapshot(
                    queue_depth=self.queue.depth, inflight=self.pool.active, extra=extra
                ),
            )
        )

    def _op_metrics(self, connection: _Connection, request: protocol.Request) -> None:
        """Serve the cluster-wide Prometheus exposition.

        ``refresh_gauges`` runs first (on the event-loop thread, where
        pool state is owned) so per-shard gauges are point-in-time
        accurate; the render then federates the parent registries with
        every shard's latest heartbeat snapshot.
        """
        self.pool.refresh_gauges()
        connection.send_nowait(
            protocol.metrics_frame(
                request.id,
                self.metrics.prometheus_text(
                    queue_depth=self.queue.depth, inflight=self.pool.active
                ),
            )
        )

    def _op_health(self, connection: _Connection, request: protocol.Request) -> None:
        """Serve structured liveness state plus the recent event tail."""
        health = self.pool.health()
        health["uptime_s"] = round(self.metrics.uptime_s(), 3)
        health["events"] = get_event_log().tail(32)
        connection.send_nowait(protocol.health_frame(request.id, health))

    def _op_shutdown(self, connection: _Connection, request: protocol.Request) -> None:
        """Begin a graceful drain (when permitted by the config)."""
        if not self.config.allow_shutdown:
            raise ProtocolError("this server does not allow remote shutdown")
        drain = bool(request.payload.get("drain", True))
        connection.send_nowait(
            protocol.draining_frame(request.id, self.pool.pending_jobs())
        )
        assert self._loop is not None
        self._loop.create_task(self.stop(drain=drain))


@dataclass
class ServerHandle:
    """A server hosted on a background thread (tests, benchmarks, demos)."""

    server: SolverServer
    thread: threading.Thread
    _stop_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def host(self) -> str:
        """Bound host address."""
        return self.server.host

    @property
    def port(self) -> int:
        """Bound port (resolved when the config asked for port 0)."""
        return self.server.port

    def stop(self, timeout_s: float = 30.0) -> None:
        """Gracefully drain and stop the server, then join its thread."""
        with self._stop_lock:
            loop = self.server._loop  # noqa: SLF001 — the handle owns the server
            if self.thread.is_alive() and loop is not None and not loop.is_closed():
                try:
                    asyncio.run_coroutine_threadsafe(self.server.stop(), loop).result(timeout_s)
                except (RuntimeError, TimeoutError):
                    # Loop already gone or drain overran; joining below is
                    # still correct (the thread is a daemon either way).
                    pass
            self.thread.join(timeout_s)


def run_server_in_thread(
    config: ServerConfig | None = None,
    frontend: ServiceFrontend | None = None,
    ready_timeout_s: float = 10.0,
    frontend_factory: Optional[Callable[[], ServiceFrontend]] = None,
) -> ServerHandle:
    """Start a :class:`SolverServer` on a daemon thread and wait for bind.

    Returns a :class:`ServerHandle` whose :attr:`~ServerHandle.port`
    reports the actual bound port.  The server also stops (and the
    thread exits) when a client issues the ``shutdown`` op.
    ``frontend_factory`` feeds the sharded tier (see
    :class:`SolverServer`).
    """
    server = SolverServer(config=config, frontend=frontend, frontend_factory=frontend_factory)
    ready = threading.Event()
    failures: list = []

    def runner() -> None:
        """Thread body: own event loop, serve until stopped."""

        async def main() -> None:
            try:
                await server.start()
            except Exception as exc:  # noqa: BLE001 — reported to the caller below
                failures.append(exc)
                ready.set()
                return
            ready.set()
            await server.wait_stopped()

        asyncio.run(main())

    thread = threading.Thread(target=runner, name="repro-server", daemon=True)
    thread.start()
    if not ready.wait(ready_timeout_s):
        raise ServerError(f"server did not start within {ready_timeout_s} s")
    if failures:
        raise failures[0]
    return ServerHandle(server=server, thread=thread)
