"""Wire protocol of the solver server: newline-delimited JSON frames.

One frame per line, UTF-8, at most :data:`MAX_FRAME_BYTES` per frame.
Every frame is a JSON object.  Requests carry an ``op`` (one of
:data:`REQUEST_OPS`) and a caller-chosen ``id`` that the server echoes
into every frame it emits for that request, so a client can multiplex
many requests over one connection.  Responses carry a ``type``
discriminator:

========== ==========================================================
``type``   meaning
========== ==========================================================
hello      server identity, registered solvers and limits
pong       reply to ``ping``
queued     a job was admitted (``job_id``, queue depth, coalescing)
update     one incremental anytime improvement of a running job
result     the final :class:`~repro.service.jobs.SolveResult`
subscribed acknowledgement of a ``subscribe`` (job state included)
stats      server metrics snapshot
metrics    Prometheus text exposition of the server metrics
health     structured liveness state (per-shard when sharded)
draining   graceful shutdown has begun
error      the request failed (``code`` + human-readable ``error``)
========== ==========================================================

This module is deliberately transport-free: it only turns dictionaries
into wire bytes and back, validates request shapes and builds response
frames.  Both :mod:`repro.server.app` (asyncio server) and
:mod:`repro.server.client` (blocking client) speak through it, which is
what the protocol round-trip fuzz tests exercise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.exceptions import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "REQUEST_OPS",
    "PRIORITIES",
    "PRIORITY_NAMES",
    "DEFAULT_PRIORITY",
    "Request",
    "encode_frame",
    "decode_frame",
    "parse_request",
    "parse_priority",
    "error_frame",
    "hello_frame",
    "pong_frame",
    "queued_frame",
    "update_frame",
    "result_frame",
    "subscribed_frame",
    "stats_frame",
    "metrics_frame",
    "health_frame",
    "draining_frame",
]

#: Protocol revision advertised in the ``hello`` frame.
PROTOCOL_VERSION = 1

#: Hard cap on one encoded frame (problems serialize into requests, so
#: the cap is generous; the server also uses it as its read limit).
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Operations a client may request.
REQUEST_OPS = (
    "hello",
    "ping",
    "solve",
    "submit",
    "wait",
    "subscribe",
    "stats",
    "metrics",
    "health",
    "shutdown",
)

#: Named priority levels (lower value = served earlier).
PRIORITIES: Dict[str, int] = {"high": 0, "normal": 1, "low": 2}

#: Reverse mapping of :data:`PRIORITIES` for display purposes.
PRIORITY_NAMES: Dict[int, str] = {level: name for name, level in PRIORITIES.items()}

#: Priority applied when a request does not specify one.
DEFAULT_PRIORITY = PRIORITIES["normal"]


@dataclass(frozen=True)
class Request:
    """One validated request frame: operation, echo id and raw payload."""

    op: str
    id: str
    payload: Dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------- #
# Frame encoding / decoding
# ---------------------------------------------------------------------- #
def encode_frame(frame: Mapping[str, Any], max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialise one frame to wire bytes (JSON + trailing newline).

    Raises :class:`~repro.exceptions.ProtocolError` when the frame is not
    JSON-serialisable (including NaN/Infinity, which strict JSON lacks)
    or exceeds ``max_bytes``.
    """
    if not isinstance(frame, Mapping):
        raise ProtocolError(f"frame must be a mapping, got {type(frame).__name__}")
    try:
        payload = json.dumps(dict(frame), separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"frame is not JSON-serialisable: {exc}") from exc
    data = payload.encode("utf-8") + b"\n"
    if len(data) > max_bytes:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the {max_bytes}-byte limit"
        )
    return data


def decode_frame(line: "bytes | str", max_bytes: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Parse one wire line back into a frame dictionary.

    Raises :class:`~repro.exceptions.ProtocolError` for oversized lines,
    invalid UTF-8, invalid JSON, or a JSON value that is not an object.
    """
    if isinstance(line, str):
        raw = line.encode("utf-8", errors="surrogatepass")
    else:
        raw = bytes(line)
    if len(raw) > max_bytes:
        raise ProtocolError(
            f"frame of {len(raw)} bytes exceeds the {max_bytes}-byte limit"
        )
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    text = text.strip()
    if not text:
        raise ProtocolError("frame is empty")
    try:
        frame = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    return frame


# ---------------------------------------------------------------------- #
# Request validation
# ---------------------------------------------------------------------- #
def parse_request(frame: Mapping[str, Any]) -> Request:
    """Validate a decoded frame as a request.

    The ``op`` must be one of :data:`REQUEST_OPS`; the optional ``id``
    must be a string or integer (normalised to a string).  Everything
    else stays in :attr:`Request.payload` for the per-op handler.
    """
    op = frame.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("request needs a non-empty string 'op' field")
    if op not in REQUEST_OPS:
        raise ProtocolError(f"unknown op {op!r}; supported: {list(REQUEST_OPS)}")
    request_id = frame.get("id", "")
    if isinstance(request_id, bool) or not isinstance(request_id, (str, int)):
        raise ProtocolError(
            f"request 'id' must be a string or integer, got {type(request_id).__name__}"
        )
    payload = {key: value for key, value in frame.items() if key not in ("op", "id")}
    return Request(op=op, id=str(request_id), payload=payload)


def parse_priority(value: Any) -> int:
    """Normalise a priority field: a name from :data:`PRIORITIES` or an
    integer level 0-2.  ``None`` yields :data:`DEFAULT_PRIORITY`."""
    if value is None:
        return DEFAULT_PRIORITY
    if isinstance(value, str):
        try:
            return PRIORITIES[value]
        except KeyError:
            raise ProtocolError(
                f"unknown priority {value!r}; expected one of {sorted(PRIORITIES)}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            f"priority must be a name or an integer level, got {type(value).__name__}"
        )
    if value not in PRIORITY_NAMES:
        raise ProtocolError(
            f"priority level {value} out of range; expected {sorted(PRIORITY_NAMES)}"
        )
    return value


# ---------------------------------------------------------------------- #
# Response frame builders
# ---------------------------------------------------------------------- #
def error_frame(request_id: str, code: str, message: str) -> Dict[str, Any]:
    """An error response: machine-readable ``code`` plus a message."""
    return {"id": request_id, "type": "error", "code": code, "error": message}


def hello_frame(
    request_id: str,
    server_name: str,
    version: str,
    solvers: Sequence[str],
    limits: Mapping[str, Any],
) -> Dict[str, Any]:
    """The server's identity card (sent in reply to ``hello``)."""
    return {
        "id": request_id,
        "type": "hello",
        "server": server_name,
        "version": version,
        "protocol": PROTOCOL_VERSION,
        "solvers": list(solvers),
        "limits": dict(limits),
    }


def pong_frame(request_id: str) -> Dict[str, Any]:
    """Reply to ``ping`` (liveness/latency probe)."""
    return {"id": request_id, "type": "pong"}


def queued_frame(
    request_id: str,
    job_id: str,
    queue_depth: int,
    coalesced_with: Optional[str] = None,
) -> Dict[str, Any]:
    """Admission acknowledgement.

    ``coalesced_with`` names the in-flight representative job when the
    request was coalesced instead of queued (subscribe to that job id for
    live updates).
    """
    return {
        "id": request_id,
        "type": "queued",
        "job_id": job_id,
        "queue_depth": queue_depth,
        "coalesced_with": coalesced_with,
    }


def update_frame(
    request_id: str,
    job_id: str,
    seq: int,
    elapsed_ms: float,
    cost: float,
    solver: str,
) -> Dict[str, Any]:
    """One incremental anytime improvement of a running job."""
    return {
        "id": request_id,
        "type": "update",
        "job_id": job_id,
        "seq": seq,
        "elapsed_ms": elapsed_ms,
        "cost": cost,
        "solver": solver,
    }


def result_frame(request_id: str, job_id: str, result: Mapping[str, Any]) -> Dict[str, Any]:
    """The final outcome of a job (a ``SolveResult.to_dict()`` payload)."""
    return {"id": request_id, "type": "result", "job_id": job_id, "result": dict(result)}


def subscribed_frame(request_id: str, job_id: str, state: str) -> Dict[str, Any]:
    """Acknowledgement of ``subscribe``; ``state`` is queued/running/done."""
    return {"id": request_id, "type": "subscribed", "job_id": job_id, "state": state}


def stats_frame(request_id: str, stats: Mapping[str, Any]) -> Dict[str, Any]:
    """Metrics snapshot (see :meth:`repro.server.metrics.ServerMetrics.snapshot`)."""
    return {"id": request_id, "type": "stats", "stats": dict(stats)}


def metrics_frame(request_id: str, text: str) -> Dict[str, Any]:
    """Prometheus text exposition (reply to ``metrics``).

    The exposition travels as one JSON string field; a scrape bridge
    writes it out verbatim as ``text/plain; version=0.0.4``.
    """
    return {"id": request_id, "type": "metrics", "content_type": "text/plain; version=0.0.4",
            "text": str(text)}


def health_frame(request_id: str, health: Mapping[str, Any]) -> Dict[str, Any]:
    """Structured liveness state (reply to ``health``).

    ``health`` carries the pool's verdict (``ok|degraded|draining``),
    per-shard state when the server runs the sharded tier, and the tail
    of the structured event log.
    """
    return {"id": request_id, "type": "health", "health": dict(health)}


def draining_frame(request_id: str, pending_jobs: int) -> Dict[str, Any]:
    """Notification that graceful shutdown has begun."""
    return {"id": request_id, "type": "draining", "pending_jobs": pending_jobs}
