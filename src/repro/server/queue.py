"""Priority job queue with per-client fairness and admission control.

Two layers:

* :class:`FairScheduler` — the pure, synchronous data structure: jobs
  are grouped by priority level, and within one level clients take
  round-robin turns, so a client flooding the queue cannot starve the
  others.  Admission control lives here too: pushes beyond the global
  capacity or a per-client quota raise
  :class:`~repro.exceptions.AdmissionError` (bounded backpressure —
  callers are told to retry instead of the queue growing without bound).
* :class:`JobQueue` — the thin asyncio shell the server uses: worker
  tasks ``await get()``, connection handlers ``push()`` from the event
  loop, and :meth:`JobQueue.drain` flips the queue into shutdown mode
  (new pushes rejected, ``get()`` returns ``None`` once empty so workers
  exit after finishing what was already admitted).
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional

from repro.exceptions import AdmissionError
from repro.obs.events import record_event
from repro.server.protocol import DEFAULT_PRIORITY, PRIORITY_NAMES
from repro.service.jobs import SolveRequest, SolveResult

__all__ = ["ServerJob", "FairScheduler", "JobQueue"]


@dataclass
class ServerJob:
    """One unit of server work: a solve request plus its lifecycle state.

    Attributes
    ----------
    job_id:
        Server-unique identifier (``sj-<n>``); distinct from the
        client-facing :attr:`SolveRequest.job_id` echoed in the result.
    client_id:
        Fairness bucket the job was admitted under (the ``client`` field
        of the request, or a per-connection default).
    request:
        The solve request handed to the service frontend.
    priority:
        Priority level (0 = high, 1 = normal, 2 = low).
    stream:
        Whether the submitting connection asked for live anytime updates.
    coalesce_key:
        Duplicate-detection key (cache key + exact problem token); filled
        in by the worker pool at admission.
    coalesced_with:
        Job id of the in-flight representative when this job was
        coalesced instead of queued.
    retries:
        Times the job was re-dispatched after its worker died mid-job
        (the sharded tier retries once before failing the job).
    enqueued_at / started_at / finished_at:
        Monotonic timestamps of the lifecycle transitions.
    result:
        The final outcome (``None`` while queued or running).
    """

    job_id: str
    client_id: str
    request: SolveRequest
    priority: int = DEFAULT_PRIORITY
    stream: bool = False
    coalesce_key: str = ""
    coalesced_with: Optional[str] = None
    retries: int = 0
    enqueued_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[SolveResult] = None

    @property
    def done(self) -> bool:
        """Whether the job has a final result."""
        return self.result is not None

    @property
    def state(self) -> str:
        """Lifecycle state name: ``queued`` / ``running`` / ``done``."""
        if self.done:
            return "done"
        if self.started_at is not None:
            return "running"
        return "queued"

    @property
    def priority_name(self) -> str:
        """Human-readable priority level."""
        return PRIORITY_NAMES.get(self.priority, str(self.priority))

    def queue_wait_ms(self) -> float:
        """Milliseconds spent queued before a worker picked the job up."""
        if self.started_at is None:
            return (time.monotonic() - self.enqueued_at) * 1000.0
        return (self.started_at - self.enqueued_at) * 1000.0

    def run_time_ms(self) -> float:
        """Milliseconds between worker pickup and completion (0 if never ran)."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return (self.finished_at - self.started_at) * 1000.0


class FairScheduler:
    """Priority levels with round-robin fairness across clients.

    Jobs live in one FIFO deque per ``(priority, client)``.  ``pop()``
    serves the lowest (most urgent) non-empty priority level, and within
    that level rotates over the clients that have pending jobs — after a
    client is served its bucket moves to the back of the rotation, so
    interleaved arrivals from many clients are served interleaved no
    matter how many jobs one client queued up front.

    Parameters
    ----------
    capacity:
        Global bound on queued jobs; pushes beyond raise
        :class:`AdmissionError` (``code="queue_full"``).
    max_per_client:
        Optional per-client bound (``code="client_quota"``); ``None``
        leaves clients bounded only by the global capacity.
    """

    def __init__(self, capacity: int = 128, max_per_client: Optional[int] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        if max_per_client is not None and max_per_client <= 0:
            raise ValueError(f"max_per_client must be positive, got {max_per_client}")
        self.capacity = capacity
        self.max_per_client = max_per_client
        # priority level -> client id -> FIFO of jobs (OrderedDict gives
        # us the round-robin rotation: serve first client, move to end).
        self._levels: Dict[int, "OrderedDict[str, Deque[ServerJob]]"] = {}
        self._depth = 0
        self._per_client: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Number of queued jobs."""
        return self._depth

    def depth_for(self, client_id: str) -> int:
        """Number of queued jobs of one client."""
        return self._per_client.get(client_id, 0)

    def __len__(self) -> int:
        return self._depth

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def push(self, job: ServerJob) -> None:
        """Admit ``job`` or raise :class:`AdmissionError` (backpressure)."""
        if self._depth >= self.capacity:
            record_event(
                "admission_reject", code="queue_full", client=job.client_id, depth=self._depth
            )
            raise AdmissionError(
                f"queue is full ({self._depth}/{self.capacity} jobs); retry later",
                code="queue_full",
            )
        pending = self._per_client.get(job.client_id, 0)
        if self.max_per_client is not None and pending >= self.max_per_client:
            record_event(
                "admission_reject", code="client_quota", client=job.client_id, pending=pending
            )
            raise AdmissionError(
                f"client {job.client_id!r} already has {pending} queued jobs "
                f"(quota {self.max_per_client}); retry later",
                code="client_quota",
            )
        clients = self._levels.setdefault(job.priority, OrderedDict())
        bucket = clients.get(job.client_id)
        if bucket is None:
            bucket = deque()
            clients[job.client_id] = bucket
        bucket.append(job)
        self._depth += 1
        self._per_client[job.client_id] = pending + 1

    def promote(self, job: ServerJob, priority: int) -> bool:
        """Raise a *queued* job to a more urgent priority level.

        Used when an urgent duplicate coalesces onto a less urgent queued
        representative: the representative inherits the follower's
        urgency so the priority contract holds for both.  Returns whether
        the job was found and moved (``False`` when it already left the
        queue or the new priority is not more urgent).
        """
        if priority >= job.priority:
            return False
        clients = self._levels.get(job.priority)
        bucket = clients.get(job.client_id) if clients else None
        if bucket is None or job not in bucket:
            return False  # already popped (running or done)
        bucket.remove(job)
        if not bucket:
            del clients[job.client_id]
        if not clients:
            del self._levels[job.priority]
        job.priority = priority
        new_clients = self._levels.setdefault(priority, OrderedDict())
        new_bucket = new_clients.get(job.client_id)
        if new_bucket is None:
            new_bucket = deque()
            new_clients[job.client_id] = new_bucket
        new_bucket.append(job)
        return True

    def pop(self) -> Optional[ServerJob]:
        """The next job to run, or ``None`` when the queue is empty."""
        for priority in sorted(self._levels):
            clients = self._levels[priority]
            if not clients:
                continue
            client_id, bucket = next(iter(clients.items()))
            job = bucket.popleft()
            if bucket:
                clients.move_to_end(client_id)  # round-robin rotation
            else:
                del clients[client_id]
            if not clients:
                del self._levels[priority]
            self._depth -= 1
            remaining = self._per_client.get(client_id, 1) - 1
            if remaining > 0:
                self._per_client[client_id] = remaining
            else:
                self._per_client.pop(client_id, None)
            return job
        return None


class JobQueue:
    """Asyncio shell around :class:`FairScheduler` for the server loop.

    All methods must be called from the event-loop thread.  Workers
    ``await get()``; connection handlers ``push()``.  :meth:`drain`
    starts graceful shutdown: subsequent pushes raise
    :class:`AdmissionError` (``code="draining"``) and every waiting or
    future ``get()`` returns ``None`` once the backlog is empty.
    """

    def __init__(self, capacity: int = 128, max_per_client: Optional[int] = None) -> None:
        self._scheduler = FairScheduler(capacity=capacity, max_per_client=max_per_client)
        self._waiters: Deque["asyncio.Future[Any]"] = deque()
        self._draining = False

    @property
    def depth(self) -> int:
        """Number of queued jobs."""
        return self._scheduler.depth

    @property
    def capacity(self) -> int:
        """Global admission bound."""
        return self._scheduler.capacity

    @property
    def draining(self) -> bool:
        """Whether graceful shutdown has begun."""
        return self._draining

    @property
    def waiting(self) -> int:
        """Number of ``get()`` calls currently blocked on an empty queue.

        Test synchronisation hook: "a worker is parked and waiting" is
        observable state, so tests poll this instead of sleeping a fixed
        interval and hoping the scheduler ran the worker task.
        """
        return sum(1 for waiter in self._waiters if not waiter.done())

    def depth_for(self, client_id: str) -> int:
        """Number of queued jobs of one client."""
        return self._scheduler.depth_for(client_id)

    def push(self, job: ServerJob) -> None:
        """Admit ``job`` and wake one waiting worker.

        Raises :class:`AdmissionError` under backpressure or while
        draining.
        """
        if self._draining:
            record_event("admission_reject", code="draining", client=job.client_id)
            raise AdmissionError("server is draining; no new jobs accepted", code="draining")
        self._scheduler.push(job)
        self._wake(1)

    def promote(self, job: ServerJob, priority: int) -> bool:
        """Raise a queued job's urgency (see :meth:`FairScheduler.promote`)."""
        return self._scheduler.promote(job, priority)

    async def get(self) -> Optional[ServerJob]:
        """Wait for the next job; ``None`` signals a worker to exit."""
        while True:
            job = self._scheduler.pop()
            if job is not None:
                return job
            if self._draining:
                return None
            waiter: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            except asyncio.CancelledError:
                if not waiter.done():
                    waiter.cancel()
                raise

    def drain(self) -> None:
        """Reject new pushes and release every waiting worker."""
        self._draining = True
        self._wake(len(self._waiters))

    def _wake(self, count: int) -> None:
        """Release up to ``count`` waiting ``get()`` calls."""
        while count > 0 and self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                count -= 1
