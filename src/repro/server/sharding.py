"""Sharded multi-process worker tier: one solver process per core.

:class:`~repro.server.workers.WorkerPool` executes jobs on threads, so
CPU-bound solves serialise on the GIL.  :class:`ShardPool` is the
shared-nothing alternative: ``num_shards`` child processes, each owning
a private :class:`~repro.service.frontend.ServiceFrontend` (result
cache, prepared-pipeline caches, solver registry), fed over one
:class:`multiprocessing.connection.Connection` pipe each.

Design points:

* **Routing.** Jobs are routed by the problem's ``canonical_hash``
  (:func:`shard_for`), so repeated solves of the same instance land on
  the same shard and hit that shard's warm caches.  The hash is already
  memoised by admission-time coalescing, so routing costs one modulo.
* **Zero-copy handoff.** Requests cross the pipe as the problem's
  :class:`~repro.mqo.arrays.ProblemArrays` columns pickled with
  protocol 5: every NumPy column travels as an out-of-band buffer
  (:func:`send_message`), never staged through the pickle stream, and
  the receiving arrays wrap the received buffers directly.  The shard
  rebuilds the problem object around the transferred columns
  (:func:`~repro.mqo.arrays.problem_from_arrays`).
* **Streaming.** Anytime improvements observed inside a shard are
  forwarded over the pipe and republished on the parent's event loop
  through the :class:`~repro.server.streaming.StreamBroker`, so clients
  see the same live update stream as with the thread tier.
* **Coalescing** stays in the parent (:class:`BasePool.admit`): only
  execution moves into the shards, so duplicate in-flight requests are
  folded before any bytes cross a pipe.
* **Faults.** A shard that dies mid-job (crash, OOM-kill, SIGKILL) is
  detected by its reader thread (pipe EOF).  Its in-flight jobs are
  retried once on a live shard (when ``retry_on_shard_death``) or
  failed with a clean error result; the dead slot is respawned (up to
  ``max_restarts_per_shard`` times) and routing heals around it in the
  meantime.  Fail-over is **single-owner**: a job is failed over by
  whichever path pops it from the shard's ``assigned`` map first
  (:meth:`ShardPool._on_shard_exit` on pipe EOF, or the sender on a
  send error), so one job is never retried twice or finished twice.
* **Dispatch.** The dispatcher never blocks on one shard: a job whose
  shard's bounded outbox is full is parked in that shard's unbounded
  overflow deque instead, so a saturated shard cannot head-of-line
  block dispatch to idle shards.  The global bound that the outbox
  capacity used to provide moves to admission:
  :meth:`ShardPool.admit` rejects new jobs once queued plus dispatched
  jobs exceed the queue capacity plus a per-shard in-flight allowance.
* **Telemetry.** Each shard heartbeats its process-global metrics
  registry over the pipe (``heartbeat_interval_s``, plus an initial and
  a final drain-time snapshot); the parent stores the latest snapshot
  per slot and federates them into the Prometheus exposition under a
  ``shard="N"`` label.  Any inbound message refreshes the slot's
  ``last_heartbeat``, which the ``health`` op turns into a per-shard
  liveness age and an overall ``ok|degraded|draining`` verdict.
* **Drain.** ``queue.drain()`` stops admission; the dispatcher forwards
  the backlog, every shard receives a ``stop`` sentinel *behind* its
  queued jobs (pipes are FIFO), finishes them, and exits; ``join()``
  returns once every shard process has gone.

Span adoption follows the batch executor's pattern: when tracing is
enabled at dispatch time the shard runs the job under its own tracer
and ships the finished span records back with the result, where the
parent :meth:`~repro.obs.trace.Tracer.adopt`\\ s them.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import struct
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.connection import Connection
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.baselines.anytime import observe_improvements
from repro.exceptions import AdmissionError
from repro.mqo.arrays import problem_from_arrays
from repro.obs.events import record_event
from repro.obs.metrics import get_registry
from repro.obs.trace import configure_tracer, get_tracer
from repro.server.metrics import ServerMetrics
from repro.server.queue import JobQueue, ServerJob
from repro.server.streaming import StreamBroker
from repro.server.workers import BasePool
from repro.service.cache import ResultCache
from repro.service.frontend import ServiceFrontend
from repro.service.jobs import SolveRequest, SolveResult

__all__ = [
    "shard_for",
    "send_message",
    "recv_message",
    "encode_shard_request",
    "decode_shard_request",
    "default_shard_count",
    "ShardPool",
]

#: Hex digits of the canonical hash used for routing (64 bits is plenty).
_ROUTE_PREFIX = 16

#: Per-shard bound on dispatched-but-unsent jobs.  Small on purpose:
#: beyond it the dispatcher parks jobs in the shard's overflow deque,
#: and the per-shard in-flight allowance :meth:`ShardPool.admit` grants
#: on top of the queue capacity is sized from it.
_OUTBOX_CAPACITY = 4


def default_shard_count() -> int:
    """The shard count ``shards=-1`` resolves to: one per CPU core."""
    return max(os.cpu_count() or 1, 1)


def _default_mp_context() -> str:
    """The start method used when none is requested.

    ``forkserver`` where available (Unix): shard processes fork from a
    clean, single-threaded server process, so spawning (and *re*-spawning
    after a fault) is safe even though the parent runs reader threads,
    the send executor and — under :func:`~repro.server.app.run_server_in_thread`
    — the whole event loop off the main thread.  A bare ``fork`` in that
    parent could deadlock the child on locks held mid-fork (and is
    deprecated with threads from Python 3.12).  ``spawn`` is the
    fallback where ``forkserver`` does not exist.
    """
    methods = get_all_start_methods()
    if "forkserver" in methods:
        return "forkserver"
    return "spawn" if "spawn" in methods else "fork"


def shard_for(canonical_hash: str, num_shards: int) -> int:
    """Deterministic shard slot of a problem's canonical hash.

    Pure function of the hash prefix and the shard count — stable across
    processes, runs and machines, so a client re-submitting the same
    problem always lands on the same (warm) shard.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    return int(canonical_hash[:_ROUTE_PREFIX], 16) % num_shards


# ---------------------------------------------------------------------- #
# Pipe transport: pickle protocol 5 with out-of-band buffers
# ---------------------------------------------------------------------- #
def send_message(conn: Connection, message: Any) -> None:
    """Send one message with its NumPy columns out-of-band.

    The pickle stream (with protocol 5 every array serialises to a
    :class:`pickle.PickleBuffer` reference instead of inline bytes) goes
    first, prefixed with the buffer count; the raw buffers follow, one
    pipe frame each.  The big columns are therefore never copied into a
    pickle byte-string — they go straight from the array memory into the
    pipe.
    """
    buffers: List[pickle.PickleBuffer] = []
    payload = pickle.dumps(message, protocol=5, buffer_callback=buffers.append)
    conn.send_bytes(struct.pack("<I", len(buffers)) + payload)
    for buffer in buffers:
        conn.send_bytes(buffer.raw())


def recv_message(conn: Connection) -> Any:
    """Receive one :func:`send_message` frame (raises ``EOFError`` on hangup).

    Each out-of-band buffer is received as one ``bytes`` object and
    handed to ``pickle.loads(..., buffers=...)``; the rebuilt arrays
    wrap those buffers directly (no further copy, read-only backing).
    """
    frame = conn.recv_bytes()
    (count,) = struct.unpack_from("<I", frame)
    buffers = [conn.recv_bytes() for _ in range(count)]
    return pickle.loads(frame[4:], buffers=buffers)


def encode_shard_request(request: SolveRequest) -> Dict[str, Any]:
    """The pipe form of a request: columnar problem + scalar fields.

    Ships the problem as its :class:`~repro.mqo.arrays.ProblemArrays`
    (zero-copy under :func:`send_message`) plus the memoised canonical
    hash, so the shard neither re-serialises nor re-canonicalises the
    instance.
    """
    problem = request.problem
    return {
        "arrays": problem.arrays(),
        "name": problem.name,
        "canonical_hash": problem.canonical_hash(),
        "solver": request.solver,
        "time_budget_ms": request.time_budget_ms,
        "seed": request.seed,
        "job_id": request.job_id,
        "solvers": request.solvers,
        "metadata": dict(request.metadata),
    }


def decode_shard_request(payload: Dict[str, Any]) -> SolveRequest:
    """Rebuild a :class:`SolveRequest` from :func:`encode_shard_request`."""
    problem = problem_from_arrays(
        payload["arrays"],
        name=payload["name"],
        canonical_hash=payload["canonical_hash"],
    )
    solvers = payload["solvers"]
    return SolveRequest(
        problem=problem,
        solver=payload["solver"],
        time_budget_ms=payload["time_budget_ms"],
        seed=payload["seed"],
        job_id=payload["job_id"],
        solvers=tuple(solvers) if solvers is not None else None,
        metadata=dict(payload["metadata"]),
    )


# ---------------------------------------------------------------------- #
# Shard child process
# ---------------------------------------------------------------------- #
def _shard_main(
    shard_index: int,
    conn: Connection,
    frontend_factory: Callable[[], ServiceFrontend],
    heartbeat_interval_s: float = 1.0,
) -> None:
    """Child-process body: serve jobs off the pipe until ``stop`` or EOF.

    One job executes at a time (parallelism comes from the shard count).
    Improvement updates are sent from solver threads while the main
    thread is blocked inside ``frontend.submit``, so every pipe write
    goes through one lock — frames never interleave, and updates always
    precede their job's result frame.

    A daemon heartbeat thread ships the shard's process-global metrics
    registry (:meth:`~repro.obs.metrics.MetricsRegistry.to_snapshot`)
    every ``heartbeat_interval_s`` seconds; a final snapshot goes out on
    drain so the parent's federated exposition never misses the tail of
    a shard's counters.  The heartbeat doubles as the parent's liveness
    signal for the ``health`` op.
    """
    configure_tracer(False)  # never inherit the parent's tracer state
    send_lock = threading.Lock()

    def send(message: Tuple[Any, ...]) -> None:
        with send_lock:
            send_message(conn, message)

    def send_metrics() -> None:
        send(("metrics", get_registry().to_snapshot()))

    frontend = frontend_factory()
    try:
        send(("ready", shard_index, os.getpid()))
        send_metrics()
    except (BrokenPipeError, OSError):
        return
    heartbeat_stop = threading.Event()

    def heartbeat_loop() -> None:
        while not heartbeat_stop.wait(heartbeat_interval_s):
            try:
                send_metrics()
            except (BrokenPipeError, OSError):
                return

    if heartbeat_interval_s > 0:
        threading.Thread(
            target=heartbeat_loop, name=f"repro-shard-{shard_index}-hb", daemon=True
        ).start()
    while True:
        try:
            message = recv_message(conn)
        except (EOFError, OSError):
            break  # parent gone: nothing sensible left to do
        if message[0] == "stop":
            break
        _, job_id, payload, collect_spans = message
        try:
            send(("started", job_id))
            request = decode_shard_request(payload)
            started = time.monotonic()

            def forward(solver_name: str, _elapsed_ms: float, cost: float) -> None:
                # Solver-thread context; re-measure elapsed against the
                # job start so racing members share one time axis.
                elapsed_ms = (time.monotonic() - started) * 1000.0
                try:
                    send(("update", job_id, solver_name, elapsed_ms, cost))
                except (BrokenPipeError, OSError):
                    pass

            spans: List[Dict[str, Any]] = []
            if collect_spans:
                tracer = configure_tracer(True)
                try:
                    with observe_improvements(forward):
                        result = frontend.submit(request)
                    spans = [span.to_dict() for span in tracer.drain()]
                    for record in spans:
                        # Attribute every shipped span to this shard so
                        # the bench's stage breakdown can group by shard.
                        record.setdefault("attributes", {})["shard"] = shard_index
                finally:
                    configure_tracer(False)
            else:
                with observe_improvements(forward):
                    result = frontend.submit(request)
            send(("result", job_id, result.to_dict(), spans))
        except (BrokenPipeError, OSError):
            break
        except Exception as exc:  # noqa: BLE001 — one bad job must not kill the shard
            failure = {"job_id": job_id, "error": f"{type(exc).__name__}: {exc}"}
            try:
                send(("result", job_id, failure, []))
            except (BrokenPipeError, OSError):
                break
    heartbeat_stop.set()
    try:
        send_metrics()  # final snapshot: the drain tail must federate too
    except (BrokenPipeError, OSError):
        pass
    conn.close()


class _Shard:
    """Parent-side handle of one shard slot."""

    def __init__(self, index: int, process: Any, conn: Connection) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.ready = False
        self.dead = False
        self.stop_sent = False
        #: ``time.monotonic()`` of the last message received from this
        #: shard (any kind counts — heartbeats, results, updates).
        #: Initialised to spawn time so the age is always defined.
        self.last_heartbeat: float = time.monotonic()
        #: Jobs dispatched to this shard and not yet finished.  This map
        #: is also the fail-over ownership record: whichever path pops a
        #: job from it owns (and is alone responsible for) its fail-over.
        self.assigned: Dict[str, ServerJob] = {}
        #: Dispatcher → sender queue; ``None`` is the stop sentinel.
        self.outbox: "asyncio.Queue[Optional[Tuple[ServerJob, Tuple[Any, ...]]]]" = (
            asyncio.Queue(maxsize=_OUTBOX_CAPACITY)
        )
        #: Items parked when the outbox is full, drained by the sender
        #: after the outbox — one logical FIFO, so dispatch to other
        #: shards never blocks on this shard's backlog.
        self.overflow: Deque[Optional[Tuple[ServerJob, Tuple[Any, ...]]]] = deque()
        self.exited = asyncio.Event()

    @property
    def pid(self) -> Optional[int]:
        """OS pid of the shard process (``None`` before start)."""
        return self.process.pid


class ShardPool(BasePool):
    """Multi-process worker tier: hash-routed shards behind one queue.

    Mirrors :class:`~repro.server.workers.WorkerPool`'s surface (admit /
    start / join / shutdown) so :class:`~repro.server.app.SolverServer`
    can run either tier; see the module docstring for the architecture.

    Parameters
    ----------
    frontend_factory:
        Zero-argument callable building a shard's private
        :class:`ServiceFrontend`, invoked *inside* each child process.
        Must be picklable (a module-level function or
        :func:`functools.partial` over one) under the default
        ``forkserver``/``spawn`` start methods; only an explicit
        ``mp_context="fork"`` admits closures.
    queue / broker / metrics / coalesce:
        See :class:`BasePool`.
    num_shards:
        Shard process count (``-1`` = one per CPU core).
    retry_on_shard_death:
        Retry a dead shard's in-flight jobs once on a live shard before
        failing them (default); ``False`` fails them immediately.
    mp_context:
        Multiprocessing start method; defaults to ``forkserver`` where
        available, else ``spawn`` (see :func:`_default_mp_context` for
        why ``fork`` is unsafe in this multi-threaded parent).
    max_restarts_per_shard:
        Respawn budget per slot; beyond it the slot stays dead and
        routing permanently heals around it.
    result_cache:
        Optional parent-side :class:`~repro.service.cache.ResultCache`
        that every fresh shard result is mirrored into.  Shard caches
        are process-private, so without this the parent's cache (the
        one ``--cache-file`` checkpoints to disk) would never see what
        the shards solved.
    heartbeat_interval_s:
        Cadence of each shard's metrics-snapshot heartbeat (seconds);
        ``0`` disables the ticker (the initial and drain snapshots are
        still sent).  The heartbeat also feeds the ``health`` op's
        staleness verdict.
    """

    def __init__(
        self,
        frontend_factory: Callable[[], ServiceFrontend],
        queue: JobQueue,
        broker: StreamBroker,
        metrics: ServerMetrics,
        num_shards: int = -1,
        coalesce: bool = True,
        retry_on_shard_death: bool = True,
        mp_context: Optional[str] = None,
        max_restarts_per_shard: int = 5,
        result_cache: Optional[ResultCache] = None,
        heartbeat_interval_s: float = 1.0,
    ) -> None:
        super().__init__(queue=queue, broker=broker, metrics=metrics, coalesce=coalesce)
        if num_shards == -1:
            num_shards = default_shard_count()
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive (or -1 = auto), got {num_shards}")
        self.frontend_factory = frontend_factory
        self.num_shards = num_shards
        self.retry_on_shard_death = retry_on_shard_death
        self.max_restarts_per_shard = max_restarts_per_shard
        self.heartbeat_interval_s = heartbeat_interval_s
        self._result_cache = result_cache
        if mp_context is None:
            mp_context = _default_mp_context()
        self._mp = get_context(mp_context)
        if mp_context == "forkserver":
            # Warm the forkserver with this module (pulls in numpy and
            # the solver stack), so every shard spawn — and every
            # respawn after a fault — forks from a preloaded process
            # instead of re-importing from scratch.
            self._mp.set_forkserver_preload(["repro.server.sharding"])
        self.shards: List[_Shard] = []
        self._restarts: Dict[int, int] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # One send thread per shard: a sender blocked on one shard's full
        # pipe must not stall writes to the others.
        self._send_executor = ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="repro-shard-send"
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def active(self) -> int:
        """Jobs currently executing inside shard processes."""
        return sum(
            1
            for shard in self.shards
            for job in shard.assigned.values()
            if job.started_at is not None
        )

    def pending_jobs(self) -> int:
        """Queued plus dispatched-but-unfinished jobs."""
        return self.queue.depth + sum(len(shard.assigned) for shard in self.shards)

    def live_shards(self) -> int:
        """Shard processes currently accepting work."""
        return sum(1 for shard in self.shards if not shard.dead)

    def ready_shards(self) -> int:
        """Shard processes that completed startup (frontend built)."""
        return sum(1 for shard in self.shards if shard.ready and not shard.dead)

    def extra_stats(self) -> Dict[str, object]:
        """Per-shard block merged into the ``stats`` snapshot."""
        now = time.monotonic()
        return {
            "shards": {
                "count": len(self.shards),
                "live": self.live_shards(),
                "ready": self.ready_shards(),
                "restarts": sum(self._restarts.values()),
                "per_shard": {
                    str(shard.index): {
                        "pid": shard.pid,
                        "assigned": len(shard.assigned),
                        "ready": shard.ready,
                        "dead": shard.dead,
                        "restarts": self._restarts.get(shard.index, 0),
                        "outbox": shard.outbox.qsize(),
                        "overflow": len(shard.overflow),
                        "heartbeat_age_s": round(now - shard.last_heartbeat, 3),
                    }
                    for shard in self.shards
                },
            }
        }

    def _heartbeat_stale_after(self) -> Optional[float]:
        """Heartbeat age beyond which a shard counts as unhealthy."""
        if self.heartbeat_interval_s <= 0:
            return None  # ticker disabled: staleness cannot be judged
        return max(5.0 * self.heartbeat_interval_s, 3.0)

    def health(self) -> Dict[str, Any]:
        """Structured per-shard state with an overall verdict.

        The verdict is ``draining`` while the queue refuses admission,
        ``degraded`` when any slot is dead, not yet ready, or silent for
        longer than the staleness threshold (five heartbeat intervals,
        floor three seconds — generous so a busy box never flaps), and
        ``ok`` otherwise.  Pipe EOF marks a killed shard dead within
        milliseconds; staleness is the backstop for a *hung* shard.
        """
        now = time.monotonic()
        stale_after = self._heartbeat_stale_after()
        shards: Dict[str, Dict[str, Any]] = {}
        alive = 0
        degraded = False
        for shard in self.shards:
            age = now - shard.last_heartbeat
            ok = shard.ready and not shard.dead
            stale = stale_after is not None and age > stale_after
            if ok and not stale:
                alive += 1
            else:
                degraded = True
            shards[str(shard.index)] = {
                "pid": shard.pid,
                "ready": shard.ready,
                "dead": shard.dead,
                "stale": stale,
                "assigned": len(shard.assigned),
                "outbox": shard.outbox.qsize(),
                "overflow": len(shard.overflow),
                "restarts": self._restarts.get(shard.index, 0),
                "heartbeat_age_s": round(age, 3),
            }
        if self.queue.draining:
            verdict = "draining"
        elif degraded:
            verdict = "degraded"
        else:
            verdict = "ok"
        return {
            "verdict": verdict,
            "tier": "shards",
            "count": len(self.shards),
            "alive": alive,
            "restarts": sum(self._restarts.values()),
            "queue_depth": self.queue.depth,
            "draining": self.queue.draining,
            "shards": shards,
        }

    def refresh_gauges(self) -> None:
        """Refresh the per-shard gauges just before a metrics render."""
        now = time.monotonic()
        backlog = 0
        for shard in self.shards:
            backlog += len(shard.assigned)
            index = shard.index
            self.metrics.set_shard_gauge(
                "inflight_jobs", index, len(shard.assigned),
                "Jobs dispatched to the shard and not yet finished.",
            )
            self.metrics.set_shard_gauge(
                "outbox_depth", index, shard.outbox.qsize(),
                "Jobs waiting in the shard's bounded outbox.",
            )
            self.metrics.set_shard_gauge(
                "overflow_depth", index, len(shard.overflow),
                "Jobs parked in the shard's overflow deque.",
            )
            self.metrics.set_shard_gauge(
                "heartbeat_age_seconds", index, round(now - shard.last_heartbeat, 3),
                "Seconds since the shard last sent any message.",
            )
            self.metrics.set_shard_gauge(
                "up", index, 1.0 if (shard.ready and not shard.dead) else 0.0,
                "Whether the shard slot is ready and alive (1) or not (0).",
            )
        self.metrics.registry.gauge(
            "repro_server_dispatched_jobs",
            "Jobs dispatched to shards and not yet finished (all slots).",
        ).set(backlog)

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def admit(self, job: ServerJob) -> str:
        """Admit with the dispatched backlog counted against capacity.

        Dispatch never blocks (full outboxes park into overflow), so
        jobs leave the central queue — where ``queue.push`` enforces the
        capacity — the moment the dispatcher runs.  Counting dispatched
        but unfinished jobs here restores the global bound: the server
        holds at most ``capacity`` jobs beyond a per-shard in-flight
        allowance, and everything past that is told to retry.
        Coalescable duplicates are exempt — they fold onto an in-flight
        representative instead of adding backlog.
        """
        dispatched = sum(len(shard.assigned) for shard in self.shards)
        allowance = len(self.shards) * (_OUTBOX_CAPACITY + 1)
        if self.queue.depth + dispatched >= self.queue.capacity + allowance and not (
            self.coalesce and self.coalesce_key(job) in self._inflight_by_key
        ):
            raise AdmissionError(
                f"server backlog is full ({self.queue.depth} queued + "
                f"{dispatched} dispatched jobs); retry later",
                code="queue_full",
            )
        return super().admit(job)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the shard processes and spawn dispatcher/sender tasks."""
        if self._tasks or self.shards:
            raise RuntimeError("shard pool already started")
        self._loop = asyncio.get_running_loop()
        for slot in range(self.num_shards):
            self.shards.append(self._spawn(slot))
        self._tasks.append(
            self._loop.create_task(self._dispatcher(), name="repro-shard-dispatcher")
        )

    def _spawn(self, slot: int) -> _Shard:
        """Start one shard process plus its sender task and reader thread."""
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=_shard_main,
            args=(slot, child_conn, self.frontend_factory, self.heartbeat_interval_s),
            name=f"repro-shard-{slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        shard = _Shard(index=slot, process=process, conn=parent_conn)
        record_event("shard_spawn", shard=slot, pid=process.pid)
        loop = self._loop if self._loop is not None else asyncio.get_running_loop()
        self._tasks.append(
            loop.create_task(self._sender(shard), name=f"repro-shard-sender-{slot}")
        )
        reader = threading.Thread(
            target=self._reader, args=(shard,), name=f"repro-shard-reader-{slot}", daemon=True
        )
        reader.start()
        return shard

    async def join(self) -> None:
        """Wait for the dispatcher, the senders and every shard process."""
        await super().join()
        if self.shards:
            await asyncio.gather(*(shard.exited.wait() for shard in self.shards))

    def shutdown_executor(self) -> None:
        """Force-stop anything still alive (after :meth:`join` or on abort)."""
        for shard in self.shards:
            if shard.process.is_alive():
                shard.process.terminate()
        for shard in self.shards:
            if shard.process.is_alive():
                shard.process.join(timeout=2.0)
            if shard.process.is_alive():  # pragma: no cover — stuck in kernel
                shard.process.kill()
                shard.process.join(timeout=1.0)
            try:
                shard.conn.close()
            except OSError:  # pragma: no cover — already closed by the reader
                pass
        self._send_executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------ #
    # Dispatch path (event-loop thread)
    # ------------------------------------------------------------------ #
    def _route(self, job: ServerJob) -> Optional[_Shard]:
        """The shard a job belongs on: hash slot, healing around dead slots."""
        slot = shard_for(job.request.problem.canonical_hash(), len(self.shards))
        shard = self.shards[slot]
        if not shard.dead:
            return shard
        live = [candidate for candidate in self.shards if not candidate.dead]
        if not live:
            return None
        return live[slot % len(live)]

    def _outbox_put(
        self, shard: _Shard, item: Optional[Tuple[ServerJob, Tuple[Any, ...]]]
    ) -> None:
        """Hand one item (or the ``None`` sentinel) to a shard's sender.

        Never blocks: once the bounded outbox is full — or the overflow
        already holds items, which must stay behind them — the item
        parks in the overflow deque instead.  The sender consumes the
        outbox first and the overflow second, so the two form one FIFO
        and a saturated shard cannot stall the dispatcher (and with it
        every other shard's dispatch).
        """
        if shard.overflow:
            shard.overflow.append(item)
            return
        try:
            shard.outbox.put_nowait(item)
        except asyncio.QueueFull:
            shard.overflow.append(item)

    def _dispatch(self, job: ServerJob) -> None:
        """Assign one job to its shard and hand it to the shard's sender.

        Synchronous on purpose: admission, routing, the ``assigned``
        bookkeeping and the outbox hand-off all happen in one event-loop
        slice, so no drain sentinel or fault handling can interleave
        between them.
        """
        shard = self._route(job)
        if shard is None:
            self._finish(
                job,
                SolveResult.from_error(job.request, "ServerError: no live shards available"),
            )
            return
        shard.assigned[job.job_id] = job
        tracer = get_tracer()
        message = (
            "job",
            job.job_id,
            encode_shard_request(job.request),
            bool(tracer.enabled),
        )
        self._outbox_put(shard, (job, message))

    async def _dispatcher(self) -> None:
        """Pump the central queue into the shard outboxes until drained."""
        while True:
            job = await self.queue.get()
            if job is None:
                break
            self._dispatch(job)
        # Drain: one stop sentinel per *current* shard, behind its backlog.
        for shard in self.shards:
            self._outbox_put(shard, None)

    async def _sender(self, shard: _Shard) -> None:
        """Serialise and write one shard's outbox onto its pipe.

        Pickling and the (potentially blocking) pipe write run on the
        send executor so a full pipe never stalls the event loop.  The
        bounded outbox is drained before the overflow deque — overflow
        items are always the younger ones — so send order matches
        dispatch order.
        """
        loop = asyncio.get_running_loop()
        while True:
            if not shard.outbox.empty():
                item = shard.outbox.get_nowait()
            elif shard.overflow:
                item = shard.overflow.popleft()
            else:
                item = await shard.outbox.get()
            if item is None:
                if not shard.dead:
                    try:
                        await loop.run_in_executor(
                            self._send_executor, send_message, shard.conn, ("stop",)
                        )
                    except (OSError, ValueError):
                        pass
                shard.stop_sent = True
                return
            job, message = item
            if shard.dead:
                # Single-owner fail-over: on pipe EOF, _on_shard_exit
                # pops *every* assigned job — including ones still
                # parked here — and fails them over itself.  Only a job
                # this sender still owns (not reassigned yet) may be
                # failed over here; a disowned one is simply dropped,
                # never retried or finished a second time.
                if shard.assigned.pop(job.job_id, None) is not None:
                    self._reassign_or_fail(job, shard)
                continue
            try:
                await loop.run_in_executor(
                    self._send_executor, send_message, shard.conn, message
                )
            except (OSError, ValueError):
                # Pipe broke under us; if the reader's EOF handling has
                # already disowned the job, it was dealt with there.
                if shard.assigned.pop(job.job_id, None) is not None:
                    self._reassign_or_fail(job, shard)

    # ------------------------------------------------------------------ #
    # Shard → parent messages (reader threads hop onto the loop)
    # ------------------------------------------------------------------ #
    def _reader(self, shard: _Shard) -> None:
        """Reader-thread body: pump shard messages onto the event loop."""
        assert self._loop is not None
        try:
            while True:
                message = recv_message(shard.conn)
                self._loop.call_soon_threadsafe(self._on_message, shard, message)
        except (EOFError, OSError):
            pass
        finally:
            try:
                self._loop.call_soon_threadsafe(self._on_shard_exit, shard)
            except RuntimeError:  # loop already closed mid-shutdown
                pass

    def _on_message(self, shard: _Shard, message: Tuple[Any, ...]) -> None:
        """Handle one shard message on the event-loop thread."""
        kind = message[0]
        shard.last_heartbeat = time.monotonic()  # any message proves liveness
        if kind == "ready":
            shard.ready = True
        elif kind == "metrics":
            self.metrics.record_shard_snapshot(shard.index, message[1])
        elif kind == "started":
            job = shard.assigned.get(message[1])
            if job is not None and job.started_at is None:
                job.started_at = time.monotonic()
        elif kind == "update":
            _, job_id, solver_name, elapsed_ms, cost = message
            self.broker.publish_improvement(job_id, solver_name, elapsed_ms, cost)
        elif kind == "result":
            _, job_id, result_dict, spans = message
            job = shard.assigned.pop(job_id, None)
            if spans:
                get_tracer().adopt(spans)
            if job is None:
                return  # already failed over by fault handling
            if job.started_at is None:
                job.started_at = time.monotonic()
            if "winner" in result_dict:
                result = SolveResult.from_dict(result_dict)
            else:  # the shard's bare-failure shape (solve crashed early)
                result = SolveResult.from_error(job.request, result_dict["error"])
            if (
                self._result_cache is not None
                and result.ok
                and not result.from_cache
                and result.cache_key
            ):
                # Shard caches are process-private; mirroring every fresh
                # result here keeps the parent's cache — the one that is
                # checkpointed to --cache-file — accumulating entries.
                self._result_cache.put(result.cache_key, result.to_dict())
            self.metrics.observe_shard_job(shard.index, failed=not result.ok)
            self._finish(job, result)

    def _on_shard_exit(self, shard: _Shard) -> None:
        """Pipe EOF: normal exit after drain, or a mid-job shard death."""
        if shard.exited.is_set():
            return
        shard.dead = True
        shard.exited.set()
        try:
            shard.conn.close()
        except OSError:  # pragma: no cover — race with the reader thread
            pass
        # Take single ownership of every unfinished job — executing,
        # in the pipe, or still parked in the outbox/overflow — by
        # popping them all from ``assigned``.  The sender drops any
        # parked item it later pulls for a job it no longer owns, so
        # nothing is retried twice or failed while its retry runs.
        orphans = list(shard.assigned.values())
        shard.assigned.clear()
        unexpected = bool(orphans) or not shard.stop_sent
        record_event(
            "shard_exit",
            shard=shard.index,
            pid=shard.pid,
            unexpected=unexpected,
            orphans=len(orphans),
        )
        if unexpected and not self.queue.draining:
            self._respawn(shard)
        # Release this slot's sender task: after a respawn (or a death
        # during drain) the dispatcher's stop sentinel goes to the
        # *replacement* shard's outbox, so without one here the old
        # sender would wait forever and stall ``join()``.  Parked items
        # ahead of the sentinel are disowned and dropped by the sender.
        self._outbox_put(shard, None)
        for job in orphans:
            self._reassign_or_fail(job, shard)

    def _respawn(self, shard: _Shard) -> None:
        """Replace a dead slot with a fresh process (within the budget)."""
        restarts = self._restarts.get(shard.index, 0)
        if restarts >= self.max_restarts_per_shard:
            return
        self._restarts[shard.index] = restarts + 1
        self.metrics.observe_shard_restart(shard.index)
        self.shards[shard.index] = self._spawn(shard.index)
        record_event("shard_respawn", shard=shard.index, restarts=restarts + 1)

    def _reassign_or_fail(self, job: ServerJob, shard: _Shard) -> None:
        """Fault policy for a job stranded on a dead shard: retry once.

        The re-dispatch is synchronous: the draining check and the
        outbox hand-off happen in the same event-loop slice, so a drain
        beginning concurrently cannot slip its stop sentinel in front of
        the retried job (which would strand it behind the sentinel and
        hang its client until the drain timeout).
        """
        can_retry = (
            self.retry_on_shard_death
            and job.retries < 1
            and not self.queue.draining
            and any(not candidate.dead for candidate in self.shards)
        )
        if can_retry:
            job.retries += 1
            job.started_at = None
            self.metrics.increment("jobs_retried")
            self.metrics.observe_shard_retry(shard.index)
            record_event("job_retry", job_id=job.job_id, shard=shard.index)
            self._dispatch(job)
            return
        self.metrics.observe_shard_job(shard.index, failed=True)
        self._finish(
            job,
            SolveResult.from_error(
                job.request,
                f"ServerError: shard {shard.index} (pid {shard.pid}) "
                "died while executing this job",
            ),
        )
