"""Blocking Python client for the solver server.

:class:`SolverClient` opens one TCP connection, speaks the
newline-delimited JSON protocol and exposes the operations as ordinary
method calls: :meth:`~SolverClient.solve` (optionally streaming anytime
updates to a callback), :meth:`~SolverClient.submit` /
:meth:`~SolverClient.wait` for fire-and-collect pipelining,
:meth:`~SolverClient.subscribe` to watch a running job, plus
:meth:`~SolverClient.stats`, :meth:`~SolverClient.ping` and
:meth:`~SolverClient.shutdown`.

Requests are multiplexed over the single connection: every call gets a
fresh request id, and a small frame pump reads the socket until the
awaited terminal frame arrives, stashing frames that belong to other
outstanding requests (e.g. results of earlier ``submit`` calls landing
out of order).  ``update`` frames are dispatched to the caller-supplied
callback as they arrive, *before* the final result — that is the
streaming anytime contract the end-to-end tests assert.

The client is synchronous and not thread-safe; use one client per
thread (the throughput benchmark does exactly that).
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.exceptions import AdmissionError, ProtocolError, ServerError
from repro.mqo.problem import MQOProblem
from repro.mqo.serialization import problem_to_dict
from repro.server import protocol
from repro.service.jobs import SolveRequest, SolveResult

__all__ = ["SolverClient"]

#: Accepted job specifications: a raw spec dictionary (any shape
#: understood by :func:`repro.service.jobs.request_from_spec`), a
#: problem object, or a fully-formed request.
SpecLike = Union[Dict[str, Any], MQOProblem, SolveRequest]

#: Callback receiving ``update`` frames (dictionaries with ``seq``,
#: ``elapsed_ms``, ``cost``, ``solver``, ``job_id``).
UpdateCallback = Callable[[Dict[str, Any]], None]


def _spec_from(spec: SpecLike, **overrides: Any) -> Dict[str, Any]:
    """Normalise any accepted spec shape into a wire dictionary.

    ``overrides`` (solver, budget_ms, seed, job_id, solvers, metadata)
    are applied on top when not ``None``.
    """
    if isinstance(spec, SolveRequest):
        payload = spec.to_dict()
    elif isinstance(spec, MQOProblem):
        payload = {"problem": problem_to_dict(spec)}
    elif isinstance(spec, Mapping):
        payload = dict(spec)
    else:
        raise ProtocolError(
            f"cannot build a job spec from {type(spec).__name__}; "
            "pass a dict, an MQOProblem or a SolveRequest"
        )
    for key, value in overrides.items():
        if value is not None:
            payload[key] = value
    return payload


class SolverClient:
    """One blocking connection to a :class:`~repro.server.app.SolverServer`.

    Parameters
    ----------
    host / port:
        Server address.
    client_name:
        Fairness bucket reported with every job (defaults to the
        server-assigned per-connection id when empty).
    timeout_s:
        Socket timeout applied to every read; calls that legitimately
        wait longer (big budgets, deep queues) need a larger value.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7337,
        client_name: str = "",
        timeout_s: float = 60.0,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.client_name = client_name
        self.max_frame_bytes = max_frame_bytes
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout_s)
        except OSError as exc:
            raise ServerError(f"cannot connect to {host}:{port}: {exc}") from exc
        self._reader = self._sock.makefile("rb")
        self._request_counter = 0
        self._stash: Dict[str, List[Dict[str, Any]]] = {}
        self.last_job_id: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Connection plumbing
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SolverClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _next_id(self) -> str:
        """A fresh request id for multiplexing."""
        self._request_counter += 1
        return f"r{self._request_counter}"

    def _send(self, frame: Dict[str, Any]) -> None:
        """Encode and transmit one request frame."""
        try:
            self._sock.sendall(protocol.encode_frame(frame, self.max_frame_bytes))
        except OSError as exc:
            raise ServerError(f"connection to {self.host}:{self.port} lost: {exc}") from exc

    def _read_frame(self) -> Dict[str, Any]:
        """Read and decode the next frame off the socket."""
        try:
            line = self._reader.readline(self.max_frame_bytes + 1)
        except socket.timeout as exc:
            # The read may have consumed part of a frame; the stream can
            # no longer be trusted, so fail the whole connection.
            self.close()
            raise ServerError(
                f"timed out waiting for a frame from {self.host}:{self.port}; "
                "connection closed"
            ) from exc
        except OSError as exc:
            raise ServerError(f"connection to {self.host}:{self.port} lost: {exc}") from exc
        if not line:
            raise ServerError(f"server {self.host}:{self.port} closed the connection")
        if not line.endswith(b"\n"):
            # A partial line means framing is lost — either the server's
            # frame exceeds this client's limit or the stream was cut
            # mid-frame.  Close rather than parse garbage forever.
            self.close()
            if len(line) > self.max_frame_bytes:
                raise ProtocolError(
                    f"server frame exceeds the client's {self.max_frame_bytes}-byte "
                    "limit; connection closed"
                )
            raise ServerError(
                f"connection to {self.host}:{self.port} cut mid-frame; connection closed"
            )
        return protocol.decode_frame(line, self.max_frame_bytes)

    @staticmethod
    def _raise_error_frame(frame: Dict[str, Any]) -> None:
        """Translate an ``error`` frame into the matching exception."""
        code = str(frame.get("code", "error"))
        message = str(frame.get("error", "unknown server error"))
        if code in ("queue_full", "client_quota", "draining", "budget", "backpressure"):
            raise AdmissionError(message, code=code)
        if code == "protocol":
            raise ProtocolError(message)
        raise ServerError(f"[{code}] {message}")

    def _pump(
        self,
        request_id: str,
        terminal_types: tuple,
        on_update: Optional[UpdateCallback] = None,
        on_frame: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Read frames until a terminal frame for ``request_id`` arrives.

        Frames addressed to other request ids are stashed for their own
        pump (pipelined submits).  ``error`` frames raise; ``update``
        frames go to ``on_update``; any other non-terminal frame for this
        request goes to ``on_frame`` (e.g. ``queued`` acks carrying the
        job id).
        """
        stashed = self._stash.get(request_id)
        while stashed:
            frame = stashed.pop(0)
            result = self._consume(frame, terminal_types, on_update, on_frame)
            if result is not None:
                if not stashed:
                    self._stash.pop(request_id, None)
                return result
        self._stash.pop(request_id, None)
        while True:
            frame = self._read_frame()
            frame_id = str(frame.get("id", ""))
            if frame_id != request_id:
                self._stash.setdefault(frame_id, []).append(frame)
                continue
            result = self._consume(frame, terminal_types, on_update, on_frame)
            if result is not None:
                return result

    def _consume(
        self,
        frame: Dict[str, Any],
        terminal_types: tuple,
        on_update: Optional[UpdateCallback],
        on_frame: Optional[Callable[[Dict[str, Any]], None]],
    ) -> Optional[Dict[str, Any]]:
        """Process one frame of the awaited request; return it if terminal."""
        frame_type = frame.get("type")
        if frame_type == "error":
            self._raise_error_frame(frame)
        if frame_type in terminal_types:
            return frame
        if frame_type == "update" and on_update is not None:
            on_update(frame)
        elif on_frame is not None:
            on_frame(frame)
        return None

    # ------------------------------------------------------------------ #
    # Protocol operations
    # ------------------------------------------------------------------ #
    def hello(self) -> Dict[str, Any]:
        """The server's identity frame (name, version, solvers, limits)."""
        request_id = self._next_id()
        self._send({"op": "hello", "id": request_id})
        return self._pump(request_id, ("hello",))

    def ping(self) -> bool:
        """Round-trip liveness probe."""
        request_id = self._next_id()
        self._send({"op": "ping", "id": request_id})
        return self._pump(request_id, ("pong",))["type"] == "pong"

    def _job_request(
        self,
        op: str,
        spec: SpecLike,
        solver: Optional[str],
        budget_ms: Optional[float],
        seed: Optional[int],
        job_id: Optional[str],
        priority: Optional[str],
        stream: bool,
    ) -> str:
        """Send a solve/submit request; returns its request id."""
        payload = _spec_from(
            spec, solver=solver, time_budget_ms=budget_ms, seed=seed, job_id=job_id
        )
        frame: Dict[str, Any] = {"op": op, "id": self._next_id(), "spec": payload}
        if priority is not None:
            frame["priority"] = priority
        if stream:
            frame["stream"] = True
        if self.client_name:
            frame["client"] = self.client_name
        self._send(frame)
        return frame["id"]

    def solve(
        self,
        spec: SpecLike,
        solver: Optional[str] = None,
        budget_ms: Optional[float] = None,
        seed: Optional[int] = None,
        job_id: Optional[str] = None,
        priority: Optional[str] = None,
        on_update: Optional[UpdateCallback] = None,
    ) -> SolveResult:
        """Solve one job and block until its result.

        With ``on_update`` the request subscribes to the job's anytime
        stream and the callback receives every incremental improvement
        before this method returns the final :class:`SolveResult`.
        """
        request_id = self._job_request(
            "solve", spec, solver, budget_ms, seed, job_id, priority,
            stream=on_update is not None,
        )

        def capture_ack(frame: Dict[str, Any]) -> None:
            if frame.get("type") == "queued":
                self.last_job_id = frame.get("job_id")

        frame = self._pump(request_id, ("result",), on_update=on_update, on_frame=capture_ack)
        return SolveResult.from_dict(frame["result"])

    def submit(
        self,
        spec: SpecLike,
        solver: Optional[str] = None,
        budget_ms: Optional[float] = None,
        seed: Optional[int] = None,
        job_id: Optional[str] = None,
        priority: Optional[str] = None,
    ) -> str:
        """Enqueue one job fire-and-forget; returns the server job id.

        Raises :class:`~repro.exceptions.AdmissionError` when the server
        applies backpressure.
        """
        request_id = self._job_request(
            "submit", spec, solver, budget_ms, seed, job_id, priority, stream=False
        )
        frame = self._pump(request_id, ("queued",))
        self.last_job_id = str(frame["job_id"])
        return self.last_job_id

    def wait(self, job_id: str) -> SolveResult:
        """Block until ``job_id`` finishes and return its result."""
        request_id = self._next_id()
        self._send({"op": "wait", "id": request_id, "job_id": job_id})
        frame = self._pump(request_id, ("result",))
        return SolveResult.from_dict(frame["result"])

    def subscribe(self, job_id: str, on_update: Optional[UpdateCallback] = None) -> SolveResult:
        """Attach to a running job's anytime stream until it finishes.

        ``on_update`` receives each incremental improvement; the final
        :class:`SolveResult` is returned.  Subscribing to an already
        finished job returns its result immediately (no updates).
        """
        request_id = self._next_id()
        self._send({"op": "subscribe", "id": request_id, "job_id": job_id})
        frame = self._pump(request_id, ("result",), on_update=on_update)
        return SolveResult.from_dict(frame["result"])

    def stats(self) -> Dict[str, Any]:
        """The server's metrics snapshot."""
        request_id = self._next_id()
        self._send({"op": "stats", "id": request_id})
        return self._pump(request_id, ("stats",))["stats"]

    def metrics_text(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        request_id = self._next_id()
        self._send({"op": "metrics", "id": request_id})
        return str(self._pump(request_id, ("metrics",))["text"])

    def health(self) -> Dict[str, Any]:
        """The server's structured liveness state (``health`` op).

        Carries the overall ``ok|degraded|draining`` verdict, per-shard
        state on the sharded tier, and the recent lifecycle-event tail.
        """
        request_id = self._next_id()
        self._send({"op": "health", "id": request_id})
        return self._pump(request_id, ("health",))["health"]

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        """Ask the server to shut down (gracefully draining by default)."""
        request_id = self._next_id()
        self._send({"op": "shutdown", "id": request_id, "drain": drain})
        return self._pump(request_id, ("draining",))
