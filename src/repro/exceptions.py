"""Exception hierarchy for the ``repro`` package.

All exceptions raised by the library derive from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing the failure domain (problem modelling, QUBO
construction, embedding, device simulation, solving).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidProblemError",
    "InvalidSolutionError",
    "QUBOError",
    "TopologyError",
    "EmbeddingError",
    "EmbeddingNotFoundError",
    "DeviceError",
    "DeviceCapacityError",
    "SolverError",
    "TimeBudgetExceededError",
    "ServiceError",
    "UnknownSolverError",
    "DuplicateSolverError",
    "ServerError",
    "ProtocolError",
    "AdmissionError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class InvalidProblemError(ReproError, ValueError):
    """An MQO problem instance violates a structural invariant.

    Examples: a query without plans, a plan referenced by a savings entry
    that does not exist, a negative execution cost, or a savings entry
    between two plans of the same query.
    """


class InvalidSolutionError(ReproError, ValueError):
    """A candidate MQO solution is structurally invalid.

    A valid solution selects exactly one plan per query; anything else
    (missing query, multiple plans for one query, unknown plan) raises
    this error when strict validation is requested.
    """


class QUBOError(ReproError, ValueError):
    """A QUBO model is malformed (bad variable labels, non-finite weights)."""


class TopologyError(ReproError, ValueError):
    """A hardware-topology operation failed (unknown qubit, bad coordinates)."""


class EmbeddingError(ReproError, ValueError):
    """A minor-embedding is invalid for the given source/target graphs."""


class EmbeddingNotFoundError(EmbeddingError):
    """No embedding could be constructed within the available qubits."""


class DeviceError(ReproError, RuntimeError):
    """The (simulated) annealing device rejected a request."""


class DeviceCapacityError(DeviceError):
    """The physical problem does not fit onto the device topology."""


class SolverError(ReproError, RuntimeError):
    """A classical solver failed to produce a result."""


class TimeBudgetExceededError(SolverError):
    """A solver exceeded its configured time budget without any solution."""


class ServiceError(ReproError, RuntimeError):
    """The solver service (registry, portfolio, batch executor) failed."""


class UnknownSolverError(ServiceError, KeyError):
    """A solver name was requested that is not present in the registry."""

    def __str__(self) -> str:  # KeyError quotes its args; keep the message readable
        return RuntimeError.__str__(self)


class DuplicateSolverError(ServiceError):
    """A solver name was registered twice without ``replace=True``."""


class ServerError(ServiceError):
    """The solver server (or its client) failed to process a request."""


class ProtocolError(ServerError, ValueError):
    """A wire frame violates the solver-server protocol.

    Raised for unparsable JSON, frames that are not objects, oversized
    frames, unknown operations and missing/ill-typed required fields.
    """


class AdmissionError(ServerError):
    """The server refused to enqueue a job (admission control).

    The ``code`` attribute distinguishes the reason: ``"queue_full"``
    (global backpressure), ``"client_quota"`` (per-client fairness cap),
    ``"draining"`` (graceful shutdown in progress) or ``"budget"`` (the
    requested time budget exceeds the server's cap).
    """

    def __init__(self, message: str, code: str = "queue_full") -> None:
        super().__init__(message)
        self.code = code
