"""Query clustering based on work-sharing structure.

The paper's physical mapping exploits a clustering of queries "based on
structural properties in a preprocessing step such that queries in
different clusters are less likely to share intermediate results"
(Section 5, citing Le et al.).  This module provides that preprocessing
step: queries become nodes of a weighted graph whose edge weights are the
total sharing savings between their plans; communities of that graph are
the query clusters.

Two uses inside this library:

* the clustered embedding pattern places one TRIAD per cluster,
* the decomposition solver (:mod:`repro.core.decomposition`) solves one
  QUBO per cluster, which is the paper's proposed route to problems that
  exceed the qubit budget.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.exceptions import InvalidProblemError
from repro.mqo.problem import MQOProblem

__all__ = [
    "query_sharing_graph",
    "cluster_queries",
    "split_oversized_clusters",
    "cross_cluster_savings",
]


def query_sharing_graph(problem: MQOProblem) -> nx.Graph:
    """The weighted query-interaction graph.

    Nodes are query indices; an edge carries the accumulated savings
    between plans of the two queries.
    """
    graph = nx.Graph()
    graph.add_nodes_from(query.index for query in problem.queries)
    for (p1, p2), saving in problem.interaction_pairs():
        q1 = problem.query_of_plan(p1)
        q2 = problem.query_of_plan(p2)
        if q1 == q2:
            continue
        if graph.has_edge(q1, q2):
            graph[q1][q2]["weight"] += saving
        else:
            graph.add_edge(q1, q2, weight=saving)
    return graph


def split_oversized_clusters(
    clusters: Sequence[Sequence[int]], max_cluster_size: int
) -> List[List[int]]:
    """Split clusters larger than ``max_cluster_size`` into contiguous chunks."""
    if max_cluster_size <= 0:
        raise InvalidProblemError(f"max_cluster_size must be positive, got {max_cluster_size}")
    result: List[List[int]] = []
    for cluster in clusters:
        members = list(cluster)
        for start in range(0, len(members), max_cluster_size):
            result.append(members[start : start + max_cluster_size])
    return result


def cluster_queries(
    problem: MQOProblem,
    max_cluster_size: int | None = None,
) -> List[List[int]]:
    """Partition the queries into work-sharing clusters.

    Communities of the query-sharing graph are found with greedy
    modularity maximisation; queries that share nothing with anyone form
    singleton clusters.  When ``max_cluster_size`` is given, larger
    communities are split so every cluster respects the limit (needed
    when each cluster must fit a device sub-region or sub-QUBO).

    The returned clusters are sorted by their smallest query index and
    together cover every query exactly once.
    """
    graph = query_sharing_graph(problem)
    if graph.number_of_edges() == 0:
        clusters: List[List[int]] = [[query.index] for query in problem.queries]
    else:
        communities = nx.algorithms.community.greedy_modularity_communities(
            graph, weight="weight"
        )
        clusters = [sorted(community) for community in communities]
    if max_cluster_size is not None:
        clusters = split_oversized_clusters(clusters, max_cluster_size)
    clusters.sort(key=lambda cluster: cluster[0])

    covered = [q for cluster in clusters for q in cluster]
    if sorted(covered) != list(range(problem.num_queries)):
        raise InvalidProblemError("clustering failed to cover every query exactly once")
    return clusters


def cross_cluster_savings(
    problem: MQOProblem, clusters: Sequence[Sequence[int]]
) -> Tuple[float, float]:
    """Savings volume inside versus across clusters.

    Returns ``(intra, inter)`` — the total savings between plans whose
    queries share a cluster and the total savings crossing cluster
    boundaries.  A good clustering keeps ``inter`` small; the
    decomposition solver can only realise intra-cluster savings exactly.
    """
    cluster_of: Dict[int, int] = {}
    for index, cluster in enumerate(clusters):
        for query in cluster:
            cluster_of[query] = index
    intra = 0.0
    inter = 0.0
    for (p1, p2), saving in problem.interaction_pairs():
        q1 = problem.query_of_plan(p1)
        q2 = problem.query_of_plan(p2)
        if cluster_of.get(q1) == cluster_of.get(q2):
            intra += saving
        else:
            inter += saving
    return intra, inter
