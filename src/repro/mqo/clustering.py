"""Query clustering based on work-sharing structure (array-native).

The paper's physical mapping exploits a clustering of queries "based on
structural properties in a preprocessing step such that queries in
different clusters are less likely to share intermediate results"
(Section 5, citing Le et al.).  This module provides that preprocessing
step over the columnar :class:`~repro.mqo.arrays.ProblemArrays` view:

1. the savings triplets are aggregated into weighted query-pair edges in
   one vectorised pass (:meth:`ProblemArrays.query_edges`),
2. connected components of that query graph are found with a union-find
   sweep — queries in different components provably share nothing, so
   components are the ideal cut,
3. components larger than the size cap are split by a greedy heavy-edge
   agglomeration (the query-intersection-graph style partition): each
   chunk grows from its strongest remaining member by repeatedly pulling
   in the neighbour with the largest total savings into the chunk, so
   heavy sharing edges stay inside chunks and only light edges are cut.

The old networkx greedy-modularity pass scaled as the community
algorithm's superlinear cost over a Python object graph and took minutes
at 50k plans; this path is a few milliseconds of NumPy plus an
O(E log E) Python sweep over the (much smaller) query-edge list.

Two uses inside this library:

* the clustered embedding pattern places one TRIAD per cluster,
* the decomposition solver (:mod:`repro.core.decomposition`) solves one
  QUBO per cluster, which is the paper's proposed route to problems that
  exceed the qubit budget.

:func:`query_sharing_graph` (the networkx view) is kept for inspection
and compatibility; the clustering itself no longer builds it.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import InvalidProblemError
from repro.mqo.problem import MQOProblem

__all__ = [
    "query_sharing_graph",
    "query_components",
    "cluster_queries",
    "cluster_edges",
    "internal_weights",
    "split_oversized_clusters",
    "split_component",
    "cross_cluster_savings",
]


def query_sharing_graph(problem: MQOProblem) -> nx.Graph:
    """The weighted query-interaction graph (networkx view, for inspection).

    Nodes are query indices; an edge carries the accumulated savings
    between plans of the two queries.
    """
    graph = nx.Graph()
    graph.add_nodes_from(query.index for query in problem.queries)
    q1, q2, weight = problem.arrays().query_edges()
    for a, b, w in zip(q1.tolist(), q2.tolist(), weight.tolist()):
        graph.add_edge(a, b, weight=w)
    return graph


# ---------------------------------------------------------------------- #
# Connected components (union-find over the query-edge list)
# ---------------------------------------------------------------------- #
def _find(parent: np.ndarray, node: int) -> int:
    """Union-find root of ``node`` with path halving."""
    while parent[node] != node:
        parent[node] = parent[parent[node]]
        node = parent[node]
    return int(node)


def query_components(problem: MQOProblem) -> List[List[int]]:
    """Connected components of the query-sharing graph, as sorted lists.

    Components are returned sorted by their smallest query index;
    queries that share nothing with anyone form singleton components.
    """
    arrays = problem.arrays()
    parent = np.arange(arrays.num_queries, dtype=np.int64)
    q1, q2, _ = arrays.query_edges()
    for a, b in zip(q1.tolist(), q2.tolist()):
        root_a = _find(parent, a)
        root_b = _find(parent, b)
        if root_a != root_b:
            if root_a < root_b:  # smaller index wins: deterministic roots
                parent[root_b] = root_a
            else:
                parent[root_a] = root_b
    members: Dict[int, List[int]] = {}
    for node in range(arrays.num_queries):
        members.setdefault(_find(parent, node), []).append(node)
    return [members[root] for root in sorted(members)]


# ---------------------------------------------------------------------- #
# Size-capped splitting
# ---------------------------------------------------------------------- #
def split_oversized_clusters(
    clusters: Sequence[Sequence[int]], max_cluster_size: int
) -> List[List[int]]:
    """Split clusters larger than ``max_cluster_size`` into contiguous chunks."""
    if max_cluster_size <= 0:
        raise InvalidProblemError(f"max_cluster_size must be positive, got {max_cluster_size}")
    result: List[List[int]] = []
    for cluster in clusters:
        members = list(cluster)
        for start in range(0, len(members), max_cluster_size):
            result.append(members[start : start + max_cluster_size])
    return result


def split_component(
    members: Sequence[int],
    adjacency: Dict[int, Dict[int, float]],
    max_cluster_size: int,
) -> List[List[int]]:
    """Split one connected component into size-capped chunks.

    Greedy heavy-edge agglomeration: each chunk is seeded with the
    remaining member of the largest total edge weight (ties to the
    smallest index, so the split is deterministic) and grown by
    repeatedly absorbing the unassigned neighbour with the largest total
    weight into the chunk.  Heavy edges end up inside chunks; only the
    lighter fringe is cut.
    """
    if max_cluster_size <= 0:
        raise InvalidProblemError(f"max_cluster_size must be positive, got {max_cluster_size}")
    remaining = set(members)
    strength = {
        node: sum(adjacency.get(node, {}).values()) for node in members
    }
    # Seeds in strength-descending order, smallest index first on ties.
    seed_order = sorted(members, key=lambda node: (-strength[node], node))
    chunks: List[List[int]] = []
    for seed in seed_order:
        if seed not in remaining:
            continue
        chunk = [seed]
        remaining.discard(seed)
        # Max-heap of (weight-to-chunk, node); lazily updated — stale
        # entries are skipped, improved ones pushed again.
        gain: Dict[int, float] = {}
        heap: List[Tuple[float, int]] = []
        for neighbour, weight in adjacency.get(seed, {}).items():
            if neighbour in remaining:
                gain[neighbour] = weight
                heapq.heappush(heap, (-weight, neighbour))
        while len(chunk) < max_cluster_size and heap:
            negative_weight, node = heapq.heappop(heap)
            if node not in remaining or gain.get(node, 0.0) != -negative_weight:
                continue  # stale entry
            chunk.append(node)
            remaining.discard(node)
            for neighbour, weight in adjacency.get(node, {}).items():
                if neighbour in remaining:
                    gain[neighbour] = gain.get(neighbour, 0.0) + weight
                    heapq.heappush(heap, (-gain[neighbour], neighbour))
        chunks.append(sorted(chunk))
    return chunks


def _component_adjacency(
    q1: np.ndarray, q2: np.ndarray, weight: np.ndarray
) -> Dict[int, Dict[int, float]]:
    """Adjacency dictionaries of the aggregated query graph."""
    adjacency: Dict[int, Dict[int, float]] = {}
    for a, b, w in zip(q1.tolist(), q2.tolist(), weight.tolist()):
        adjacency.setdefault(a, {})[b] = w
        adjacency.setdefault(b, {})[a] = w
    return adjacency


# ---------------------------------------------------------------------- #
# The partitioner
# ---------------------------------------------------------------------- #
def cluster_queries(
    problem: MQOProblem,
    max_cluster_size: int | None = None,
) -> List[List[int]]:
    """Partition the queries into work-sharing clusters.

    Clusters are the connected components of the query-sharing graph;
    queries that share nothing with anyone form singleton clusters.
    When ``max_cluster_size`` is given, larger components are split by
    greedy heavy-edge agglomeration (:func:`split_component`) so every
    cluster respects the limit (needed when each cluster must fit a
    device sub-region or sub-QUBO).

    The returned clusters are sorted by their smallest query index
    (the *canonical* cluster order — callers that solve in a different
    order must record that order separately, see
    :class:`~repro.core.decomposition.DecompositionResult`) and together
    cover every query exactly once.
    """
    if max_cluster_size is not None and max_cluster_size <= 0:
        raise InvalidProblemError(f"max_cluster_size must be positive, got {max_cluster_size}")
    components = query_components(problem)
    if max_cluster_size is None:
        clusters = components
    else:
        oversized = [c for c in components if len(c) > max_cluster_size]
        clusters = [c for c in components if len(c) <= max_cluster_size]
        if oversized:
            q1, q2, weight = problem.arrays().query_edges()
            adjacency = _component_adjacency(q1, q2, weight)
            for component in oversized:
                clusters.extend(split_component(component, adjacency, max_cluster_size))
    clusters.sort(key=lambda cluster: cluster[0])

    covered = [q for cluster in clusters for q in cluster]
    if sorted(covered) != list(range(problem.num_queries)):
        raise InvalidProblemError("clustering failed to cover every query exactly once")
    return clusters


def _cluster_of_queries(
    problem: MQOProblem, clusters: Sequence[Sequence[int]]
) -> np.ndarray:
    """int64[|Q|] — cluster index per query (``len(clusters)`` = unassigned)."""
    cluster_of = np.full(problem.num_queries, len(clusters), dtype=np.int64)
    for index, cluster in enumerate(clusters):
        for query in cluster:
            if not 0 <= query < problem.num_queries:
                raise InvalidProblemError(f"cluster {index} names unknown query {query}")
            cluster_of[query] = index
    return cluster_of


def internal_weights(
    problem: MQOProblem, clusters: Sequence[Sequence[int]]
) -> np.ndarray:
    """float64[len(clusters)] — total savings internal to each cluster.

    One segmented pass over the savings triplets: a pair contributes to
    cluster ``k`` exactly when both its endpoint queries live in cluster
    ``k``.  Per-cluster sums accumulate in savings insertion order —
    bit-identical to the legacy per-cluster Python loop over
    ``problem.interaction_pairs()``.
    """
    arrays = problem.arrays()
    num_clusters = len(clusters)
    if arrays.num_savings == 0 or num_clusters == 0:
        return np.zeros(num_clusters)
    cluster_of = _cluster_of_queries(problem, clusters)
    qa, qb = arrays.savings_query_pair
    ca = cluster_of[qa]
    mask = ca == cluster_of[qb]
    # The sentinel bucket (queries outside every cluster) is sliced off.
    weights = np.bincount(
        ca[mask], weights=arrays.savings_value[mask], minlength=num_clusters + 1
    )
    return weights[:num_clusters]


def cluster_edges(
    problem: MQOProblem, clusters: Sequence[Sequence[int]]
) -> List[Tuple[int, int]]:
    """Cluster pairs connected by at least one savings pair.

    The returned edges are ``(a, b)`` with ``a < b`` (cluster indices in
    the given order), sorted — this is the dependency structure the wave
    scheduler conditions on: clusters without an edge can be solved in
    parallel with no loss versus the sequential schedule.
    """
    arrays = problem.arrays()
    if arrays.num_savings == 0:
        return []
    cluster_of = _cluster_of_queries(problem, clusters)
    qa, qb = arrays.savings_query_pair
    ca = cluster_of[qa]
    cb = cluster_of[qb]
    mask = (ca != cb) & (ca < len(clusters)) & (cb < len(clusters))
    if not mask.any():
        return []
    lo = np.minimum(ca[mask], cb[mask])
    hi = np.maximum(ca[mask], cb[mask])
    keys = np.unique(lo * np.int64(len(clusters)) + hi)
    return [
        (int(key // len(clusters)), int(key % len(clusters))) for key in keys
    ]


def cross_cluster_savings(
    problem: MQOProblem, clusters: Sequence[Sequence[int]]
) -> Tuple[float, float]:
    """Savings volume inside versus across clusters.

    Returns ``(intra, inter)`` — the total savings between plans whose
    queries share a cluster and the total savings crossing cluster
    boundaries (pairs touching a query outside every cluster count as
    crossing).  A good clustering keeps ``inter`` small; the
    decomposition solver can only realise intra-cluster savings exactly.
    """
    arrays = problem.arrays()
    if arrays.num_savings == 0:
        return 0.0, 0.0
    cluster_of = _cluster_of_queries(problem, clusters)
    qa, qb = arrays.savings_query_pair
    ca = cluster_of[qa]
    mask = (ca == cluster_of[qb]) & (ca < len(clusters))
    intra = float(arrays.savings_value[mask].sum())
    inter = float(arrays.savings_value[~mask].sum())
    return intra, inter
