"""JSON-friendly (de)serialization of MQO problems and solutions.

Instances are persisted as plain dictionaries so experiment suites can
save generated workloads to disk and reload them for exact reruns.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from repro.exceptions import InvalidProblemError
from repro.mqo.problem import MQOProblem, MQOSolution

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "solution_to_dict",
    "solution_from_dict",
    "save_problem",
    "load_problem",
]

_FORMAT_VERSION = 1


def problem_to_dict(problem: MQOProblem) -> Dict[str, Any]:
    """Convert an :class:`MQOProblem` into a JSON-serialisable dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": problem.name,
        "plans_per_query": [
            [problem.plan(p).cost for p in query.plan_indices] for query in problem.queries
        ],
        "savings": [
            {"plans": [p1, p2], "value": value}
            for (p1, p2), value in sorted(problem.savings.items())
        ],
    }


def problem_from_dict(data: Dict[str, Any]) -> MQOProblem:
    """Rebuild an :class:`MQOProblem` from :func:`problem_to_dict` output."""
    version = data.get("format_version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise InvalidProblemError(f"unsupported MQO problem format version {version}")
    try:
        plans_per_query = data["plans_per_query"]
        savings_entries = data.get("savings", [])
    except KeyError as exc:
        raise InvalidProblemError(f"missing field in MQO problem data: {exc}") from exc
    savings = {}
    for entry in savings_entries:
        p1, p2 = entry["plans"]
        savings[(int(p1), int(p2))] = float(entry["value"])
    return MQOProblem(plans_per_query, savings, name=data.get("name", ""))


def solution_to_dict(solution: MQOSolution) -> Dict[str, Any]:
    """Convert a solution into a JSON-serialisable dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "selected_plans": sorted(solution.selected_plans),
        "cost": solution.cost,
        "is_valid": solution.is_valid,
    }


def solution_from_dict(problem: MQOProblem, data: Dict[str, Any]) -> MQOSolution:
    """Rebuild a solution (against ``problem``) from its dictionary form."""
    try:
        selected = data["selected_plans"]
    except KeyError as exc:
        raise InvalidProblemError("missing field 'selected_plans' in solution data") from exc
    return problem.solution_from_selection(int(p) for p in selected)


def save_problem(problem: MQOProblem, path: str | Path) -> Path:
    """Write a problem instance to ``path`` as JSON and return the path."""
    path = Path(path)
    path.write_text(json.dumps(problem_to_dict(problem), indent=2))
    return path


def load_problem(path: str | Path) -> MQOProblem:
    """Load a problem instance previously written by :func:`save_problem`."""
    return problem_from_dict(json.loads(Path(path).read_text()))
