"""JSON-friendly (de)serialization of MQO problems and solutions.

Instances are persisted as plain dictionaries so experiment suites can
save generated workloads to disk and reload them for exact reruns.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.exceptions import InvalidProblemError
from repro.mqo.problem import MQOProblem, MQOSolution

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "solution_to_dict",
    "solution_from_dict",
    "save_problem",
    "load_problem",
    "canonical_problem_dict",
    "canonical_problem_hash",
    "exact_problem_token",
]

_FORMAT_VERSION = 1


def problem_to_dict(problem: MQOProblem) -> Dict[str, Any]:
    """Convert an :class:`MQOProblem` into a JSON-serialisable dictionary.

    Reads the problem's columnar arrays instead of the per-plan objects:
    plan costs come out of one slice per query and the savings triplets
    from three column exports, which keeps serialising large workloads
    (the JSONL emitters, the exact problem token) off the object model.
    """
    arrays = problem.arrays()
    costs = arrays.plan_cost.tolist()
    offsets = arrays.query_offsets.tolist()
    return {
        "format_version": _FORMAT_VERSION,
        "name": problem.name,
        "plans_per_query": [
            costs[offsets[q] : offsets[q + 1]] for q in range(arrays.num_queries)
        ],
        "savings": [
            {"plans": [p1, p2], "value": value}
            for p1, p2, value in sorted(
                zip(
                    arrays.savings_p1.tolist(),
                    arrays.savings_p2.tolist(),
                    arrays.savings_value.tolist(),
                )
            )
        ],
    }


def problem_from_dict(data: Dict[str, Any]) -> MQOProblem:
    """Rebuild an :class:`MQOProblem` from :func:`problem_to_dict` output."""
    version = data.get("format_version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise InvalidProblemError(f"unsupported MQO problem format version {version}")
    try:
        plans_per_query = data["plans_per_query"]
        savings_entries = data.get("savings", [])
    except KeyError as exc:
        raise InvalidProblemError(f"missing field in MQO problem data: {exc}") from exc
    savings = {}
    for entry in savings_entries:
        p1, p2 = entry["plans"]
        savings[(int(p1), int(p2))] = float(entry["value"])
    return MQOProblem(plans_per_query, savings, name=data.get("name", ""))


#: Backstop on the individualization search tree; only pathologically
#: symmetric instances ever branch more than a handful of times.
_MAX_CANONICAL_LEAVES = 2048


def _partner_entries(problem: MQOProblem) -> List[List[Tuple[int, float]]]:
    """Per-plan ``(partner, rounded saving)`` lists from the CSR adjacency.

    Precomputed once per canonicalisation so the refinement loop never
    re-rounds savings or walks the partner dictionaries: the refinement
    visits every plan's partners once per iteration per search branch,
    and the rounding/dict overhead dominated the canonical hash on large
    instances.
    """
    arrays = problem.arrays()
    indptr = arrays.adj_indptr.tolist()
    indices = arrays.adj_indices.tolist()
    values = arrays.adj_values.tolist()
    return [
        [
            (indices[slot], round(values[slot], 12))
            for slot in range(indptr[plan], indptr[plan + 1])
        ]
        for plan in range(arrays.num_plans)
    ]


def _refine_colors(
    problem: MQOProblem,
    colors: Dict[int, int],
    partner_entries: List[List[Tuple[int, float]]] | None = None,
) -> Dict[int, int]:
    """Colour refinement (Weisfeiler-Leman style) to the fixpoint.

    Each plan's colour is joined with the sorted multiset of its
    ``(partner colour, saving)`` pairs and the joint signatures are
    re-ranked, until the partition stops refining.  Ranks are a pure
    function of problem structure, never of the plan enumeration.
    """
    if partner_entries is None:
        partner_entries = _partner_entries(problem)
    num_colors = len(set(colors.values()))
    while True:
        signatures = {
            plan: (
                colors[plan],
                tuple(sorted((colors[partner], saving) for partner, saving in entries)),
            )
            for plan, entries in enumerate(partner_entries)
        }
        ranks = {
            signature: rank for rank, signature in enumerate(sorted(set(signatures.values())))
        }
        colors = {plan_index: ranks[signature] for plan_index, signature in signatures.items()}
        if len(ranks) == num_colors:
            return colors
        num_colors = len(ranks)


def _first_tie_class(problem: MQOProblem, colors: Dict[int, int]) -> List[int]:
    """The lowest-colour group of same-query plans sharing a colour.

    Picking the class by colour value keeps the choice invariant to the
    plan enumeration (colours are structural ranks).
    """
    classes: Dict[Tuple[int, int], List[int]] = {}
    for query in problem.queries:
        for plan_index in query.plan_indices:
            classes.setdefault((colors[plan_index], query.index), []).append(plan_index)
    ties = [group for group in classes.values() if len(group) > 1]
    if not ties:
        return []
    return min(ties, key=lambda group: colors[group[0]])


def _mapping_from_colors(problem: MQOProblem, colors: Dict[int, int]) -> Dict[int, int]:
    mapping: Dict[int, int] = {}
    next_index = 0
    for query in problem.queries:
        for plan_index in sorted(query.plan_indices, key=lambda p: colors[p]):
            mapping[plan_index] = next_index
            next_index += 1
    return mapping


def _form_key(problem: MQOProblem, mapping: Dict[int, int]) -> Tuple:
    """Comparable fingerprint of the savings structure under ``mapping``
    (the plan costs are already fixed by the colour order)."""
    return tuple(
        sorted(
            (*sorted((mapping[p1], mapping[p2])), round(value, 12))
            for (p1, p2), value in problem.savings.items()
        )
    )


def _canonical_plan_order(problem: MQOProblem) -> Dict[int, int]:
    """Map every global plan index to its canonical global index.

    Canonicalisation via individualization-refinement: colours start
    from ``(query, cost)`` and are refined to the fixpoint; while any
    two same-query plans stay tied, each member of the lowest tie class
    is individualized in turn and the search recurses, keeping the
    lexicographically smallest resulting savings structure.  Branching
    (rather than breaking ties by input order) is what makes the result
    invariant under *correlated* symmetries, where swapping one tied
    pair is only an automorphism together with swapping another.

    The search is exhaustive up to :data:`_MAX_CANONICAL_LEAVES` leaves;
    beyond that (astronomically symmetric instances) the smallest form
    found so far is used, making the hash best-effort there.
    """
    initial_ranks = {
        key: rank
        for rank, key in enumerate(
            sorted({(plan.query_index, round(plan.cost, 12)) for plan in problem.plans})
        )
    }
    start = {
        plan.index: initial_ranks[(plan.query_index, round(plan.cost, 12))]
        for plan in problem.plans
    }

    best: List[Tuple[Tuple, Dict[int, int]]] = []
    leaves = [0]
    partner_entries = _partner_entries(problem)

    def search(colors: Dict[int, int]) -> None:
        if leaves[0] >= _MAX_CANONICAL_LEAVES:
            return
        colors = _refine_colors(problem, colors, partner_entries)
        ties = _first_tie_class(problem, colors)
        if not ties:
            leaves[0] += 1
            mapping = _mapping_from_colors(problem, colors)
            key = _form_key(problem, mapping)
            if not best or key < best[0][0]:
                best[:] = [(key, mapping)]
            return
        fresh_color = max(colors.values()) + 1
        for plan_index in ties:
            branched = dict(colors)
            branched[plan_index] = fresh_color
            search(branched)

    search(start)
    assert best, "canonical search always produces at least one leaf"
    return best[0][1]


def canonical_problem_dict(problem: MQOProblem) -> Dict[str, Any]:
    """A canonical, order-independent dictionary form of ``problem``.

    Unlike :func:`problem_to_dict` the result ignores the instance name
    and all labels, and renumbers plans within each query into their
    canonical order, so structurally identical problems produce identical
    dictionaries regardless of how their plans were enumerated.
    """
    mapping = _canonical_plan_order(problem)
    inverse = {new: old for old, new in mapping.items()}
    plans_per_query: List[List[float]] = []
    cursor = 0
    for query in problem.queries:
        costs = [
            round(problem.plan_cost(inverse[cursor + offset]), 12)
            for offset in range(query.num_plans)
        ]
        plans_per_query.append(costs)
        cursor += query.num_plans
    savings = sorted(
        (
            [*sorted((mapping[p1], mapping[p2])), round(value, 12)]
            for (p1, p2), value in problem.savings.items()
        )
    )
    return {
        "format_version": _FORMAT_VERSION,
        "plans_per_query": plans_per_query,
        "savings": savings,
    }


def canonical_problem_hash(problem: MQOProblem) -> str:
    """SHA-256 hex digest of :func:`canonical_problem_dict`.

    This is the key used by the service-layer result cache: two problems
    hash equally iff they have the same queries, plan costs and savings
    structure (names, labels and plan enumeration order do not matter).
    """
    payload = json.dumps(
        canonical_problem_dict(problem), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def exact_problem_token(problem: MQOProblem) -> str:
    """SHA-256 fingerprint of the problem's *concrete* plan layout.

    Unlike :func:`canonical_problem_hash` this is **not** invariant to
    the plan enumeration order: two relabel-equivalent problems whose
    plans are listed differently get different tokens.  Used wherever an
    artefact is tied to concrete plan indices — prepared pipelines,
    in-batch deduplication — where serving a merely isomorphic instance
    would mis-attribute plan selections.  The instance name is ignored.
    """
    payload = {
        key: value for key, value in problem_to_dict(problem).items() if key != "name"
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def solution_to_dict(solution: MQOSolution) -> Dict[str, Any]:
    """Convert a solution into a JSON-serialisable dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "selected_plans": sorted(solution.selected_plans),
        "cost": solution.cost,
        "is_valid": solution.is_valid,
    }


def solution_from_dict(problem: MQOProblem, data: Dict[str, Any]) -> MQOSolution:
    """Rebuild a solution (against ``problem``) from its dictionary form."""
    try:
        selected = data["selected_plans"]
    except KeyError as exc:
        raise InvalidProblemError("missing field 'selected_plans' in solution data") from exc
    return problem.solution_from_selection(int(p) for p in selected)


def save_problem(problem: MQOProblem, path: str | Path) -> Path:
    """Write a problem instance to ``path`` as JSON and return the path."""
    path = Path(path)
    path.write_text(json.dumps(problem_to_dict(problem), indent=2))
    return path


def load_problem(path: str | Path) -> MQOProblem:
    """Load a problem instance previously written by :func:`save_problem`."""
    return problem_from_dict(json.loads(Path(path).read_text()))
