"""Synthetic MQO workload generators.

Three families of instances are provided:

``generate_random_problem``
    Fully random instances: arbitrary sharing pairs with a configurable
    density.  Useful for correctness tests and for stressing solvers.

``generate_clustered_problem``
    Instances organised as ``n`` clusters of ``m`` queries with ``l``
    plans each; sharing is dense inside a cluster and sparse (or absent)
    across clusters.  This is the structure assumed by the complexity
    analysis in Section 6 of the paper.

``generate_paper_testcase`` / ``generate_chimera_native_problem``
    The evaluation workloads of Section 7: every query forms its own
    cluster, cost savings are drawn uniformly from ``{1, 2}`` (scaled by
    a constant), and sharing links exist only between plans of
    neighbouring queries so the instance "maps well to the quantum
    annealer" — i.e. it can be embedded with (close to) one qubit per
    logical variable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import InvalidProblemError
from repro.mqo.cost_model import synthesize_plan_costs
from repro.mqo.problem import MQOProblem
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "MQOGeneratorConfig",
    "generate_random_problem",
    "generate_clustered_problem",
    "generate_chimera_native_problem",
    "generate_paper_testcase",
]


@dataclass(frozen=True)
class MQOGeneratorConfig:
    """Common knobs shared by the workload generators.

    Attributes
    ----------
    cost_low / cost_high:
        Plan execution costs are drawn uniformly from the integer range
        ``[cost_low, cost_high]`` before scaling.
    saving_choices:
        Cost savings are drawn uniformly from this tuple (the paper uses
        ``{1, 2}``).
    scale:
        Constant factor applied to both costs and savings (the paper
        scales by a constant; the scaled-cost metric divides it out again).
    cost_source:
        ``"uniform"`` draws plan costs from the integer range above;
        ``"relational"`` derives them from the synthetic relational cost
        model in :mod:`repro.mqo.cost_model`.
    """

    cost_low: int = 1
    cost_high: int = 10
    saving_choices: Tuple[float, ...] = (1.0, 2.0)
    scale: float = 1.0
    cost_source: str = "uniform"

    def __post_init__(self) -> None:
        if self.cost_low < 0 or self.cost_high < self.cost_low:
            raise InvalidProblemError(
                f"need 0 <= cost_low <= cost_high, got [{self.cost_low}, {self.cost_high}]"
            )
        if not self.saving_choices or any(s <= 0 for s in self.saving_choices):
            raise InvalidProblemError("saving_choices must be non-empty and positive")
        if self.scale <= 0:
            raise InvalidProblemError(f"scale must be positive, got {self.scale}")
        if self.cost_source not in ("uniform", "relational"):
            raise InvalidProblemError(
                f"cost_source must be 'uniform' or 'relational', got {self.cost_source!r}"
            )


def _draw_plan_costs(
    num_queries: int,
    plans_per_query: int,
    config: MQOGeneratorConfig,
    rng,
) -> List[List[float]]:
    """Plan costs for every query according to the configured cost source."""
    if config.cost_source == "relational":
        raw = synthesize_plan_costs(num_queries, plans_per_query, seed=rng)
        # Normalise relational costs into the configured range so penalty
        # weights stay comparable across cost sources.
        flat = [c for row in raw for c in row]
        lo, hi = min(flat), max(flat)
        span = (hi - lo) or 1.0
        return [
            [
                config.scale
                * (config.cost_low + (config.cost_high - config.cost_low) * (c - lo) / span)
                for c in row
            ]
            for row in raw
        ]
    return [
        [
            config.scale * float(rng.integers(config.cost_low, config.cost_high + 1))
            for _ in range(plans_per_query)
        ]
        for _ in range(num_queries)
    ]


def _draw_saving(config: MQOGeneratorConfig, rng) -> float:
    choices = config.saving_choices
    return config.scale * float(choices[int(rng.integers(0, len(choices)))])


def generate_random_problem(
    num_queries: int,
    plans_per_query: int,
    sharing_density: float = 0.1,
    config: MQOGeneratorConfig | None = None,
    seed: SeedLike = None,
    name: str = "",
) -> MQOProblem:
    """Generate a fully random MQO instance.

    Every cross-query plan pair independently shares work with probability
    ``sharing_density``.
    """
    if num_queries <= 0 or plans_per_query <= 0:
        raise InvalidProblemError("num_queries and plans_per_query must be positive")
    if not 0.0 <= sharing_density <= 1.0:
        raise InvalidProblemError(f"sharing_density must be in [0, 1], got {sharing_density}")
    config = config or MQOGeneratorConfig()
    rng = ensure_rng(seed)

    plan_costs = _draw_plan_costs(num_queries, plans_per_query, config, rng)
    savings: Dict[Tuple[int, int], float] = {}
    num_plans = num_queries * plans_per_query
    for p1 in range(num_plans):
        q1 = p1 // plans_per_query
        for p2 in range(p1 + 1, num_plans):
            q2 = p2 // plans_per_query
            if q1 == q2:
                continue
            if rng.random() < sharing_density:
                savings[(p1, p2)] = _draw_saving(config, rng)
    return MQOProblem(
        plan_costs,
        savings,
        name=name or f"random-q{num_queries}-l{plans_per_query}",
    )


def generate_clustered_problem(
    num_clusters: int,
    queries_per_cluster: int,
    plans_per_query: int,
    intra_cluster_density: float = 0.8,
    inter_cluster_density: float = 0.0,
    config: MQOGeneratorConfig | None = None,
    seed: SeedLike = None,
    name: str = "",
) -> MQOProblem:
    """Generate the clustered instances assumed by the Section 6 analysis.

    Queries are partitioned into ``num_clusters`` clusters of
    ``queries_per_cluster`` queries each.  Cross-query plan pairs inside a
    cluster share with probability ``intra_cluster_density``; pairs across
    clusters share with probability ``inter_cluster_density`` (0 by
    default, i.e. clusters are independent sub-problems).
    """
    if num_clusters <= 0 or queries_per_cluster <= 0 or plans_per_query <= 0:
        raise InvalidProblemError("all problem dimensions must be positive")
    for density, label in (
        (intra_cluster_density, "intra_cluster_density"),
        (inter_cluster_density, "inter_cluster_density"),
    ):
        if not 0.0 <= density <= 1.0:
            raise InvalidProblemError(f"{label} must be in [0, 1], got {density}")
    config = config or MQOGeneratorConfig()
    rng = ensure_rng(seed)

    num_queries = num_clusters * queries_per_cluster
    plan_costs = _draw_plan_costs(num_queries, plans_per_query, config, rng)
    savings: Dict[Tuple[int, int], float] = {}
    num_plans = num_queries * plans_per_query

    def cluster_of_plan(p: int) -> int:
        return (p // plans_per_query) // queries_per_cluster

    for p1 in range(num_plans):
        q1 = p1 // plans_per_query
        for p2 in range(p1 + 1, num_plans):
            q2 = p2 // plans_per_query
            if q1 == q2:
                continue
            density = (
                intra_cluster_density
                if cluster_of_plan(p1) == cluster_of_plan(p2)
                else inter_cluster_density
            )
            if density and rng.random() < density:
                savings[(p1, p2)] = _draw_saving(config, rng)

    return MQOProblem(
        plan_costs,
        savings,
        name=name
        or f"clustered-n{num_clusters}-m{queries_per_cluster}-l{plans_per_query}",
    )


def generate_chimera_native_problem(
    num_queries: int,
    plans_per_query: int,
    neighbor_window: int = 1,
    cross_pair_density: float = 0.75,
    config: MQOGeneratorConfig | None = None,
    seed: SeedLike = None,
    name: str = "",
) -> MQOProblem:
    """Generate an instance whose sharing structure "maps well" onto Chimera.

    Every query forms its own cluster (as in the paper's evaluation).
    Sharing links exist only between plans of queries whose indices differ
    by at most ``neighbor_window``; within such a neighbouring query pair
    each cross plan pair shares with probability ``cross_pair_density``.
    The resulting interaction graph has bounded degree, so the clustered
    embedding needs only a small constant number of qubits per variable.
    """
    if num_queries <= 0 or plans_per_query <= 0:
        raise InvalidProblemError("num_queries and plans_per_query must be positive")
    if neighbor_window < 0:
        raise InvalidProblemError(f"neighbor_window must be >= 0, got {neighbor_window}")
    if not 0.0 <= cross_pair_density <= 1.0:
        raise InvalidProblemError(
            f"cross_pair_density must be in [0, 1], got {cross_pair_density}"
        )
    config = config or MQOGeneratorConfig()
    rng = ensure_rng(seed)

    plan_costs = _draw_plan_costs(num_queries, plans_per_query, config, rng)
    savings: Dict[Tuple[int, int], float] = {}
    for q1 in range(num_queries):
        for q2 in range(q1 + 1, min(num_queries, q1 + neighbor_window + 1)):
            for a in range(plans_per_query):
                for b in range(plans_per_query):
                    if rng.random() >= cross_pair_density:
                        continue
                    p1 = q1 * plans_per_query + a
                    p2 = q2 * plans_per_query + b
                    savings[(p1, p2)] = _draw_saving(config, rng)
    return MQOProblem(
        plan_costs,
        savings,
        name=name or f"chimera-native-q{num_queries}-l{plans_per_query}",
    )


def generate_paper_testcase(
    num_queries: int,
    plans_per_query: int,
    seed: SeedLike = None,
    config: MQOGeneratorConfig | None = None,
    name: str = "",
) -> MQOProblem:
    """Generate one evaluation instance in the style of paper Section 7.1.

    "Each query forms one cluster.  Cost savings are chosen with uniform
    distribution from {1, 2} (scaled by a constant)."  Sharing links are
    restricted to plans of neighbouring queries so that the instance is
    embeddable with the clustered pattern on a Chimera topology of the
    paper's size (one chain of bounded length per plan).
    """
    config = config or MQOGeneratorConfig()
    return generate_chimera_native_problem(
        num_queries=num_queries,
        plans_per_query=plans_per_query,
        neighbor_window=1,
        cross_pair_density=0.75,
        config=config,
        seed=seed,
        name=name or f"paper-q{num_queries}-l{plans_per_query}",
    )
