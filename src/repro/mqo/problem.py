"""Core data model for multiple query optimization (paper Section 3).

An :class:`MQOProblem` is defined by

* a set ``Q`` of queries, each query ``q`` owning a non-empty set ``P_q``
  of alternative plans,
* an execution cost ``c_p >= 0`` for every plan ``p``,
* pairwise cost savings ``s_{p1,p2} > 0`` for plan pairs belonging to
  *different* queries that can share intermediate results.

A solution ``Pe`` selects exactly one plan per query; its cost is

    C(Pe) = sum_{p in Pe} c_p  -  sum_{{p1,p2} subset Pe} s_{p1,p2}.

Plans are identified by dense integer indices (0..num_plans-1) assigned
in query order, which keeps the mapping onto QUBO variables trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.exceptions import InvalidProblemError, InvalidSolutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (arrays -> problem)
    from repro.mqo.arrays import ProblemArrays

__all__ = ["Plan", "Query", "MQOProblem", "MQOSolution"]

PlanPair = Tuple[int, int]


def _normalize_pair(p1: int, p2: int) -> PlanPair:
    """Return the pair ordered ``(small, large)``; reject self-pairs."""
    if p1 == p2:
        raise InvalidProblemError(f"a plan cannot share results with itself (plan {p1})")
    return (p1, p2) if p1 < p2 else (p2, p1)


@dataclass(frozen=True)
class Plan:
    """One alternative execution plan for a query.

    Attributes
    ----------
    index:
        Global plan index, unique across the whole problem.
    query_index:
        Index of the query this plan belongs to.
    cost:
        Execution cost ``c_p`` when no sharing is exploited.
    label:
        Optional human-readable name (e.g. ``"q3_plan1"``).
    """

    index: int
    query_index: int
    cost: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise InvalidProblemError(f"plan index must be non-negative, got {self.index}")
        if self.query_index < 0:
            raise InvalidProblemError(
                f"query index must be non-negative, got {self.query_index}"
            )
        if not (self.cost >= 0.0) or self.cost != self.cost:  # also rejects NaN
            raise InvalidProblemError(
                f"plan {self.index} has invalid cost {self.cost!r}; costs must be >= 0"
            )


@dataclass(frozen=True)
class Query:
    """One query of the batch together with its alternative plans."""

    index: int
    plan_indices: Tuple[int, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise InvalidProblemError(f"query index must be non-negative, got {self.index}")
        if not self.plan_indices:
            raise InvalidProblemError(f"query {self.index} has no plans")
        if len(set(self.plan_indices)) != len(self.plan_indices):
            raise InvalidProblemError(f"query {self.index} lists a plan twice")

    @property
    def num_plans(self) -> int:
        """Number of alternative plans for this query."""
        return len(self.plan_indices)


class MQOProblem:
    """An immutable multiple-query-optimization problem instance.

    Parameters
    ----------
    plans_per_query:
        For each query, the sequence of plan costs.  Plan indices are
        assigned densely in iteration order.
    savings:
        Mapping from plan-index pairs to the cost saving ``s_{p1,p2} > 0``
        obtained when both plans are executed.  Pairs may be given in any
        order; they are normalised to ``(min, max)``.
    query_labels / plan_labels:
        Optional human-readable names.
    name:
        Optional instance name used in reports.
    """

    def __init__(
        self,
        plans_per_query: Sequence[Sequence[float]],
        savings: Mapping[PlanPair, float] | None = None,
        query_labels: Sequence[str] | None = None,
        plan_labels: Sequence[str] | None = None,
        name: str = "",
    ) -> None:
        if not plans_per_query:
            raise InvalidProblemError("an MQO problem needs at least one query")

        self.name = name
        self._queries: List[Query] = []
        self._plans: List[Plan] = []

        for q_idx, costs in enumerate(plans_per_query):
            costs = list(costs)
            if not costs:
                raise InvalidProblemError(f"query {q_idx} has no plans")
            first_plan = len(self._plans)
            indices = tuple(range(first_plan, first_plan + len(costs)))
            q_label = query_labels[q_idx] if query_labels else f"q{q_idx}"
            self._queries.append(Query(index=q_idx, plan_indices=indices, label=q_label))
            for offset, cost in enumerate(costs):
                p_idx = first_plan + offset
                p_label = plan_labels[p_idx] if plan_labels else f"q{q_idx}_p{offset}"
                self._plans.append(
                    Plan(index=p_idx, query_index=q_idx, cost=float(cost), label=p_label)
                )

        self._plan_to_query: Dict[int, int] = {p.index: p.query_index for p in self._plans}
        self._savings: Dict[PlanPair, float] = {}
        for (p1, p2), value in (savings or {}).items():
            self._add_saving(p1, p2, value)

        # Adjacency view: plan -> {other plan: saving}; used by solvers and
        # by the logical mapping to iterate sharing partners efficiently.
        self._savings_by_plan: Dict[int, Dict[int, float]] = {p.index: {} for p in self._plans}
        for (p1, p2), value in self._savings.items():
            self._savings_by_plan[p1][p2] = value
            self._savings_by_plan[p2][p1] = value

        # Read-only views handed out by the public accessors: solver
        # inner loops call sharing_partners()/savings per move, so the
        # accessors must not allocate fresh dict copies on every call.
        self._savings_view: Mapping[PlanPair, float] = MappingProxyType(self._savings)
        self._partner_views: Dict[int, Mapping[int, float]] = {
            plan: MappingProxyType(partners) for plan, partners in self._savings_by_plan.items()
        }

        self._canonical_hash: str | None = None
        self._arrays: "ProblemArrays | None" = None

    def _add_saving(self, p1: int, p2: int, value: float) -> None:
        pair = _normalize_pair(int(p1), int(p2))
        for p in pair:
            if p not in self._plan_to_query:
                raise InvalidProblemError(f"savings entry references unknown plan {p}")
        if self._plan_to_query[pair[0]] == self._plan_to_query[pair[1]]:
            raise InvalidProblemError(
                f"plans {pair[0]} and {pair[1]} belong to the same query and cannot share"
            )
        value = float(value)
        if not value > 0.0:
            raise InvalidProblemError(
                f"saving for plan pair {pair} must be positive, got {value}"
            )
        if pair in self._savings:
            raise InvalidProblemError(f"duplicate savings entry for plan pair {pair}")
        self._savings[pair] = value

    # ------------------------------------------------------------------ #
    # Structure accessors
    # ------------------------------------------------------------------ #
    @property
    def queries(self) -> Tuple[Query, ...]:
        """All queries, ordered by index."""
        return tuple(self._queries)

    @property
    def plans(self) -> Tuple[Plan, ...]:
        """All plans, ordered by global plan index."""
        return tuple(self._plans)

    @property
    def num_queries(self) -> int:
        """Number of queries ``|Q|``."""
        return len(self._queries)

    @property
    def num_plans(self) -> int:
        """Total number of plans ``|P|``."""
        return len(self._plans)

    @property
    def savings(self) -> Mapping[PlanPair, float]:
        """Read-only view of the savings map keyed by normalised plan pairs.

        The same cached view object is returned on every access (the
        problem is immutable); attempts to mutate it raise ``TypeError``.
        """
        return self._savings_view

    @property
    def num_savings(self) -> int:
        """Number of sharing (savings) entries."""
        return len(self._savings)

    def plan(self, index: int) -> Plan:
        """Return the plan with global index ``index``."""
        try:
            return self._plans[index]
        except IndexError:
            raise InvalidProblemError(f"unknown plan index {index}") from None

    def query(self, index: int) -> Query:
        """Return the query with index ``index``."""
        try:
            return self._queries[index]
        except IndexError:
            raise InvalidProblemError(f"unknown query index {index}") from None

    def query_of_plan(self, plan_index: int) -> int:
        """Return the index of the query owning ``plan_index``."""
        try:
            return self._plan_to_query[plan_index]
        except KeyError:
            raise InvalidProblemError(f"unknown plan index {plan_index}") from None

    def plan_cost(self, plan_index: int) -> float:
        """Execution cost ``c_p`` of the given plan."""
        return self.plan(plan_index).cost

    def saving(self, p1: int, p2: int) -> float:
        """Saving ``s_{p1,p2}`` for a plan pair, or 0.0 if the pair shares nothing."""
        return self._savings.get(_normalize_pair(p1, p2), 0.0)

    def sharing_partners(self, plan_index: int) -> Mapping[int, float]:
        """All plans sharing work with ``plan_index`` mapped to the saving value.

        Returns a cached read-only view (not a copy): the solvers call
        this inside their inner loops, where an ``O(degree)`` dict
        allocation per call dominated the move evaluation.
        """
        try:
            return self._partner_views[plan_index]
        except KeyError:
            raise InvalidProblemError(f"unknown plan index {plan_index}") from None

    def arrays(self) -> "ProblemArrays":
        """The memoised columnar view of this problem.

        Built on first access and shared by every array-backed consumer
        (QUBO construction, heuristic baselines, batched decoding); see
        :class:`repro.mqo.arrays.ProblemArrays` for the layout.
        """
        if self._arrays is None:
            # Imported here: arrays imports this module's types at top level.
            from repro.mqo.arrays import build_problem_arrays

            self._arrays = build_problem_arrays(self)
        return self._arrays

    def canonical_hash(self) -> str:
        """Stable SHA-256 hex digest of the problem *structure*.

        The digest ignores the instance name and all labels and is
        invariant to the order in which plans are enumerated within each
        query, so it can key caches and deduplicate workloads.  Computed
        lazily and memoised (the problem is immutable).
        """
        if self._canonical_hash is None:
            # Imported here: serialization imports this module at top level.
            from repro.mqo.serialization import canonical_problem_hash

            self._canonical_hash = canonical_problem_hash(self)
        return self._canonical_hash

    def max_plan_cost(self) -> float:
        """``max_p c_p`` — used to derive the penalty weight ``w_L``."""
        return max(p.cost for p in self._plans)

    def max_total_savings_per_plan(self) -> float:
        """``max_{p1} sum_{p2} s_{p1,p2}`` — used to derive the penalty weight ``w_M``."""
        if not self._savings:
            return 0.0
        return max(sum(partners.values()) for partners in self._savings_by_plan.values())

    def interaction_pairs(self) -> Iterator[Tuple[PlanPair, float]]:
        """Iterate over ``((p1, p2), saving)`` entries (normalised pairs)."""
        return iter(self._savings.items())

    # ------------------------------------------------------------------ #
    # Solution handling
    # ------------------------------------------------------------------ #
    def solution_from_selection(self, selected: Iterable[int]) -> "MQOSolution":
        """Build an :class:`MQOSolution` from an iterable of plan indices."""
        return MQOSolution(self, frozenset(int(p) for p in selected))

    def solution_from_choices(self, choices: Sequence[int]) -> "MQOSolution":
        """Build a solution from per-query plan *offsets*.

        ``choices[q]`` is the position of the chosen plan within query
        ``q``'s plan list (0-based).  This is the natural encoding used by
        the classical heuristics (hill climbing, genetic algorithm).
        """
        if len(choices) != self.num_queries:
            raise InvalidSolutionError(
                f"expected {self.num_queries} choices, got {len(choices)}"
            )
        selected = []
        for query, choice in zip(self._queries, choices):
            if not 0 <= choice < query.num_plans:
                raise InvalidSolutionError(
                    f"choice {choice} out of range for query {query.index} "
                    f"with {query.num_plans} plans"
                )
            selected.append(query.plan_indices[choice])
        return MQOSolution(self, frozenset(selected))

    def is_valid_selection(self, selected: FrozenSet[int]) -> bool:
        """Whether ``selected`` picks exactly one known plan per query."""
        per_query = [0] * self.num_queries
        for p in selected:
            if p not in self._plan_to_query:
                return False
            per_query[self._plan_to_query[p]] += 1
        return all(count == 1 for count in per_query)

    def selection_cost(self, selected: Iterable[int]) -> float:
        """Cost ``C(Pe)`` of an arbitrary plan selection (validity not required).

        This is the raw objective ``sum c_p - sum s``; invalid selections
        (zero or multiple plans for a query) are costed exactly as the
        QUBO objective terms ``E_C + E_S`` would cost them, which is what
        the correctness proofs in Section 6 reason about.
        """
        chosen = set(int(p) for p in selected)
        total = 0.0
        for p in chosen:
            total += self.plan(p).cost
        for (p1, p2), value in self._savings.items():
            if p1 in chosen and p2 in chosen:
                total -= value
        return total

    # ------------------------------------------------------------------ #
    # Dunder / reporting helpers
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<MQOProblem{label}: {self.num_queries} queries, {self.num_plans} plans, "
            f"{self.num_savings} sharing pairs>"
        )

    def describe(self) -> str:
        """A short multi-line human-readable description."""
        plans_per_query = [q.num_plans for q in self._queries]
        return "\n".join(
            [
                f"MQO problem {self.name or '<unnamed>'}",
                f"  queries:        {self.num_queries}",
                f"  plans:          {self.num_plans}"
                f" (per query: min={min(plans_per_query)}, max={max(plans_per_query)})",
                f"  sharing pairs:  {self.num_savings}",
                f"  max plan cost:  {self.max_plan_cost():.3f}",
            ]
        )


@dataclass(frozen=True)
class MQOSolution:
    """A plan selection for an :class:`MQOProblem`.

    The selection is stored as a frozen set of global plan indices.  The
    solution may be *invalid* (not exactly one plan per query); this is
    deliberate because annealing read-outs can produce invalid selections
    and the experiment harness needs to detect and cost them.
    """

    problem: MQOProblem
    selected_plans: FrozenSet[int]
    _cost: float = field(init=False, repr=False, default=0.0)
    _valid: bool = field(init=False, repr=False, default=False)

    def __post_init__(self) -> None:
        for p in self.selected_plans:
            # Raises InvalidProblemError for unknown plans.
            self.problem.plan(p)
        object.__setattr__(self, "_valid", self.problem.is_valid_selection(self.selected_plans))
        object.__setattr__(self, "_cost", self.problem.selection_cost(self.selected_plans))

    @classmethod
    def from_precomputed(
        cls,
        problem: MQOProblem,
        selected_plans: Iterable[int],
        cost: float,
        is_valid: bool,
    ) -> "MQOSolution":
        """Trusted constructor skipping the per-solution cost recomputation.

        Used by the batched decode paths (sampleset decoding, the
        array-backed heuristics) that already computed cost and validity
        for a whole batch at once; ``cost`` and ``is_valid`` MUST match
        what ``__post_init__`` would derive for ``selected_plans``.
        """
        solution = object.__new__(cls)
        object.__setattr__(solution, "problem", problem)
        object.__setattr__(solution, "selected_plans", frozenset(selected_plans))
        object.__setattr__(solution, "_cost", float(cost))
        object.__setattr__(solution, "_valid", bool(is_valid))
        return solution

    @property
    def is_valid(self) -> bool:
        """Whether exactly one plan is selected per query."""
        return self._valid

    @property
    def cost(self) -> float:
        """Objective value ``C(Pe)`` of the selection."""
        return self._cost

    def require_valid(self) -> "MQOSolution":
        """Return ``self`` or raise :class:`InvalidSolutionError` if invalid."""
        if not self._valid:
            raise InvalidSolutionError(
                "solution does not select exactly one plan per query: "
                f"{sorted(self.selected_plans)}"
            )
        return self

    def choices(self) -> List[int]:
        """Per-query plan offsets (requires a valid solution)."""
        self.require_valid()
        by_query = {self.problem.query_of_plan(p): p for p in self.selected_plans}
        offsets = []
        for query in self.problem.queries:
            plan = by_query[query.index]
            offsets.append(query.plan_indices.index(plan))
        return offsets

    def plan_indicator(self) -> Dict[int, int]:
        """Binary indicator ``X_p`` for every plan (the logical QUBO variables)."""
        return {
            plan.index: int(plan.index in self.selected_plans) for plan in self.problem.plans
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "valid" if self._valid else "INVALID"
        return (
            f"<MQOSolution {status}, cost={self._cost:.3f}, "
            f"{len(self.selected_plans)} plans selected>"
        )
