"""A small relational cost model used to synthesize plausible plan costs.

The paper assumes that "a small set of alternative plans has been found
for each query prior to MQO and that execution costs of query plans can
be reliably estimated" (Section 3).  Plan generation and cost estimation
are therefore *inputs* to MQO, produced by an ordinary query optimizer.

To make the example applications and workload generators realistic, this
module implements a classic textbook cost model for select-project-join
plans over a synthetic catalog: per-table cardinalities and selectivities
drive scan and join cost estimates, and alternative plans for a query
correspond to different join orders / access paths with different costs.
The MQO layer only ever sees the resulting scalar costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.utils.rng import SeedLike, ensure_rng

__all__ = [
    "TableStats",
    "CatalogStatistics",
    "RelationalCostModel",
    "synthesize_plan_costs",
]


@dataclass(frozen=True)
class TableStats:
    """Cardinality and physical statistics for one base table."""

    name: str
    num_rows: int
    row_bytes: int = 100
    num_distinct: int = 0

    def __post_init__(self) -> None:
        if self.num_rows <= 0:
            raise InvalidProblemError(f"table {self.name!r} must have positive cardinality")
        if self.row_bytes <= 0:
            raise InvalidProblemError(f"table {self.name!r} must have positive row size")

    @property
    def pages(self) -> int:
        """Number of 8 KiB pages the table occupies."""
        page_bytes = 8192
        return max(1, (self.num_rows * self.row_bytes + page_bytes - 1) // page_bytes)


@dataclass
class CatalogStatistics:
    """A catalog of base tables with join selectivities between them."""

    tables: Dict[str, TableStats] = field(default_factory=dict)
    join_selectivity: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def add_table(self, stats: TableStats) -> None:
        """Register a table; duplicate names are rejected."""
        if stats.name in self.tables:
            raise InvalidProblemError(f"table {stats.name!r} already registered")
        self.tables[stats.name] = stats

    def set_join_selectivity(self, left: str, right: str, selectivity: float) -> None:
        """Set the selectivity of the join predicate between two tables."""
        if left not in self.tables or right not in self.tables:
            raise InvalidProblemError(f"unknown table in join pair ({left!r}, {right!r})")
        if not 0.0 < selectivity <= 1.0:
            raise InvalidProblemError(
                f"join selectivity must be in (0, 1], got {selectivity}"
            )
        key = (left, right) if left <= right else (right, left)
        self.join_selectivity[key] = selectivity

    def get_join_selectivity(self, left: str, right: str) -> float:
        """Selectivity for the join of two tables (default heuristic if unset)."""
        key = (left, right) if left <= right else (right, left)
        if key in self.join_selectivity:
            return self.join_selectivity[key]
        # Classic System-R default: 1 / max distinct values, approximated by
        # 1 / max cardinality when distinct counts are unknown.
        left_stats, right_stats = self.tables[left], self.tables[right]
        denom = max(
            left_stats.num_distinct or left_stats.num_rows,
            right_stats.num_distinct or right_stats.num_rows,
        )
        return 1.0 / float(denom)

    @classmethod
    def synthetic(
        cls,
        num_tables: int,
        seed: SeedLike = None,
        min_rows: int = 10_000,
        max_rows: int = 5_000_000,
    ) -> "CatalogStatistics":
        """Generate a random catalog with log-uniform table cardinalities."""
        if num_tables <= 0:
            raise InvalidProblemError("num_tables must be positive")
        if min_rows <= 0 or max_rows < min_rows:
            raise InvalidProblemError("need 0 < min_rows <= max_rows")
        rng = ensure_rng(seed)
        catalog = cls()
        log_lo, log_hi = np.log(min_rows), np.log(max_rows)
        for i in range(num_tables):
            rows = int(np.exp(rng.uniform(log_lo, log_hi)))
            catalog.add_table(
                TableStats(
                    name=f"t{i}",
                    num_rows=rows,
                    row_bytes=int(rng.integers(40, 400)),
                    num_distinct=max(1, rows // int(rng.integers(1, 100))),
                )
            )
        return catalog


class RelationalCostModel:
    """Estimate scan and join costs over a :class:`CatalogStatistics`.

    The model charges one unit per page read plus a CPU cost per processed
    tuple, which is sufficient to create realistic relative plan costs.
    """

    def __init__(
        self,
        catalog: CatalogStatistics,
        page_cost: float = 1.0,
        tuple_cpu_cost: float = 0.01,
        hash_build_factor: float = 1.5,
    ) -> None:
        if page_cost <= 0 or tuple_cpu_cost < 0 or hash_build_factor <= 0:
            raise InvalidProblemError("cost-model constants must be positive")
        self.catalog = catalog
        self.page_cost = page_cost
        self.tuple_cpu_cost = tuple_cpu_cost
        self.hash_build_factor = hash_build_factor

    def scan_cost(self, table: str) -> float:
        """Sequential-scan cost of a base table."""
        stats = self._stats(table)
        return stats.pages * self.page_cost + stats.num_rows * self.tuple_cpu_cost

    def scan_cardinality(self, table: str, selectivity: float = 1.0) -> float:
        """Output cardinality of a (filtered) scan."""
        if not 0.0 < selectivity <= 1.0:
            raise InvalidProblemError(f"selectivity must be in (0, 1], got {selectivity}")
        return self._stats(table).num_rows * selectivity

    def join_cardinality(self, left_card: float, right_card: float, selectivity: float) -> float:
        """Estimated output cardinality of a join."""
        return max(1.0, left_card * right_card * selectivity)

    def hash_join_cost(self, left_card: float, right_card: float) -> float:
        """CPU-dominated hash-join cost (build smaller side, probe larger)."""
        build, probe = sorted([left_card, right_card])
        return (build * self.hash_build_factor + probe) * self.tuple_cpu_cost

    def plan_cost_for_join_order(self, tables: Sequence[str]) -> float:
        """Cost of a left-deep plan joining ``tables`` in the given order."""
        if not tables:
            raise InvalidProblemError("a plan must involve at least one table")
        total = self.scan_cost(tables[0])
        current_card = self.scan_cardinality(tables[0])
        for right in tables[1:]:
            total += self.scan_cost(right)
            right_card = self.scan_cardinality(right)
            total += self.hash_join_cost(current_card, right_card)
            selectivity = self.catalog.get_join_selectivity(tables[0], right)
            current_card = self.join_cardinality(current_card, right_card, selectivity)
        return total

    def alternative_plan_costs(
        self,
        tables: Sequence[str],
        num_plans: int,
        seed: SeedLike = None,
    ) -> List[float]:
        """Costs of ``num_plans`` alternative join orders for one query.

        Orders are sampled without replacement where possible; costs are
        therefore correlated but distinct, mimicking the output of a plan
        enumerator that keeps a handful of promising candidates.
        """
        if num_plans <= 0:
            raise InvalidProblemError("num_plans must be positive")
        rng = ensure_rng(seed)
        tables = list(tables)
        seen_orders: set[Tuple[str, ...]] = set()
        costs: List[float] = []
        attempts = 0
        while len(costs) < num_plans and attempts < 50 * num_plans:
            attempts += 1
            order = tuple(rng.permutation(tables))
            if order in seen_orders and len(seen_orders) < _num_permutations(len(tables)):
                continue
            seen_orders.add(order)
            costs.append(self.plan_cost_for_join_order(order))
        while len(costs) < num_plans:
            # Degenerate case (single table): perturb the base cost slightly.
            costs.append(costs[-1] * float(rng.uniform(1.0, 1.2)))
        return costs

    def _stats(self, table: str) -> TableStats:
        try:
            return self.catalog.tables[table]
        except KeyError:
            raise InvalidProblemError(f"unknown table {table!r}") from None


def _num_permutations(n: int) -> int:
    result = 1
    for i in range(2, n + 1):
        result *= i
    return result


def synthesize_plan_costs(
    num_queries: int,
    plans_per_query: int,
    seed: SeedLike = None,
    tables_per_query: Tuple[int, int] = (2, 4),
    num_tables: int = 20,
) -> List[List[float]]:
    """Generate per-query plan cost lists from the relational cost model.

    This is the "realistic" alternative to drawing plan costs uniformly;
    the workload generator uses it when ``cost_source='relational'``.
    """
    if num_queries <= 0 or plans_per_query <= 0:
        raise InvalidProblemError("num_queries and plans_per_query must be positive")
    lo, hi = tables_per_query
    if lo < 1 or hi < lo:
        raise InvalidProblemError(f"invalid tables_per_query range {tables_per_query}")
    rng = ensure_rng(seed)
    catalog = CatalogStatistics.synthetic(num_tables=num_tables, seed=rng)
    model = RelationalCostModel(catalog)
    table_names = list(catalog.tables)
    all_costs: List[List[float]] = []
    for _ in range(num_queries):
        k = int(rng.integers(lo, hi + 1))
        tables = list(rng.choice(table_names, size=min(k, len(table_names)), replace=False))
        all_costs.append(model.alternative_plan_costs(tables, plans_per_query, seed=rng))
    return all_costs
