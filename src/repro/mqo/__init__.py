"""Multiple-query-optimization (MQO) problem model and workload generators.

The MQO formalism follows Section 3 of the paper: a problem is a set of
queries, each with a set of alternative plans; each plan has an execution
cost; pairs of plans (for *different* queries) may share intermediate
results, yielding a cost saving when both are executed.  A solution
selects exactly one plan per query and its cost is
``C(Pe) = sum(c_p) - sum(s_{p1,p2})`` over selected plans/pairs.
"""

from repro.mqo.arrays import ProblemArrays, build_problem_arrays
from repro.mqo.problem import MQOProblem, MQOSolution, Plan, Query
from repro.mqo.generator import (
    MQOGeneratorConfig,
    generate_chimera_native_problem,
    generate_clustered_problem,
    generate_paper_testcase,
    generate_random_problem,
)
from repro.mqo.cost_model import (
    CatalogStatistics,
    RelationalCostModel,
    TableStats,
    synthesize_plan_costs,
)
from repro.mqo.clustering import (
    cluster_queries,
    cross_cluster_savings,
    query_sharing_graph,
    split_oversized_clusters,
)
from repro.mqo.serialization import problem_from_dict, problem_to_dict, solution_from_dict, solution_to_dict

__all__ = [
    "Plan",
    "Query",
    "MQOProblem",
    "MQOSolution",
    "ProblemArrays",
    "build_problem_arrays",
    "MQOGeneratorConfig",
    "generate_random_problem",
    "generate_clustered_problem",
    "generate_chimera_native_problem",
    "generate_paper_testcase",
    "CatalogStatistics",
    "RelationalCostModel",
    "TableStats",
    "synthesize_plan_costs",
    "cluster_queries",
    "query_sharing_graph",
    "split_oversized_clusters",
    "cross_cluster_savings",
    "problem_to_dict",
    "problem_from_dict",
    "solution_to_dict",
    "solution_from_dict",
]
