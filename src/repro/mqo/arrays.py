"""Columnar, NumPy-backed view of an MQO problem (the classical hot core).

The object model of :mod:`repro.mqo.problem` is the right API for
building and inspecting instances, but every per-plan :class:`Plan`
dataclass and per-pair savings dict turns the classical pre/post
processing around the anneal — QUBO construction, heuristic baselines,
sampleset decoding — into Python loops.  :class:`ProblemArrays` is the
flat columnar form those hot paths consume instead:

* ``plan_cost`` / ``plan_query`` — one entry per plan (``float64`` /
  ``int32``),
* a CSR query→plan mapping (``query_offsets``): plans of query ``q``
  are the contiguous range ``query_offsets[q]:query_offsets[q + 1]``
  (plan indices are assigned densely in query order, so offsets alone
  describe the mapping),
* the savings as COO triplets (``savings_p1``/``savings_p2``/
  ``savings_value``, normalised ``p1 < p2``, in the problem's savings
  insertion order),
* a CSR plan→partner adjacency (``adj_indptr``/``adj_indices``/
  ``adj_values``).  Within one plan's row, partners appear in savings
  insertion order — exactly the iteration order of the legacy
  ``sharing_partners`` dictionaries, so segment sums over the CSR rows
  are bit-identical to the dict-based sums they replace.

All arrays are read-only; the view is memoised on the problem
(:meth:`~repro.mqo.problem.MQOProblem.arrays`), so repeated consumers
(solver restarts, batched decodes, the service cache) share one copy.

Batch evaluation API
--------------------
``selection_cost_batch`` costs a whole ``(B, |Q|)`` matrix of per-query
plan choices; ``indicator_cost_batch`` / ``indicator_valid_batch``
cost and validate arbitrary 0/1 plan indicators (annealing read-outs
may select zero or several plans per query); ``swap_deltas`` /
``all_swap_deltas`` evaluate single-query plan swaps for the local
search baselines — every candidate of one query (or of *all* queries)
in one vectorised call.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from functools import cached_property
from typing import TYPE_CHECKING, Any, Dict, Tuple

import numpy as np

from repro.exceptions import InvalidSolutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (problem -> arrays)
    from repro.mqo.problem import MQOProblem

__all__ = ["ProblemArrays", "build_problem_arrays", "problem_from_arrays"]


def _frozen(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` read-only and return it."""
    array.setflags(write=False)
    return array


@dataclass(frozen=True, eq=False)
class ProblemArrays:
    """Immutable columnar arrays describing one MQO problem.

    Built once per problem via :func:`build_problem_arrays` and cached
    by :meth:`MQOProblem.arrays`; see the module docstring for the
    layout contract.
    """

    num_queries: int
    num_plans: int
    num_savings: int
    plan_cost: np.ndarray  #: float64[|P|] — execution cost per plan.
    plan_query: np.ndarray  #: int32[|P|] — owning query per plan.
    query_offsets: np.ndarray  #: int64[|Q|+1] — CSR query→plan offsets.
    savings_p1: np.ndarray  #: int64[|S|] — smaller plan of each sharing pair.
    savings_p2: np.ndarray  #: int64[|S|] — larger plan of each sharing pair.
    savings_value: np.ndarray  #: float64[|S|] — saving per sharing pair.
    adj_indptr: np.ndarray  #: int64[|P|+1] — CSR adjacency row pointers.
    adj_indices: np.ndarray  #: int64[2|S|] — partner plan per adjacency entry.
    adj_values: np.ndarray  #: float64[2|S|] — saving per adjacency entry.

    # ------------------------------------------------------------------ #
    # Pickling (zero-copy transport)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, Any]:
        """Pickle only the declared columns, never the lazy caches.

        The server's shard transport pickles these objects with protocol
        5, where every NumPy column travels as an out-of-band buffer (no
        copy into the pickle stream).  Dropping the ``cached_property``
        memo entries keeps the wire payload down to the columns
        themselves; the receiver re-derives the caches lazily.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        """Restore the columns read-only (matching the frozen contract).

        Arrays rebuilt from out-of-band pickle buffers arrive writeable
        when the transport hands over ownership; re-freeze them so the
        "all arrays are read-only" invariant survives the trip.
        """
        for name, value in state.items():
            if isinstance(value, np.ndarray):
                value.setflags(write=False)
            object.__setattr__(self, name, value)

    def nbytes(self) -> int:
        """Total byte size of the columns (the zero-copy payload size)."""
        return sum(
            getattr(self, f.name).nbytes
            for f in fields(self)
            if isinstance(getattr(self, f.name), np.ndarray)
        )

    # ------------------------------------------------------------------ #
    # Derived structure (lazy, cached)
    # ------------------------------------------------------------------ #
    @cached_property
    def plans_per_query(self) -> np.ndarray:
        """int64[|Q|] — number of alternative plans per query."""
        return _frozen(np.diff(self.query_offsets))

    @cached_property
    def adj_row(self) -> np.ndarray:
        """int64[2|S|] — owning plan of each adjacency entry (row index)."""
        return _frozen(np.repeat(np.arange(self.num_plans), np.diff(self.adj_indptr)))

    @cached_property
    def savings_query_pair(self) -> Tuple[np.ndarray, np.ndarray]:
        """Owning queries of each savings pair's endpoints (two int arrays)."""
        return (
            _frozen(self.plan_query[self.savings_p1].astype(np.int64)),
            _frozen(self.plan_query[self.savings_p2].astype(np.int64)),
        )

    def query_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Aggregated query-pair edges of the savings graph.

        Returns ``(q1, q2, weight)`` with ``q1 < q2``: every pair of
        queries linked by at least one savings pair, carrying the total
        savings between their plans.  One vectorised pass (two gathers,
        one ``unique``, one ``bincount``) replaces the per-pair Python
        accumulation the networkx query graph was built with — this is
        what makes partitioning a 50k-plan instance a milliseconds
        operation.  Edges come out sorted by ``(q1, q2)``.
        """
        if self.num_savings == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0, dtype=np.float64)
        qa, qb = self.savings_query_pair
        lo = np.minimum(qa, qb)
        hi = np.maximum(qa, qb)
        keys = lo * np.int64(self.num_queries) + hi
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        weight = np.bincount(inverse, weights=self.savings_value)
        return (
            (unique_keys // self.num_queries).astype(np.int64),
            (unique_keys % self.num_queries).astype(np.int64),
            weight,
        )

    def cheapest_choices(self) -> np.ndarray:
        """int64[|Q|] — per-query offset of the cheapest plan (first on ties).

        The valid fallback selection the decomposition stitcher starts
        from: picking every query's cheapest plan ignores all savings but
        is always feasible, so the stitched anytime trajectory has a
        finite incumbent before the first cluster completes.  Computed
        with one segmented ``minimum.reduceat`` pass — no Python loop
        over queries.
        """
        starts = self.query_offsets[:-1]
        minima = np.minimum.reduceat(self.plan_cost, starts)
        # First index reaching the per-query minimum: positions where the
        # plan cost equals its query's minimum, reduced segment-wise.
        is_min = self.plan_cost == minima[self.plan_query]
        first_hit = np.minimum.reduceat(
            np.where(is_min, np.arange(self.num_plans), self.num_plans), starts
        )
        return (first_hit - starts).astype(np.int64)

    @cached_property
    def same_query_pairs(self) -> np.ndarray:
        """int64[M, 2] — all same-query plan pairs ``(i, j)`` with ``i < j``.

        Ordered by query index, then lexicographically within the query —
        the order the legacy per-pair QUBO construction inserted them in.
        """
        blocks = []
        triu_cache: dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        offsets = self.query_offsets
        for q in range(self.num_queries):
            k = int(offsets[q + 1] - offsets[q])
            if k < 2:
                continue
            if k not in triu_cache:
                rows, cols = np.triu_indices(k, k=1)
                triu_cache[k] = (rows.astype(np.int64), cols.astype(np.int64))
            rows, cols = triu_cache[k]
            base = int(offsets[q])
            blocks.append(np.column_stack((rows + base, cols + base)))
        if not blocks:
            return _frozen(np.empty((0, 2), dtype=np.int64))
        return _frozen(np.concatenate(blocks, axis=0))

    # ------------------------------------------------------------------ #
    # Scalar aggregates (penalty-weight derivation)
    # ------------------------------------------------------------------ #
    def max_plan_cost(self) -> float:
        """``max_p c_p`` over the whole problem."""
        return float(self.plan_cost.max())

    def total_savings_per_plan(self) -> np.ndarray:
        """float64[|P|] — ``sum_{p2} s_{p,p2}`` per plan ``p``.

        Each per-plan sum accumulates in CSR (= savings insertion)
        order, matching the legacy dict-based sums bit for bit.
        """
        return np.bincount(self.adj_row, weights=self.adj_values, minlength=self.num_plans)

    def max_total_savings_per_plan(self) -> float:
        """``max_p sum_{p2} s_{p,p2}`` (0.0 for savings-free problems)."""
        if self.num_savings == 0:
            return 0.0
        return float(self.total_savings_per_plan().max())

    # ------------------------------------------------------------------ #
    # Choice-encoded selections (one plan per query)
    # ------------------------------------------------------------------ #
    def check_choices(self, choices: np.ndarray) -> np.ndarray:
        """Validate a ``(..., |Q|)`` per-query choice array.

        Returns the choices as int64; the result may share memory with
        the input (callers that mutate must copy, as
        :class:`~repro.baselines.selection_state.SelectionState` does).
        """
        choices = np.asarray(choices)
        if choices.shape[-1] != self.num_queries:
            raise InvalidSolutionError(
                f"expected {self.num_queries} choices, got {choices.shape[-1]}"
            )
        choices = choices.astype(np.int64, copy=False)
        bad = (choices < 0) | (choices >= self.plans_per_query)
        if bad.any():
            position = np.argwhere(bad)[0]
            query = int(position[-1])
            raise InvalidSolutionError(
                f"choice {int(choices[tuple(position)])} out of range for query "
                f"{query} with {int(self.plans_per_query[query])} plans"
            )
        return choices

    def choices_to_plans(self, choices: np.ndarray) -> np.ndarray:
        """Map ``(..., |Q|)`` per-query choices to global plan indices."""
        return self.query_offsets[:-1] + np.asarray(choices, dtype=np.int64)

    def selection_cost_batch(self, choices: np.ndarray, validate: bool = True) -> np.ndarray:
        """Objective ``C(Pe)`` of every row of a ``(B, |Q|)`` choice matrix.

        The whole GA population (or any batch of valid one-plan-per-query
        selections) is costed with two gathers and one matrix-vector
        product — no per-row Python work.
        """
        choices = np.atleast_2d(np.asarray(choices))
        if validate:
            choices = self.check_choices(choices)
        selected = self.query_offsets[:-1] + choices  # (B, |Q|)
        base = self.plan_cost[selected].sum(axis=1)
        if self.num_savings == 0:
            return base
        q1, q2 = self.savings_query_pair
        hit = (selected[:, q1] == self.savings_p1) & (selected[:, q2] == self.savings_p2)
        return base - hit.astype(np.float64) @ self.savings_value

    # ------------------------------------------------------------------ #
    # Indicator-encoded selections (arbitrary 0/1 plan subsets)
    # ------------------------------------------------------------------ #
    def indicator_cost_batch(self, indicators: np.ndarray) -> np.ndarray:
        """Raw objective ``sum c_p - sum s`` of ``(B, |P|)`` 0/1 indicators.

        Invalid selections (zero or several plans per query) are costed
        exactly as :meth:`MQOProblem.selection_cost` costs them — the
        ``E_C + E_S`` terms of the QUBO objective.
        """
        indicators = np.atleast_2d(np.asarray(indicators))
        if indicators.shape[1] != self.num_plans:
            raise InvalidSolutionError(
                f"indicator matrix must have {self.num_plans} columns, "
                f"got {indicators.shape[1]}"
            )
        dense = indicators.astype(np.float64, copy=False)
        base = dense @ self.plan_cost
        if self.num_savings == 0:
            return base
        hit = dense[:, self.savings_p1] * dense[:, self.savings_p2]
        return base - hit @ self.savings_value

    def indicator_valid_batch(self, indicators: np.ndarray) -> np.ndarray:
        """bool[B] — whether each indicator row selects exactly one plan per query."""
        indicators = np.atleast_2d(np.asarray(indicators))
        counts = np.add.reduceat(
            indicators.astype(np.int64, copy=False), self.query_offsets[:-1], axis=1
        )
        return (counts == 1).all(axis=1)

    # ------------------------------------------------------------------ #
    # Local-search moves
    # ------------------------------------------------------------------ #
    def realized_savings(self, selected_mask: np.ndarray, query_index: int) -> np.ndarray:
        """Savings each plan of ``query_index`` realises with the selection.

        ``selected_mask`` is a ``bool[|P|]`` indicator of the currently
        selected plans.  Savings never link plans of the same query, so
        no exclusion of the query's own selected plan is needed.  Each
        per-plan sum accumulates in CSR order (bit-identical to the
        legacy dict iteration).
        """
        lo = int(self.query_offsets[query_index])
        hi = int(self.query_offsets[query_index + 1])
        a_lo = int(self.adj_indptr[lo])
        a_hi = int(self.adj_indptr[hi])
        span = hi - lo
        if a_lo == a_hi:
            return np.zeros(span)
        partners = self.adj_indices[a_lo:a_hi]
        contrib = np.where(selected_mask[partners], self.adj_values[a_lo:a_hi], 0.0)
        segments = np.repeat(np.arange(span), np.diff(self.adj_indptr[lo : hi + 1]))
        return np.bincount(segments, weights=contrib, minlength=span)

    def swap_deltas(
        self, selected_plans: np.ndarray, selected_mask: np.ndarray, query_index: int
    ) -> np.ndarray:
        """Cost delta of switching ``query_index`` to each of its plans.

        ``selected_plans`` holds the currently selected global plan per
        query; the entry for the query's current plan is exactly 0.0.
        One call replaces the per-candidate ``swap_delta`` loop of the
        legacy :class:`~repro.baselines.selection_state.SelectionState`.
        """
        lo = int(self.query_offsets[query_index])
        hi = int(self.query_offsets[query_index + 1])
        old_plan = int(selected_plans[query_index])
        realized = self.realized_savings(selected_mask, query_index)
        deltas = (self.plan_cost[lo:hi] - self.plan_cost[old_plan]) - realized
        deltas += realized[old_plan - lo]
        deltas[old_plan - lo] = 0.0
        return deltas

    def all_swap_deltas(
        self, selected_plans: np.ndarray, selected_mask: np.ndarray
    ) -> np.ndarray:
        """float64[|P|] — swap delta for moving each plan's query onto it.

        ``deltas[p]`` is the cost change of switching plan ``p``'s query
        from its currently selected plan to ``p`` (0.0 for the selected
        plans themselves).  One call evaluates every candidate move of a
        steepest-descent sweep — the hill-climbing hot loop — with one
        gather and one segmented reduction over the savings adjacency.
        """
        contrib = np.where(selected_mask[self.adj_indices], self.adj_values, 0.0)
        realized = np.bincount(self.adj_row, weights=contrib, minlength=self.num_plans)
        old_plan = np.asarray(selected_plans, dtype=np.int64)[self.plan_query]
        deltas = (self.plan_cost - self.plan_cost[old_plan]) - realized
        deltas += realized[old_plan]
        deltas[np.asarray(selected_plans, dtype=np.int64)] = 0.0
        return deltas


def build_problem_arrays(problem: "MQOProblem") -> ProblemArrays:
    """Construct the columnar view of ``problem``.

    Callers should prefer the memoised :meth:`MQOProblem.arrays`.  The
    adjacency is laid out so each plan's partners appear in savings
    insertion order, matching the legacy ``sharing_partners`` dicts
    (see the module docstring for why that ordering matters).
    """
    num_plans = problem.num_plans
    num_queries = problem.num_queries

    plan_cost = np.empty(num_plans, dtype=np.float64)
    plan_query = np.empty(num_plans, dtype=np.int32)
    for plan in problem.plans:
        plan_cost[plan.index] = plan.cost
        plan_query[plan.index] = plan.query_index

    query_offsets = np.zeros(num_queries + 1, dtype=np.int64)
    for query in problem.queries:
        query_offsets[query.index + 1] = len(query.plan_indices)
    np.cumsum(query_offsets, out=query_offsets)

    savings = problem.savings
    num_savings = len(savings)
    savings_p1 = np.empty(num_savings, dtype=np.int64)
    savings_p2 = np.empty(num_savings, dtype=np.int64)
    savings_value = np.empty(num_savings, dtype=np.float64)
    for slot, ((p1, p2), value) in enumerate(savings.items()):
        savings_p1[slot] = p1
        savings_p2[slot] = p2
        savings_value[slot] = value

    # Interleave the two directed copies of each pair so that a stable
    # sort by owning plan reproduces the savings insertion order within
    # every plan's partner row (the legacy dict-adjacency order).
    rows = np.empty(2 * num_savings, dtype=np.int64)
    cols = np.empty(2 * num_savings, dtype=np.int64)
    vals = np.empty(2 * num_savings, dtype=np.float64)
    rows[0::2] = savings_p1
    rows[1::2] = savings_p2
    cols[0::2] = savings_p2
    cols[1::2] = savings_p1
    vals[0::2] = savings_value
    vals[1::2] = savings_value
    order = np.argsort(rows, kind="stable")
    adj_indices = cols[order]
    adj_values = vals[order]
    adj_indptr = np.zeros(num_plans + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=num_plans), out=adj_indptr[1:])

    return ProblemArrays(
        num_queries=num_queries,
        num_plans=num_plans,
        num_savings=num_savings,
        plan_cost=_frozen(plan_cost),
        plan_query=_frozen(plan_query),
        query_offsets=_frozen(query_offsets),
        savings_p1=_frozen(savings_p1),
        savings_p2=_frozen(savings_p2),
        savings_value=_frozen(savings_value),
        adj_indptr=_frozen(adj_indptr),
        adj_indices=_frozen(adj_indices),
        adj_values=_frozen(adj_values),
    )


def problem_from_arrays(
    arrays: ProblemArrays,
    name: str = "",
    canonical_hash: str | None = None,
) -> "MQOProblem":
    """Rebuild an :class:`MQOProblem` from its columnar view.

    Inverse of :func:`build_problem_arrays` up to labels (which carry no
    identity: the canonical hash and the exact problem token both ignore
    them).  The given ``arrays`` object is installed as the rebuilt
    problem's memoised view, so consumers that received the columns over
    a zero-copy transport (the server's shard processes) keep operating
    on the transferred buffers instead of rebuilding them; an optional
    pre-computed ``canonical_hash`` is memoised the same way.

    Savings are re-inserted in COO order — exactly the original
    problem's insertion order — so the rebuilt adjacency is bit-identical
    to the original's.
    """
    offsets = arrays.query_offsets
    costs = arrays.plan_cost
    plans_per_query = [
        costs[int(offsets[q]) : int(offsets[q + 1])].tolist()
        for q in range(arrays.num_queries)
    ]
    savings = {
        (int(p1), int(p2)): float(value)
        for p1, p2, value in zip(arrays.savings_p1, arrays.savings_p2, arrays.savings_value)
    }
    # Imported here: problem imports this module's builder lazily too.
    from repro.mqo.problem import MQOProblem

    problem = MQOProblem(plans_per_query, savings, name=name)
    problem._arrays = arrays  # noqa: SLF001 — seeding the documented memo
    if canonical_hash is not None:
        problem._canonical_hash = canonical_hash  # noqa: SLF001
    return problem
