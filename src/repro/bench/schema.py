"""The BENCH document schema: one JSON shape for every benchmark.

Every benchmark in this repository — the suite orchestrator, the server
load test, the service speedup exhibit — emits a
``benchmark_results/BENCH_<suite>.json`` conforming to the shape below
(documented in ``docs/benchmarks.md``), and the perf regression gate
(``tools/check_bench_regression.py``) refuses documents that do not
validate.  The validator is hand-rolled (no jsonschema dependency) but
strict: unknown *required-section* types, missing keys and non-numeric
metrics all fail.

Document shape (format_version 1)::

    {
      "format_version": 1,
      "kind": "repro-mqo-bench",
      "suite": "<suite name>",
      "mode": "service" | "server",
      "created_unix": <float>,
      "env": {...},                      # environment_fingerprint()
      "config": {...},                   # free-form run configuration
      "scenarios": [
        {
          "name": "<scenario>", "family": "<family>",
          "jobs": <int>, "failures": <int>,
          "duration_s": <float>,
          "throughput_jobs_per_s": <float>,
          "latency_ms": {"p50":, "p99":, "max":, "mean":},
          "quality": {"mean_gap_to_best_known":, "worst_gap_to_best_known":,
                      "best_known_matches": <int>},
          ...                            # extra keys allowed
        }, ...
      ],
      "totals": {
        "jobs": <int>, "failures": <int>, "duration_s": <float>,
        "throughput_jobs_per_s": <float>,
        "latency_ms": {"p50":, "p99":, "max":, "mean":}
      }
    }
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.bench.env import environment_fingerprint
from repro.bench.stats import LATENCY_KEYS
from repro.exceptions import ReproError

__all__ = [
    "BENCH_FORMAT_VERSION",
    "BENCH_KIND",
    "BenchSchemaError",
    "build_bench_document",
    "validate_bench_document",
    "load_bench_document",
    "save_bench_document",
]

BENCH_FORMAT_VERSION = 1
BENCH_KIND = "repro-mqo-bench"

_ENV_REQUIRED_KEYS = ("python", "platform", "cpu_count", "numpy", "git_commit")
_SCENARIO_REQUIRED_NUMBERS = ("duration_s", "throughput_jobs_per_s")
_TOTALS_REQUIRED_NUMBERS = ("duration_s", "throughput_jobs_per_s")


class BenchSchemaError(ReproError):
    """Raised when a BENCH document does not conform to the schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchSchemaError(message)


def _check_number(container: Mapping[str, Any], key: str, where: str) -> None:
    value = container.get(key)
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{where}.{key} must be a number, got {value!r}",
    )


def _check_latency_block(container: Mapping[str, Any], where: str) -> None:
    block = container.get("latency_ms")
    _require(isinstance(block, Mapping), f"{where}.latency_ms must be an object")
    for key in LATENCY_KEYS:
        _check_number(block, key, f"{where}.latency_ms")
    _require(
        block["p50"] <= block["p99"] <= block["max"],
        f"{where}.latency_ms percentiles must be ordered p50 <= p99 <= max",
    )


def validate_bench_document(document: Mapping[str, Any]) -> None:
    """Validate ``document`` against the BENCH schema; raises on failure."""
    _require(isinstance(document, Mapping), "BENCH document must be a JSON object")
    _require(
        document.get("format_version") == BENCH_FORMAT_VERSION,
        f"format_version must be {BENCH_FORMAT_VERSION}, "
        f"got {document.get('format_version')!r}",
    )
    _require(
        document.get("kind") == BENCH_KIND,
        f"kind must be {BENCH_KIND!r}, got {document.get('kind')!r}",
    )
    _require(
        isinstance(document.get("suite"), str) and document["suite"] != "",
        "suite must be a non-empty string",
    )
    _require(
        document.get("mode") in ("service", "server"),
        f"mode must be 'service' or 'server', got {document.get('mode')!r}",
    )
    _check_number(document, "created_unix", "document")

    env = document.get("env")
    _require(isinstance(env, Mapping), "env must be an object")
    for key in _ENV_REQUIRED_KEYS:
        _require(key in env, f"env is missing the {key!r} key")

    _require(isinstance(document.get("config"), Mapping), "config must be an object")

    scenarios = document.get("scenarios")
    _require(
        isinstance(scenarios, Sequence) and not isinstance(scenarios, (str, bytes)),
        "scenarios must be an array",
    )
    _require(len(scenarios) > 0, "scenarios must not be empty")
    seen_names = set()
    for position, scenario in enumerate(scenarios):
        where = f"scenarios[{position}]"
        _require(isinstance(scenario, Mapping), f"{where} must be an object")
        for key in ("name", "family"):
            _require(
                isinstance(scenario.get(key), str) and scenario[key] != "",
                f"{where}.{key} must be a non-empty string",
            )
        _require(
            scenario["name"] not in seen_names,
            f"duplicate scenario name {scenario['name']!r}",
        )
        seen_names.add(scenario["name"])
        for key in ("jobs", "failures"):
            value = scenario.get(key)
            _require(
                isinstance(value, int) and not isinstance(value, bool) and value >= 0,
                f"{where}.{key} must be a non-negative integer, got {value!r}",
            )
        for key in _SCENARIO_REQUIRED_NUMBERS:
            _check_number(scenario, key, where)
        _check_latency_block(scenario, where)

    totals = document.get("totals")
    _require(isinstance(totals, Mapping), "totals must be an object")
    for key in ("jobs", "failures"):
        value = totals.get(key)
        _require(
            isinstance(value, int) and not isinstance(value, bool) and value >= 0,
            f"totals.{key} must be a non-negative integer, got {value!r}",
        )
    for key in _TOTALS_REQUIRED_NUMBERS:
        _check_number(totals, key, "totals")
    _check_latency_block(totals, "totals")
    _require(
        totals["jobs"] == sum(s["jobs"] for s in scenarios),
        "totals.jobs must equal the sum of per-scenario jobs",
    )


def build_bench_document(
    suite: str,
    mode: str,
    scenarios: List[Dict[str, Any]],
    totals: Dict[str, Any],
    config: Optional[Dict[str, Any]] = None,
    env: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble and validate a BENCH document from its parts."""
    document = {
        "format_version": BENCH_FORMAT_VERSION,
        "kind": BENCH_KIND,
        "suite": suite,
        "mode": mode,
        "created_unix": round(time.time(), 3),
        "env": env if env is not None else environment_fingerprint(),
        "config": dict(config or {}),
        "scenarios": scenarios,
        "totals": totals,
    }
    validate_bench_document(document)
    return document


def save_bench_document(document: Mapping[str, Any], path: str | Path) -> Path:
    """Validate and write ``document`` to ``path`` (pretty-printed)."""
    validate_bench_document(document)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path


def load_bench_document(path: str | Path) -> Dict[str, Any]:
    """Read and validate a BENCH document from ``path``."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise BenchSchemaError(f"cannot read BENCH document {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path} is not valid JSON: {exc}") from exc
    validate_bench_document(document)
    return document
