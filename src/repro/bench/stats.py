"""Latency/throughput summarisation shared by every benchmark.

One estimator for the whole repository: the nearest-rank percentile (the
same convention as the server's metrics endpoint), so client-side bench
numbers, server-side stats and BENCH documents stay comparable.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Sequence

from repro.exceptions import ReproError

__all__ = ["percentile", "summarize_latencies", "LATENCY_KEYS"]

#: The keys every ``latency_ms`` block in a BENCH document carries.
LATENCY_KEYS = ("p50", "p99", "max", "mean")


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in (0, 1])."""
    if not samples:
        raise ReproError("cannot take a percentile of zero samples")
    if not 0.0 < q <= 1.0:
        raise ReproError(f"percentile q must be in (0, 1], got {q}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return float(ordered[rank - 1])


def summarize_latencies(samples_ms: Sequence[float]) -> Dict[str, Any]:
    """The standard ``latency_ms`` block: p50/p99/max/mean, rounded."""
    if not samples_ms:
        raise ReproError("cannot summarise zero latency samples")
    return {
        "p50": round(percentile(samples_ms, 0.50), 3),
        "p99": round(percentile(samples_ms, 0.99), 3),
        "max": round(max(samples_ms), 3),
        "mean": round(sum(samples_ms) / len(samples_ms), 3),
    }
