"""Latency/throughput summarisation shared by every benchmark.

One estimator for the whole repository: the nearest-rank percentile,
implemented once in :mod:`repro.obs.metrics` and re-exported here, so
client-side bench numbers, server-side stats and BENCH documents stay
comparable.  (Historically this module and ``server/metrics.py`` used
two subtly different definitions; they now share one.)
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from repro.exceptions import ReproError
from repro.obs.metrics import percentile, percentiles

__all__ = ["percentile", "percentiles", "summarize_latencies", "LATENCY_KEYS"]

#: The keys every ``latency_ms`` block in a BENCH document carries.
LATENCY_KEYS = ("p50", "p99", "max", "mean")


def summarize_latencies(samples_ms: Sequence[float]) -> Dict[str, Any]:
    """The standard ``latency_ms`` block: p50/p99/max/mean, rounded.

    Sorts the samples once for both percentiles.
    """
    if not samples_ms:
        raise ReproError("cannot summarise zero latency samples")
    p50, p99 = percentiles(samples_ms, (0.50, 0.99))
    return {
        "p50": round(p50, 3),
        "p99": round(p99, 3),
        "max": round(max(samples_ms), 3),
        "mean": round(sum(samples_ms) / len(samples_ms), 3),
    }
