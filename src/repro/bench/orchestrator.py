"""The unified benchmark orchestrator behind ``repro-mqo bench``.

One runner for every registered workload suite: build each scenario's
instances deterministically, push them through a solver — either the
in-process :class:`~repro.service.frontend.ServiceFrontend` (``service``
mode) or a real :class:`~repro.server.app.SolverServer` over TCP
(``server`` mode) — and emit one schema-validated BENCH document
(:mod:`repro.bench.schema`) with per-scenario p50/p99 latency,
throughput and solution quality against a best-known reference.

Quality metric: for every instance the orchestrator also runs a cheap
deterministic reference solver (``GREEDY`` by default); the *best known*
cost of the instance is the minimum of the reference's and the measured
run's results, and the reported gap is ``(achieved - best_known) /
max(1, |best_known|)`` — 0 means the run matched the best known
solution, positive means it fell short.

Suites carrying an :class:`~repro.workloads.arrivals.ArrivalProcess`
run **open-loop** in server mode: jobs are submitted on the schedule
regardless of completions, and latency is measured from the scheduled
arrival (so queueing delay under overload is visible).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.bench.schema import build_bench_document, save_bench_document
from repro.bench.stats import summarize_latencies
from repro.exceptions import ReproError
from repro.mqo.problem import MQOProblem
from repro.mqo.serialization import problem_to_dict
from repro.obs.trace import Span, configure_tracer, get_tracer
from repro.server.app import ServerConfig, run_server_in_thread
from repro.server.client import SolverClient
from repro.service.frontend import ServiceFrontend
from repro.service.jobs import SolveRequest, SolveResult
from repro.service.registry import default_registry
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table
from repro.workloads.arrivals import schedule_jobs
from repro.workloads.base import ScenarioSpec
from repro.workloads.suites import WorkloadSuite, get_suite

__all__ = [
    "BenchRunConfig",
    "BenchOrchestrator",
    "render_summary",
    "emit_workload_jsonl",
    "stage_breakdown_from_spans",
    "STAGE_SPAN_NAMES",
]

#: The gap below which a run counts as matching the best-known solution.
_MATCH_EPSILON = 1e-9

#: Pipeline stages reported in every ``stage_breakdown`` block, mapped to
#: the span names that feed them.  Stages a run never exercised (CLIMB
#: has no anneal) still appear, zeroed, so downstream dashboards can rely
#: on the keys.
STAGE_SPAN_NAMES = {
    "qubo_build": "mqo.qubo_build",
    "embed": "mqo.embed",
    "physical_map": "mqo.physical_map",
    "anneal": "mqo.anneal",
    "decode": "mqo.decode",
    "solve": "service.execute",
}


def stage_breakdown_from_spans(
    spans: List[Span], queue_wait: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Aggregate finished spans into the per-stage latency breakdown.

    Every stage in :data:`STAGE_SPAN_NAMES` plus ``queue_wait`` is
    always present with ``count``/``total_ms``/``mean_ms``; ``queue_wait``
    comes from the server's metrics snapshot in server mode and stays
    zero in service mode (there is no queue in-process).

    Spans adopted from shard processes carry a ``shard`` attribute
    (tagged by the parent as results arrive); when any are present a
    ``per_shard`` block repeats the stage aggregation per shard, so a
    sharded server-mode run shows which shard the time was burned on.
    """
    by_name: Dict[str, List[float]] = {}
    by_shard: Dict[str, Dict[str, List[float]]] = {}
    for span in spans:
        if span.duration_ms is None:
            continue
        by_name.setdefault(span.name, []).append(span.duration_ms)
        shard = span.attributes.get("shard")
        if shard is not None:
            shard_names = by_shard.setdefault(str(shard), {})
            shard_names.setdefault(span.name, []).append(span.duration_ms)

    def aggregate(groups: Dict[str, List[float]]) -> Dict[str, Dict[str, float]]:
        block: Dict[str, Dict[str, float]] = {}
        for stage, span_name in STAGE_SPAN_NAMES.items():
            durations = groups.get(span_name, [])
            total = float(sum(durations))
            block[stage] = {
                "count": len(durations),
                "total_ms": round(total, 3),
                "mean_ms": round(total / len(durations), 3) if durations else 0.0,
            }
        return block

    breakdown: Dict[str, Any] = aggregate(by_name)
    wait_count = int(queue_wait.get("count", 0)) if queue_wait else 0
    wait_mean = float(queue_wait.get("mean_ms", 0.0)) if queue_wait else 0.0
    breakdown["queue_wait"] = {
        "count": wait_count,
        "total_ms": round(wait_count * wait_mean, 3),
        "mean_ms": round(wait_mean, 3),
    }
    if by_shard:
        breakdown["per_shard"] = {
            shard: aggregate(groups)
            for shard, groups in sorted(by_shard.items(), key=lambda item: item[0])
        }
    return breakdown


@dataclass
class BenchRunConfig:
    """Run configuration of one bench invocation.

    Attributes
    ----------
    suite:
        Name of a registered workload suite.
    mode:
        ``"service"`` (in-process frontend) or ``"server"`` (real TCP
        server on an ephemeral port).
    solver:
        Registered solver name (or ``"portfolio"``) applied to every job.
    budget_ms / instances:
        Overrides of the suite's ``default_budget_ms`` /
        ``instances_per_scenario`` (``None`` keeps the suite default).
    seed:
        Base seed for per-job solve seeds (instance generation uses the
        scenario seeds, so the *problems* do not depend on this).
    workers:
        Server worker slots (``server`` mode only; 0 picks the default).
    fusion_window_ms / fusion_max_jobs:
        ``server`` mode only: a positive window selects the
        :class:`~repro.server.workers.FusionPool`, which coalesces
        annealing jobs admitted within the window into one fused
        block-diagonal anneal (see ``docs/fusion.md``).
    quality_reference:
        Registered solver providing the best-known quality reference;
        empty string disables the quality pass.
    """

    suite: str
    mode: str = "service"
    solver: str = "CLIMB"
    budget_ms: Optional[float] = None
    instances: Optional[int] = None
    seed: int = 0
    workers: int = 0
    fusion_window_ms: float = 0.0
    fusion_max_jobs: int = 8
    quality_reference: str = "GREEDY"
    extra_config: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in ("service", "server"):
            raise ReproError(f"bench mode must be 'service' or 'server', got {self.mode!r}")
        if self.budget_ms is not None and self.budget_ms <= 0:
            raise ReproError(f"budget_ms must be positive, got {self.budget_ms}")
        if self.instances is not None and self.instances <= 0:
            raise ReproError(f"instances must be positive, got {self.instances}")


@dataclass
class _JobOutcome:
    """One job's measurement: scenario, latency, result, best-known gap."""

    scenario: str
    latency_ms: float
    result: SolveResult
    problem: MQOProblem
    job_index: int
    gap: Optional[float] = None


class BenchOrchestrator:
    """Runs one workload suite and produces a BENCH document."""

    def __init__(
        self,
        config: BenchRunConfig,
        frontend: ServiceFrontend | None = None,
    ) -> None:
        self.config = config
        self.suite: WorkloadSuite = get_suite(config.suite)
        self.frontend = frontend if frontend is not None else ServiceFrontend()
        self.budget_ms = (
            config.budget_ms if config.budget_ms is not None else self.suite.default_budget_ms
        )
        self.instances = (
            config.instances
            if config.instances is not None
            else self.suite.instances_per_scenario
        )
        if self._open_loop and config.instances is not None:
            raise ReproError(
                f"suite {self.suite.name!r} runs open-loop in server mode: its "
                "job count comes from the arrival schedule, so --instances "
                "does not apply"
            )
        #: Spans collected during the last :meth:`run` (the CLI's
        #: ``--trace`` flag writes these out as NDJSON).
        self.last_spans: List[Span] = []
        #: Raw per-job latencies of the last :meth:`run`, in completion
        #: order — lets composite benches (e.g. the fusion A/B) merge
        #: several runs into one honest totals summary.
        self.last_latencies: List[float] = []
        self._server_stats: Optional[Dict[str, Any]] = None

    @property
    def _open_loop(self) -> bool:
        """Whether this run submits on an arrival schedule."""
        return self.config.mode == "server" and self.suite.arrival is not None

    # ------------------------------------------------------------------ #
    # Instance and request construction
    # ------------------------------------------------------------------ #
    def _scenario_jobs(self) -> List[Tuple[ScenarioSpec, int, MQOProblem]]:
        """Every (spec, instance, problem) of the run, in suite order."""
        jobs = []
        for spec in self.suite.scenarios:
            for instance in range(self.instances):
                jobs.append((spec, instance, spec.build(instance)))
        return jobs

    def _request_for(
        self, problem: MQOProblem, job_index: int
    ) -> SolveRequest:
        """The solve request of job number ``job_index``."""
        return SolveRequest(
            problem=problem,
            solver=self.config.solver,
            time_budget_ms=self.budget_ms,
            seed=derive_seed(self.config.seed, job_index),
            job_id=problem.name,
        )

    # ------------------------------------------------------------------ #
    # Quality reference
    # ------------------------------------------------------------------ #
    def _reference_cost(self, problem: MQOProblem, job_index: int) -> Optional[float]:
        """Best-known reference cost, or ``None`` when disabled/failed."""
        if not self.config.quality_reference:
            return None
        registry = self.frontend.registry if self.frontend is not None else default_registry()
        try:
            solver = registry.create(self.config.quality_reference)
            trajectory = solver.solve(
                problem,
                time_budget_ms=self.budget_ms,
                seed=derive_seed(self.config.seed, job_index),
            )
        except ReproError:
            return None
        return trajectory.best_cost if trajectory.best_solution is not None else None

    @staticmethod
    def _gap(achieved: Optional[float], reference: Optional[float]) -> Optional[float]:
        """Relative gap of ``achieved`` to the best-known cost."""
        candidates = [c for c in (achieved, reference) if c is not None]
        if achieved is None or not candidates:
            return None
        best_known = min(candidates)
        return (achieved - best_known) / max(1.0, abs(best_known))

    # ------------------------------------------------------------------ #
    # Execution modes
    # ------------------------------------------------------------------ #
    def _run_service(self) -> Tuple[List[_JobOutcome], float]:
        """Closed-loop run through the in-process service frontend."""
        outcomes: List[_JobOutcome] = []
        start = time.perf_counter()
        for job_index, (spec, _instance, problem) in enumerate(self._scenario_jobs()):
            request = self._request_for(problem, job_index)
            job_start = time.perf_counter()
            result = self.frontend.submit(request)
            latency_ms = (time.perf_counter() - job_start) * 1000.0
            outcomes.append(_JobOutcome(spec.name, latency_ms, result, problem, job_index))
        return outcomes, time.perf_counter() - start

    def _run_server(self) -> Tuple[List[_JobOutcome], float]:
        """Run against a real server on an ephemeral port.

        Closed-loop by default; open-loop on the suite's arrival
        schedule when one is attached.
        """
        workers = self.config.workers or 2
        handle = run_server_in_thread(
            ServerConfig(
                port=0,
                workers=workers,
                queue_capacity=1024,
                fusion_window_ms=self.config.fusion_window_ms,
                fusion_max_jobs=self.config.fusion_max_jobs,
            ),
            self.frontend,
        )
        try:
            if self.suite.arrival is not None:
                measured = self._run_server_open_loop(handle.port)
                self._collect_server_stats(handle.port)
                return measured
            outcomes: List[_JobOutcome] = []
            with SolverClient(port=handle.port, client_name="bench", timeout_s=120.0) as client:
                start = time.perf_counter()
                for job_index, (spec, _instance, problem) in enumerate(self._scenario_jobs()):
                    request = self._request_for(problem, job_index)
                    job_start = time.perf_counter()
                    result = client.solve(request)
                    latency_ms = (time.perf_counter() - job_start) * 1000.0
                    outcomes.append(
                        _JobOutcome(spec.name, latency_ms, result, problem, job_index)
                    )
                wall_s = time.perf_counter() - start
                self._server_stats = client.stats()
                return outcomes, wall_s
        finally:
            handle.stop()

    def _collect_server_stats(self, port: int) -> None:
        """Fetch the server's metrics snapshot (for the queue-wait stage)."""
        try:
            with SolverClient(port=port, client_name="bench-stats", timeout_s=30.0) as client:
                self._server_stats = client.stats()
        except Exception:  # noqa: BLE001 — stats are best-effort decoration;
            # losing them must not fail a completed measurement run.
            self._server_stats = None

    #: Connections draining results of an open-loop run.  More than one
    #: so a slow job cannot head-of-line-block the latency measurement
    #: of faster jobs that completed out of order behind it.
    _OPEN_LOOP_COLLECTORS = 4

    def _run_server_open_loop(self, port: int) -> Tuple[List[_JobOutcome], float]:
        """Submit on the arrival schedule; latency counts queueing delay.

        The submitter injects jobs at their scheduled offsets regardless
        of completions; a small pool of collector threads (each on its
        own connection) drains results as they finish.  A job's latency
        runs from its *scheduled* arrival to its collection, so queueing
        delay under overload is part of the number — the open-loop
        signal closed loops cannot see.  Instances are built *before*
        the clock starts, so generation cost can neither delay the
        schedule nor leak into latencies.
        """
        import queue as queue_module
        import threading

        submissions = [
            (due_s, spec, spec.build(instance))
            for due_s, spec, instance in schedule_jobs(
                list(self.suite.scenarios), self.suite.arrival, self.config.seed
            )
        ]
        outcomes: List[_JobOutcome] = []
        outcomes_lock = threading.Lock()
        pending: "queue_module.Queue" = queue_module.Queue()
        start = time.perf_counter()

        def collect() -> None:
            with SolverClient(
                port=port, client_name="bench-collect", timeout_s=120.0
            ) as collector:
                while True:
                    item = pending.get()
                    if item is None:
                        return
                    scenario, due_s, job_id, problem, job_index = item
                    result = collector.wait(job_id)
                    latency_ms = ((time.perf_counter() - start) - due_s) * 1000.0
                    with outcomes_lock:
                        outcomes.append(
                            _JobOutcome(scenario, latency_ms, result, problem, job_index)
                        )

        collectors = [
            threading.Thread(target=collect, name=f"bench-collect-{index}")
            for index in range(self._OPEN_LOOP_COLLECTORS)
        ]
        for thread in collectors:
            thread.start()
        try:
            with SolverClient(
                port=port, client_name="bench-submit", timeout_s=120.0
            ) as client:
                for job_index, (due_s, spec, problem) in enumerate(submissions):
                    now = time.perf_counter() - start
                    if due_s > now:
                        time.sleep(due_s - now)
                    request = self._request_for(problem, job_index)
                    job_id = client.submit(request)
                    pending.put((spec.name, due_s, job_id, problem, job_index))
        finally:
            for _ in collectors:
                pending.put(None)
            for thread in collectors:
                thread.join()
        return outcomes, time.perf_counter() - start

    def _attach_quality(self, outcomes: List[_JobOutcome]) -> None:
        """Compute best-known gaps after the measured run (never inside it).

        The reference solver still runs per instance (it is a solver),
        but the best-known/gap arithmetic over all outcomes happens as
        one NaN-aware array pass instead of per-job Python branching.
        """
        if not self.config.quality_reference or not outcomes:
            return
        achieved = np.full(len(outcomes), np.nan)
        reference = np.full(len(outcomes), np.nan)
        for slot, outcome in enumerate(outcomes):
            if outcome.result.ok and outcome.result.best_cost is not None:
                achieved[slot] = outcome.result.best_cost
            cost = self._reference_cost(outcome.problem, outcome.job_index)
            if cost is not None:
                reference[slot] = cost
        best_known = np.fmin(achieved, reference)  # NaN-ignoring minimum
        with np.errstate(invalid="ignore"):
            gaps = (achieved - best_known) / np.maximum(1.0, np.abs(best_known))
        for outcome, gap in zip(outcomes, gaps.tolist()):
            outcome.gap = None if gap != gap else gap  # NaN -> no gap

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def _scenario_record(
        self, spec: ScenarioSpec, outcomes: List[_JobOutcome]
    ) -> Dict[str, Any]:
        """The per-scenario BENCH block from its job outcomes."""
        latencies = [o.latency_ms for o in outcomes]
        duration_s = sum(latencies) / 1000.0
        gaps = [o.gap for o in outcomes if o.gap is not None]
        record: Dict[str, Any] = {
            "name": spec.name,
            "family": spec.family,
            "jobs": len(outcomes),
            "failures": sum(1 for o in outcomes if not o.result.ok),
            "duration_s": round(duration_s, 3),
            "throughput_jobs_per_s": round(
                len(outcomes) / duration_s if duration_s > 0 else 0.0, 3
            ),
            "latency_ms": summarize_latencies(latencies),
            "params": dict(spec.params),
            "seed": spec.seed,
        }
        if gaps:
            record["quality"] = {
                "mean_gap_to_best_known": round(sum(gaps) / len(gaps), 6),
                "worst_gap_to_best_known": round(max(gaps), 6),
                "best_known_matches": sum(1 for g in gaps if g <= _MATCH_EPSILON),
            }
        return record

    def run(self) -> Dict[str, Any]:
        """Execute the suite and return the validated BENCH document.

        Tracing is switched on for the duration of the run so the
        document can embed a per-stage latency breakdown; the raw spans
        stay available on :attr:`last_spans` for NDJSON export.
        """
        tracer = get_tracer()
        was_enabled = tracer.enabled
        configure_tracer(True)
        tracer.drain()  # stale spans must not pollute this run's breakdown
        self._server_stats = None
        try:
            if self.config.mode == "server":
                outcomes, wall_s = self._run_server()
            else:
                outcomes, wall_s = self._run_service()
        finally:
            self.last_spans = tracer.drain()
            configure_tracer(was_enabled)
        self._attach_quality(outcomes)

        by_scenario: Dict[str, List[_JobOutcome]] = {}
        for outcome in outcomes:
            by_scenario.setdefault(outcome.scenario, []).append(outcome)
        scenario_records = [
            self._scenario_record(spec, by_scenario[spec.name])
            for spec in self.suite.scenarios
            if spec.name in by_scenario
        ]
        all_latencies = [o.latency_ms for o in outcomes]
        self.last_latencies = list(all_latencies)
        queue_wait = (self._server_stats or {}).get("queue_wait")
        totals = {
            "jobs": len(outcomes),
            "failures": sum(1 for o in outcomes if not o.result.ok),
            "duration_s": round(wall_s, 3),
            "throughput_jobs_per_s": round(len(outcomes) / wall_s if wall_s > 0 else 0.0, 3),
            "latency_ms": summarize_latencies(all_latencies),
            "stage_breakdown": stage_breakdown_from_spans(self.last_spans, queue_wait),
        }
        config = {
            "solver": self.config.solver,
            "budget_ms": self.budget_ms,
            "seed": self.config.seed,
            "workers": self.config.workers,
            "quality_reference": self.config.quality_reference,
        }
        if self.config.fusion_window_ms > 0:
            config["fusion_window_ms"] = self.config.fusion_window_ms
            config["fusion_max_jobs"] = self.config.fusion_max_jobs
        if self._open_loop:
            # Open-loop runs take their job count from the arrival
            # schedule; reporting instances_per_scenario here would
            # misdocument the run (see BenchRunConfig).
            config["open_loop"] = True
            config["arrival"] = self.suite.arrival.to_dict()
        else:
            config["instances_per_scenario"] = self.instances
        config.update(self.config.extra_config)
        return build_bench_document(
            suite=self.suite.name,
            mode=self.config.mode,
            scenarios=scenario_records,
            totals=totals,
            config=config,
        )

    def run_and_save(self, output_dir: str | Path) -> Tuple[Dict[str, Any], Path]:
        """Run the suite and write ``BENCH_<suite>.json`` under ``output_dir``."""
        document = self.run()
        path = Path(output_dir) / f"BENCH_{self.suite.name}.json"
        save_bench_document(document, path)
        return document, path


def render_summary(document: Dict[str, Any]) -> str:
    """Human-readable table of a BENCH document (CLI output)."""
    rows = []
    for scenario in document["scenarios"]:
        quality = scenario.get("quality", {})
        rows.append(
            (
                scenario["name"],
                scenario["family"],
                scenario["jobs"],
                scenario["failures"],
                scenario["throughput_jobs_per_s"],
                scenario["latency_ms"]["p50"],
                scenario["latency_ms"]["p99"],
                quality.get("mean_gap_to_best_known", float("nan")),
            )
        )
    totals = document["totals"]
    table = format_table(
        ["scenario", "family", "jobs", "fail", "jobs/s", "p50 ms", "p99 ms", "gap"],
        rows,
        float_fmt=".3f",
    )
    footer = (
        f"suite={document['suite']} mode={document['mode']} "
        f"jobs={totals['jobs']} failures={totals['failures']} "
        f"wall={totals['duration_s']}s "
        f"throughput={totals['throughput_jobs_per_s']} jobs/s "
        f"p99={totals['latency_ms']['p99']} ms"
    )
    return f"{table}\n\n{footer}"


def emit_workload_jsonl(
    suite_name: str,
    path: str | Path,
    solver: str = "CLIMB",
    budget_ms: Optional[float] = None,
    instances: Optional[int] = None,
) -> Path:
    """Write a suite as a JSONL workload for ``repro-mqo batch``/``submit``.

    Each line is a full request dictionary (problem embedded), so the
    batch service and the server rebuild exactly the instances the bench
    orchestrator would run.
    """
    import json

    suite = get_suite(suite_name)
    budget = budget_ms if budget_ms is not None else suite.default_budget_ms
    count = instances if instances is not None else suite.instances_per_scenario
    path = Path(path)
    with path.open("w", encoding="utf-8") as sink:
        for spec in suite.scenarios:
            for instance in range(count):
                problem = spec.build(instance)
                line = {
                    "problem": problem_to_dict(problem),
                    "solver": solver,
                    "time_budget_ms": budget,
                    "job_id": problem.name,
                    "metadata": {"scenario": spec.name, "family": spec.family},
                }
                sink.write(json.dumps(line) + "\n")
    return path
