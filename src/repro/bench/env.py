"""Environment fingerprinting for benchmark documents.

Every BENCH document embeds a snapshot of the machine and software
stack that produced it, so two numbers are never compared without
knowing whether they came from comparable environments (the perf
regression gate prints both fingerprints on failure).
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Any, Dict

__all__ = ["environment_fingerprint"]


def _git_commit() -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = output.stdout.strip()
    return commit if output.returncode == 0 and commit else "unknown"


def environment_fingerprint() -> Dict[str, Any]:
    """A JSON-friendly snapshot of the benchmarking environment.

    Captures the interpreter, platform, CPU count, the versions of the
    numeric stack, the git commit and whether CI is detected (the ``CI``
    environment variable convention).
    """
    import numpy

    try:
        import scipy

        scipy_version = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a hard dep today
        scipy_version = "unavailable"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": numpy.__version__,
        "scipy": scipy_version,
        "git_commit": _git_commit(),
        "ci": bool(os.environ.get("CI")),
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else "",
    }
