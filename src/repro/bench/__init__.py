"""repro.bench — the unified benchmark orchestrator and BENCH schema.

Every benchmark in this repository emits one schema-validated
``benchmark_results/BENCH_<suite>.json`` (see ``docs/benchmarks.md``):

* :mod:`repro.bench.schema` — the document shape, validator, and
  build/save/load helpers,
* :mod:`repro.bench.stats` — the shared nearest-rank latency estimator,
* :mod:`repro.bench.env` — the environment fingerprint embedded in
  every document,
* :mod:`repro.bench.orchestrator` — :class:`BenchOrchestrator`, which
  runs any registered workload suite (:mod:`repro.workloads`) against
  the service frontend or a live server and aggregates latency,
  throughput and solution quality.

``repro-mqo bench --suite <name>`` is the CLI entry point;
``tools/check_bench_regression.py`` gates CI on these documents.
"""

from repro.bench.env import environment_fingerprint
from repro.bench.orchestrator import (
    BenchOrchestrator,
    BenchRunConfig,
    emit_workload_jsonl,
    render_summary,
)
from repro.bench.schema import (
    BENCH_FORMAT_VERSION,
    BENCH_KIND,
    BenchSchemaError,
    build_bench_document,
    load_bench_document,
    save_bench_document,
    validate_bench_document,
)
from repro.bench.stats import percentile, summarize_latencies

__all__ = [
    "BENCH_FORMAT_VERSION",
    "BENCH_KIND",
    "BenchOrchestrator",
    "BenchRunConfig",
    "BenchSchemaError",
    "build_bench_document",
    "emit_workload_jsonl",
    "environment_fingerprint",
    "load_bench_document",
    "percentile",
    "render_summary",
    "save_bench_document",
    "summarize_latencies",
    "validate_bench_document",
]
