"""Portfolio scheduler: race several solvers on one instance.

Algorithm-portfolio scheduling is the classical answer to "which solver
should I run?": run several and keep the best.  The scheduler takes a
list of registered solver names, gives every member its own child seed
derived from the job seed, runs them under a shared wall-clock budget —
either truly concurrently on threads or sequentially on equal budget
slices — and returns the best-cost winner together with every member's
trajectory and the merged anytime trajectory of the whole portfolio.

Winner selection is deterministic: lowest best cost, ties broken by the
position of the solver in the raced line-up (registration order when the
line-up comes from the registry).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.anytime import (
    ImprovementObserver,
    SolverTrajectory,
    current_improvement_observers,
    observe_improvements,
)
from repro.exceptions import ServiceError
from repro.mqo.problem import MQOProblem, MQOSolution
from repro.obs.trace import get_tracer
from repro.service.registry import SolverRegistry, default_registry
from repro.utils.rng import derive_seed
from repro.utils.stopwatch import Stopwatch

__all__ = ["PortfolioScheduler", "PortfolioResult", "MERGED_TRAJECTORY_NAME"]

#: Solver name carried by the merged portfolio trajectory.
MERGED_TRAJECTORY_NAME = "PORTFOLIO"


def _member_seed(base_seed: Optional[int], member_index: int) -> int:
    """Deterministic child seed for portfolio member ``member_index``."""
    return derive_seed(base_seed, member_index)


@dataclass
class PortfolioResult:
    """Outcome of racing a portfolio on one instance.

    Attributes
    ----------
    problem:
        The raced instance.
    winner:
        Name of the member with the best final cost (``""`` when every
        member failed).
    trajectories:
        Per-member trajectories keyed by solver name (only members that
        finished successfully).
    merged_trajectory:
        Best-so-far envelope over all members, named
        :data:`MERGED_TRAJECTORY_NAME`; its ``best_solution`` is the
        winner's.
    errors:
        Member failures keyed by solver name (the race tolerates
        individual failures as long as one member succeeds).
    total_time_ms:
        Wall-clock time of the whole race.
    skipped:
        Members excluded up front because their capabilities reject the
        instance (e.g. too large for the annealer).
    """

    problem: MQOProblem
    winner: str
    trajectories: Dict[str, SolverTrajectory]
    merged_trajectory: SolverTrajectory
    errors: Dict[str, str] = field(default_factory=dict)
    total_time_ms: float = 0.0
    skipped: Tuple[str, ...] = ()

    @property
    def best_solution(self) -> Optional[MQOSolution]:
        """The winning solution (``None`` when every member failed)."""
        return self.merged_trajectory.best_solution

    @property
    def best_cost(self) -> float:
        """Cost of the winning solution (``inf`` when every member failed)."""
        return self.merged_trajectory.best_cost

    @property
    def winner_trajectory(self) -> SolverTrajectory:
        """The winner's own trajectory."""
        if not self.winner:
            raise ServiceError("portfolio produced no winner; see .errors")
        return self.trajectories[self.winner]


class PortfolioScheduler:
    """Race registered solvers on one instance under a shared budget.

    Parameters
    ----------
    registry:
        Solver registry to resolve names against (the process-wide
        default registry when omitted).
    solvers:
        Default line-up raced by :meth:`solve` when the call does not
        specify one.  ``None`` means "every registered solver that
        supports the instance".
    mode:
        ``"threads"`` races all members concurrently, each under the full
        wall-clock budget — real racing, finishing when the slowest
        member's budget expires.  ``"split"`` runs members sequentially
        on equal slices of the budget, which trades concurrency for
        per-member timing that is unaffected by GIL contention.
    """

    MODES = ("threads", "split")

    def __init__(
        self,
        registry: SolverRegistry | None = None,
        solvers: Sequence[str] | None = None,
        mode: str = "threads",
    ) -> None:
        if mode not in self.MODES:
            raise ServiceError(f"unknown portfolio mode {mode!r}; expected {self.MODES}")
        self.registry = registry if registry is not None else default_registry()
        self.solvers = tuple(solvers) if solvers is not None else None
        self.mode = mode

    # ------------------------------------------------------------------ #
    # Line-up selection
    # ------------------------------------------------------------------ #
    def lineup(
        self, problem: MQOProblem, solvers: Sequence[str] | None = None
    ) -> Tuple[List[str], Tuple[str, ...]]:
        """Resolve the raced member names plus the capability-skipped ones.

        Explicitly requested names must exist in the registry; members
        whose capabilities reject the instance are skipped (reported, not
        raced).
        """
        requested = list(solvers if solvers is not None else self.solvers or self.registry.names())
        raced: List[str] = []
        skipped: List[str] = []
        for name in requested:
            spec = self.registry.get(name)
            if spec.capabilities.supports(problem):
                raced.append(name)
            else:
                skipped.append(name)
        if not raced:
            raise ServiceError(
                f"no portfolio member supports problem with {problem.num_plans} plans "
                f"(requested: {requested})"
            )
        return raced, tuple(skipped)

    # ------------------------------------------------------------------ #
    # Racing
    # ------------------------------------------------------------------ #
    def solve(
        self,
        problem: MQOProblem,
        time_budget_ms: float,
        seed: Optional[int] = None,
        solvers: Sequence[str] | None = None,
    ) -> PortfolioResult:
        """Race the portfolio on ``problem`` and return the full outcome."""
        if time_budget_ms <= 0:
            raise ServiceError(f"time_budget_ms must be positive, got {time_budget_ms}")
        raced, skipped = self.lineup(problem, solvers)
        stopwatch = Stopwatch().start()

        # Instantiate members up front and give solvers with a prepare()
        # hook (the QA adapter) the chance to compile the instance before
        # the race: the compilation lands in a shared cache, so it is paid
        # once instead of inside every member's timed budget.
        members = {name: self.registry.create(name) for name in raced}
        for name, solver in members.items():
            prepare = getattr(solver, "prepare", None)
            if callable(prepare):
                try:
                    prepare(problem)
                except Exception:  # noqa: BLE001 — preparation is best-effort;
                    # a failing member surfaces its error from solve() below.
                    pass

        # Anytime observers are registered per thread; capture the caller's
        # set so member threads can forward their improvements too (the
        # solver server streams live updates through this hook).  The
        # ambient span context is captured the same way: contextvars do
        # not cross ThreadPoolExecutor boundaries, so each member thread
        # re-installs the caller's context before opening its own span.
        inherited: Tuple[ImprovementObserver, ...] = current_improvement_observers()
        tracer = get_tracer()
        parent_context = tracer.current_context()

        def run_member(
            position: int,
            name: str,
            observers: Tuple[ImprovementObserver, ...] = (),
        ) -> SolverTrajectory:
            solver = members[name]
            budget = (
                time_budget_ms if self.mode == "threads" else time_budget_ms / len(raced)
            )
            with tracer.activate(parent_context):
                with tracer.span("portfolio.member", {"solver": name}):
                    with observe_improvements(*observers):
                        return solver.solve(
                            problem, budget, seed=_member_seed(seed, position)
                        )

        trajectories: Dict[str, SolverTrajectory] = {}
        errors: Dict[str, str] = {}
        start_offsets: Dict[str, float] = {}
        if self.mode == "threads" and len(raced) > 1:
            start_offsets = {name: 0.0 for name in raced}  # all start together
            with ThreadPoolExecutor(max_workers=len(raced)) as pool:
                futures = {
                    name: pool.submit(run_member, position, name, inherited)
                    for position, name in enumerate(raced)
                }
                for name, future in futures.items():
                    try:
                        trajectories[name] = future.result()
                    except Exception as exc:  # noqa: BLE001 — any member failure
                        # lands in .errors; the race survives as long as one
                        # member succeeds.
                        errors[name] = f"{type(exc).__name__}: {exc}"
        else:
            for position, name in enumerate(raced):
                start_offsets[name] = stopwatch.elapsed_ms()
                try:
                    trajectories[name] = run_member(position, name)
                except Exception as exc:  # noqa: BLE001 — see above
                    errors[name] = f"{type(exc).__name__}: {exc}"

        winner = self._pick_winner(raced, trajectories)
        merged = self._merge(raced, trajectories, winner, start_offsets)
        merged.total_time_ms = stopwatch.elapsed_ms()
        return PortfolioResult(
            problem=problem,
            winner=winner,
            trajectories=trajectories,
            merged_trajectory=merged,
            errors=errors,
            total_time_ms=merged.total_time_ms,
            skipped=skipped,
        )

    @staticmethod
    def _pick_winner(raced: List[str], trajectories: Dict[str, SolverTrajectory]) -> str:
        """Lowest best cost; ties resolved by line-up position."""
        winner = ""
        winner_cost = float("inf")
        for name in raced:  # line-up order makes the tie-break deterministic
            trajectory = trajectories.get(name)
            if trajectory is None or trajectory.best_solution is None:
                continue
            if trajectory.best_cost < winner_cost - 1e-12:
                winner = name
                winner_cost = trajectory.best_cost
        return winner

    @staticmethod
    def _merge(
        raced: List[str],
        trajectories: Dict[str, SolverTrajectory],
        winner: str,
        start_offsets: Dict[str, float],
    ) -> SolverTrajectory:
        """Best-so-far envelope over every member's anytime points.

        Member trajectories keep their solver-local time axes; the merged
        envelope lives on the race's wall-clock axis, so each member's
        points are shifted by its start offset (zero when racing on
        threads, the member's sequential start time in split mode).
        """
        ordered = [(name, trajectories[name]) for name in raced if name in trajectories]
        merged = SolverTrajectory.envelope(
            [trajectory for _, trajectory in ordered],
            offsets=[start_offsets.get(name, 0.0) for name, _ in ordered],
            solver_name=MERGED_TRAJECTORY_NAME,
            best_solution=(
                trajectories[winner].best_solution if winner in trajectories else None
            ),
        )
        merged.proved_optimal = any(
            t.proved_optimal
            and t.best_solution is not None
            and abs(t.best_cost - merged.best_cost) < 1e-9
            for t in trajectories.values()
        )
        return merged
