"""Fused execution of many annealing requests in one window.

:func:`execute_fused_requests` is the service-layer half of
cross-request anneal fusion: it takes the requests the server collected
during one admission window, prepares and programs each one exactly as
a solo :class:`~repro.service.qa_adapter.QuantumAnnealingSolver` solve
would, anneals all of them together in a single
:class:`~repro.annealer.fusion.FusionWindow`, then decodes each job on
its own.  Per request the result is **bit-identical** to a solo
:func:`~repro.service.batch.execute_request` call (same seed → same
trajectory, best cost and selected plans); only the wall-clock
``total_time_ms`` differs, because it measures the shared window.

Requests that cannot join the fused anneal fall back to the solo path
transparently:

* requests whose solver is not a :class:`QuantumAnnealingSolver`
  (portfolio requests, classical solvers, scripted test doubles
  registered under the same name),
* annealing solvers configured with ``batch_gauges=False`` and more
  than one gauge batch — their solo path interleaves programming and
  annealing draws per batch, a stream shape the fused loop cannot
  replay.

Failures stay per-request: a request that fails preparation or decoding
becomes an error :class:`~repro.service.jobs.SolveResult` without
touching its window peers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.annealer.fusion import FusionGroup, FusionWindow
from repro.baselines.anytime import SolverTrajectory
from repro.obs.trace import get_tracer
from repro.service.batch import execute_request
from repro.service.jobs import SolveRequest, SolveResult
from repro.service.qa_adapter import QuantumAnnealingSolver
from repro.service.registry import SolverRegistry, default_registry
from repro.utils.rng import ensure_rng
from repro.utils.stopwatch import Stopwatch

__all__ = ["execute_fused_requests"]


@dataclass
class _FusionMember:
    """One request admitted to the fused anneal, with its prepared state."""

    index: int
    request: SolveRequest
    solver: QuantumAnnealingSolver
    pipeline: object  # QuantumMQO
    prepared: object  # PreparedProblem
    programmed: object  # ProgrammedAnneal


def execute_fused_requests(
    requests: Sequence[SolveRequest],
    registry: SolverRegistry | None = None,
    portfolio_mode: str = "threads",
    solo: Optional[Callable[[SolveRequest], SolveResult]] = None,
) -> List[SolveResult]:
    """Execute a window of requests with their anneals fused.

    Parameters
    ----------
    requests:
        The window's requests, in admission order (results come back in
        the same order).
    registry:
        Solver registry names are resolved against.
    portfolio_mode:
        Forwarded to the solo fallback for portfolio requests.
    solo:
        Override for the solo fallback (defaults to
        :func:`~repro.service.batch.execute_request`); the tests use it
        to observe which requests fused.
    """
    registry = registry if registry is not None else default_registry()
    if solo is None:
        def solo(request: SolveRequest) -> SolveResult:
            return execute_request(request, registry=registry, portfolio_mode=portfolio_mode)

    results: List[Optional[SolveResult]] = [None] * len(requests)
    members: List[_FusionMember] = []
    stopwatch = Stopwatch().start()
    tracer = get_tracer()

    # Pass 1 — prepare and program each request exactly as its solo solve
    # would (same rng object threaded through pipeline construction,
    # preparation and programming, so the stream position entering the
    # anneal is identical).
    for index, request in enumerate(requests):
        member = _prepare_member(index, request, registry, results, solo)
        if member is not None:
            members.append(member)

    # Pass 2 — one fused anneal over every admitted request.
    if members:
        groups = [
            FusionGroup(
                qubos=member.programmed.programmed_qubos,
                num_reads=max(member.programmed.batch_sizes),
                rng=member.programmed.rng,
                num_sweeps=member.pipeline.device.batched_sampler.num_sweeps,
                schedule=member.pipeline.device.batched_sampler.schedule,
            )
            for member in members
        ]
        with tracer.span("service.fuse", {"jobs": len(members)}) as span:
            sampled = FusionWindow().sample(groups)
            span.set_attribute(
                "blocks", sum(len(group.qubos) for group in groups)
            )

        # Pass 3 — per-request assembly and decoding (solo code paths).
        for member, (block_states, block_compiled) in zip(members, sampled):
            results[member.index] = _assemble_member(
                member, block_states, block_compiled, stopwatch
            )

    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]


def _prepare_member(
    index: int,
    request: SolveRequest,
    registry: SolverRegistry,
    results: List[Optional[SolveResult]],
    solo: Callable[[SolveRequest], SolveResult],
) -> Optional[_FusionMember]:
    """Prepare one request for fusion, or resolve it via fallback/error.

    Fills ``results[index]`` when the request does not join the fused
    anneal (solo fallback or preparation error) and returns ``None``;
    returns the prepared member otherwise.
    """
    solver = None
    if request.solver in registry:
        try:
            solver = registry.create(request.solver)
        except Exception:  # noqa: BLE001 — let the solo path report it uniformly
            solver = None
    if not isinstance(solver, QuantumAnnealingSolver):
        results[index] = solo(request)
        return None
    try:
        solver._check_budget(request.time_budget_ms)
        rng = ensure_rng(request.seed)
        pipeline = solver._build_pipeline(seed=rng)
        prepared = solver.prepare(request.problem, pipeline=pipeline)
        programmed = pipeline.device.program_anneal(
            prepared.physical.physical_qubo,
            num_reads=solver.reads_for_budget(request.time_budget_ms),
            seed=rng,
        )
    except Exception as exc:  # noqa: BLE001 — mirror execute_request's capture
        results[index] = SolveResult.from_error(request, f"{type(exc).__name__}: {exc}")
        return None
    if not pipeline.device.batch_gauges and len(programmed.batch_sizes) > 1:
        # Sequential gauge batches interleave their draws; replay solo.
        results[index] = solo(request)
        return None
    return _FusionMember(
        index=index,
        request=request,
        solver=solver,
        pipeline=pipeline,
        prepared=prepared,
        programmed=programmed,
    )


def _assemble_member(
    member: _FusionMember,
    block_states,
    block_compiled,
    stopwatch: Stopwatch,
) -> SolveResult:
    """Decode one fused member through its solo assembly path."""
    request = member.request
    tracer = get_tracer()
    try:
        device = member.pipeline.device
        per_batch_assignments = device.batch_assignments(
            block_states, block_compiled, member.programmed.batch_sizes
        )
        sample_set = device.assemble_samples(member.programmed, per_batch_assignments)
        with tracer.span("mqo.decode") as span:
            mqo_result = member.pipeline._collect_result(
                request.problem,
                member.prepared.mapping,
                member.prepared.physical,
                sample_set,
                member.prepared.preprocessing_time_ms,
            )
            span.set_attribute("num_broken_chain_reads", mqo_result.num_broken_chain_reads)
            span.set_attribute("num_invalid_reads", mqo_result.num_invalid_reads)
        trajectory = _monotone_trajectory(member.solver, mqo_result)
        return SolveResult.from_trajectory(
            request,
            trajectory,
            winner=request.solver,
            total_time_ms=stopwatch.elapsed_ms(),
        )
    except Exception as exc:  # noqa: BLE001 — mirror execute_request's capture
        return SolveResult.from_error(request, f"{type(exc).__name__}: {exc}")


def _monotone_trajectory(
    solver: QuantumAnnealingSolver, mqo_result
) -> SolverTrajectory:
    """The adapter's trajectory construction, replayed for a fused solve.

    Identical to the tail of :meth:`QuantumAnnealingSolver.solve`: keep
    strict improvements on the device-time axis.
    """
    points = []
    best = float("inf")
    for time_ms, cost in mqo_result.trajectory:
        if cost < best - 1e-12:
            best = cost
            points.append((time_ms, cost))
    return SolverTrajectory(
        solver_name=solver.name,
        points=points,
        best_solution=mqo_result.best_solution,
        proved_optimal=False,
        total_time_ms=mqo_result.device_time_ms,
    )
