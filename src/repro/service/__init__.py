"""repro.service — batched, concurrent MQO solving above the core pipeline.

The service layer turns the single-instance reproduction into a servable
system:

* :mod:`repro.service.registry` — solvers register under stable names
  with capability metadata (anytime? exact? maximum problem size?),
* :mod:`repro.service.portfolio` — race several registered solvers on
  one instance under a shared wall-clock budget,
* :mod:`repro.service.batch` — solve many instances concurrently on a
  process pool with per-job seeds for deterministic replay,
* :mod:`repro.service.cache` — LRU result cache keyed by the canonical
  problem hash, with optional on-disk JSON persistence,
* :mod:`repro.service.jobs` — the request/response model shared by the
  CLI, the batch executor and the experiment harness,
* :mod:`repro.service.frontend` — :class:`ServiceFrontend`, the facade
  tying registry, portfolio, cache and batch executor together.

Quick start::

    from repro import ServiceFrontend
    from repro.mqo.generator import generate_paper_testcase

    frontend = ServiceFrontend()
    problem = generate_paper_testcase(8, 2, seed=0)
    result = frontend.solve(problem, time_budget_ms=250.0, seed=0)
    print(result.winner, result.best_cost)
"""

from repro.service.batch import BatchExecutor, derive_job_seed, execute_request
from repro.service.cache import CacheStats, ResultCache
from repro.service.frontend import ServiceFrontend
from repro.service.jobs import (
    PORTFOLIO_SOLVER,
    SolveRequest,
    SolveResult,
    request_from_spec,
)
from repro.service.portfolio import PortfolioResult, PortfolioScheduler
from repro.service.qa_adapter import QuantumAnnealingSolver
from repro.service.registry import (
    SolverCapabilities,
    SolverRegistry,
    SolverSpec,
    default_registry,
)

__all__ = [
    "SolverCapabilities",
    "SolverRegistry",
    "SolverSpec",
    "default_registry",
    "QuantumAnnealingSolver",
    "PortfolioScheduler",
    "PortfolioResult",
    "ResultCache",
    "CacheStats",
    "SolveRequest",
    "SolveResult",
    "PORTFOLIO_SOLVER",
    "request_from_spec",
    "BatchExecutor",
    "execute_request",
    "derive_job_seed",
    "ServiceFrontend",
]
