"""LRU result cache keyed by the canonical problem hash.

Values are the JSON-serialisable dictionaries produced by
:meth:`repro.service.jobs.SolveResult.to_dict`, which keeps the cache
trivially persistable: :meth:`ResultCache.save` writes the whole store
to one JSON file and :meth:`ResultCache.load` restores it, so a warm
cache survives process restarts (the ``repro-mqo batch --cache-file``
workflow).

Keys come from :meth:`repro.service.jobs.SolveRequest.cache_key`, which
combines :meth:`~repro.mqo.problem.MQOProblem.canonical_hash` with the
solver choice, budget and seed — structurally identical problems hit the
same entry no matter how their plans were enumerated.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.exceptions import ServiceError

__all__ = ["ResultCache", "CacheStats"]

_CACHE_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of :meth:`ResultCache.get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Thread-safe LRU cache of solve-result dictionaries.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is
        evicted beyond that.
    path:
        Optional JSON file backing the cache.  When given and the file
        exists, the cache warms itself from it on construction; call
        :meth:`save` (the batch executor does) to persist new entries.
    """

    def __init__(self, capacity: int = 256, path: str | Path | None = None) -> None:
        if capacity <= 0:
            raise ServiceError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self._store: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()
        if self.path is not None and self.path.exists():
            self.load()

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result dictionary for ``key``, or ``None`` on a miss."""
        with self._lock:
            try:
                value = self._store[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._store.move_to_end(key)
            self.stats.hits += 1
            return dict(value)

    def put(self, key: str, value: Dict[str, Any]) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry if full."""
        if not isinstance(value, dict):
            raise ServiceError(
                f"cache values must be result dictionaries, got {type(value).__name__}"
            )
        with self._lock:
            self._store[key] = dict(value)
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._store.clear()

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._store

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path | None = None) -> Path:
        """Write the whole store to ``path`` (default: the backing file)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ServiceError("no path given and the cache has no backing file")
        with self._lock:
            payload = {
                "format_version": _CACHE_FORMAT_VERSION,
                "entries": [
                    {"key": key, "value": value} for key, value in self._store.items()
                ],
            }
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(payload))
        return target

    def load(self, path: str | Path | None = None) -> int:
        """Merge entries from ``path`` (default: the backing file).

        Returns the number of entries loaded.  Entries are inserted in
        file order, so the file's most recent entries stay the most
        recently used after a reload.
        """
        source = Path(path) if path is not None else self.path
        if source is None:
            raise ServiceError("no path given and the cache has no backing file")
        try:
            payload = json.loads(source.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServiceError(f"cannot load result cache from {source}: {exc}") from exc
        if payload.get("format_version") != _CACHE_FORMAT_VERSION:
            raise ServiceError(
                f"unsupported cache format version {payload.get('format_version')!r} "
                f"in {source}"
            )
        entries = payload.get("entries", [])
        for entry in entries:
            self.put(str(entry["key"]), entry["value"])
        return len(entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ResultCache {len(self)}/{self.capacity} entries, "
            f"hits={self.stats.hits}, misses={self.stats.misses}>"
        )
