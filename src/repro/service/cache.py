"""LRU result cache keyed by the canonical problem hash.

Values are the JSON-serialisable dictionaries produced by
:meth:`repro.service.jobs.SolveResult.to_dict`, which keeps the cache
trivially persistable: :meth:`ResultCache.save` writes the whole store
to one JSON file and :meth:`ResultCache.load` restores it, so a warm
cache survives process restarts (the ``repro-mqo batch --cache-file``
workflow).  Saves are atomic — the payload is written to a temporary
file next to the target and moved into place with :func:`os.replace` —
so a crash mid-save can never leave a corrupt cache file behind.

Keys come from :meth:`repro.service.jobs.SolveRequest.cache_key`, which
combines :meth:`~repro.mqo.problem.MQOProblem.canonical_hash` with the
solver choice, budget and seed — structurally identical problems hit the
same entry no matter how their plans were enumerated.

Entries can optionally expire: construct the cache with
``ttl_seconds=N`` and any entry older than ``N`` seconds is treated as a
miss (and dropped) on lookup, skipped on load, and purged by
:meth:`ResultCache.purge_expired`.  Entry ages survive persistence via a
``stored_at`` timestamp in the JSON file.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import ServiceError

__all__ = ["ResultCache", "CacheStats"]

_CACHE_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss/eviction/expiry counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of :meth:`ResultCache.get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Thread-safe LRU cache of solve-result dictionaries.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is
        evicted beyond that.
    path:
        Optional JSON file backing the cache.  When given and the file
        exists, the cache warms itself from it on construction; call
        :meth:`save` (the batch executor does) to persist new entries.
    ttl_seconds:
        Optional per-entry time-to-live.  Entries older than this are
        treated as misses on lookup and skipped when loading a persisted
        store.  ``None`` (the default) disables expiry.
    clock:
        Timestamp source used for entry ages (defaults to
        :func:`time.time`; tests inject a fake clock).
    """

    def __init__(
        self,
        capacity: int = 256,
        path: str | Path | None = None,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity <= 0:
            raise ServiceError(f"cache capacity must be positive, got {capacity}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ServiceError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._store: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._stored_at: Dict[str, float] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()
        if self.path is not None and self.path.exists():
            self.load()

    # ------------------------------------------------------------------ #
    # Expiry
    # ------------------------------------------------------------------ #
    def _is_expired(self, key: str, now: float) -> bool:
        """Whether ``key``'s entry has outlived the TTL (lock held)."""
        if self.ttl_seconds is None:
            return False
        stored_at = self._stored_at.get(key)
        return stored_at is not None and now - stored_at > self.ttl_seconds

    def _drop(self, key: str) -> None:
        """Remove one entry and its timestamp (lock held)."""
        self._store.pop(key, None)
        self._stored_at.pop(key, None)

    def purge_expired(self) -> int:
        """Drop every expired entry; returns how many were removed."""
        if self.ttl_seconds is None:
            return 0
        now = self._clock()
        with self._lock:
            stale = [key for key in self._store if self._is_expired(key, now)]
            for key in stale:
                self._drop(key)
                self.stats.expirations += 1
        return len(stale)

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result dictionary for ``key``, or ``None`` on a miss.

        An entry older than the TTL counts as a miss and is dropped.
        """
        with self._lock:
            try:
                value = self._store[key]
            except KeyError:
                self.stats.misses += 1
                return None
            if self._is_expired(key, self._clock()):
                self._drop(key)
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            self._store.move_to_end(key)
            self.stats.hits += 1
            return dict(value)

    def put(self, key: str, value: Dict[str, Any], stored_at: float | None = None) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry if full.

        ``stored_at`` overrides the entry's age timestamp (used when
        re-loading persisted entries so their remaining TTL is honoured).
        """
        if not isinstance(value, dict):
            raise ServiceError(
                f"cache values must be result dictionaries, got {type(value).__name__}"
            )
        with self._lock:
            self._store[key] = dict(value)
            self._stored_at[key] = self._clock() if stored_at is None else float(stored_at)
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                evicted, _ = self._store.popitem(last=False)
                self._stored_at.pop(evicted, None)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._store.clear()
            self._stored_at.clear()

    def __contains__(self, key: object) -> bool:
        """Membership that honours the TTL (expired entries are absent)."""
        with self._lock:
            return key in self._store and not self._is_expired(str(key), self._clock())

    def __len__(self) -> int:
        """Number of *live* (non-expired) entries."""
        with self._lock:
            if self.ttl_seconds is None:
                return len(self._store)
            now = self._clock()
            return sum(1 for key in self._store if not self._is_expired(key, now))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path | None = None) -> Path:
        """Atomically write the whole store to ``path`` (default: the
        backing file).

        The payload lands in a temporary file in the target directory
        first and is moved into place with :func:`os.replace`, so readers
        never observe a partially written store and a crash mid-save
        leaves the previous file intact.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ServiceError("no path given and the cache has no backing file")
        with self._lock:
            entries: List[Dict[str, Any]] = [
                {
                    "key": key,
                    "value": value,
                    "stored_at": self._stored_at.get(key),
                }
                for key, value in self._store.items()
            ]
        payload = {"format_version": _CACHE_FORMAT_VERSION, "entries": entries}
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            prefix=f".{target.name}.", suffix=".tmp", dir=target.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload))
            # mkstemp creates 0600 files; keep the target's permissions
            # (or normal umask-derived ones) so shared caches stay shared.
            try:
                mode = os.stat(target).st_mode & 0o777
            except FileNotFoundError:
                current_umask = os.umask(0)
                os.umask(current_umask)
                mode = 0o666 & ~current_umask
            os.chmod(temp_name, mode)
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return target

    def load(self, path: str | Path | None = None) -> int:
        """Merge entries from ``path`` (default: the backing file).

        Returns the number of entries loaded.  Entries are inserted in
        file order, so the file's most recent entries stay the most
        recently used after a reload.  Entries whose persisted
        ``stored_at`` timestamp has outlived the TTL are skipped; entries
        from files written before timestamps existed count as fresh.
        """
        source = Path(path) if path is not None else self.path
        if source is None:
            raise ServiceError("no path given and the cache has no backing file")
        try:
            payload = json.loads(source.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServiceError(f"cannot load result cache from {source}: {exc}") from exc
        if payload.get("format_version") != _CACHE_FORMAT_VERSION:
            raise ServiceError(
                f"unsupported cache format version {payload.get('format_version')!r} "
                f"in {source}"
            )
        entries = payload.get("entries", [])
        now = self._clock()
        loaded = 0
        for entry in entries:
            stored_at = entry.get("stored_at")
            if (
                self.ttl_seconds is not None
                and stored_at is not None
                and now - float(stored_at) > self.ttl_seconds
            ):
                self.stats.expirations += 1
                continue
            self.put(str(entry["key"]), entry["value"], stored_at=stored_at)
            loaded += 1
        return loaded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ResultCache {len(self)}/{self.capacity} entries, "
            f"hits={self.stats.hits}, misses={self.stats.misses}>"
        )
