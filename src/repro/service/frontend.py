"""ServiceFrontend: the facade of the solver service.

One object wires the registry, the portfolio scheduler, the result cache
and the batch executor together and offers the three entry points the
outer layers need:

* :meth:`ServiceFrontend.solve` — one problem, cache-aware, portfolio or
  named solver,
* :meth:`ServiceFrontend.solve_batch` — many problems, concurrent, with
  per-job seeds,
* :meth:`ServiceFrontend.race` — raw portfolio access returning every
  member's trajectory, which is what
  :class:`~repro.experiments.runner.ExperimentRunner` uses to run its
  solver sweep through the service layer.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.mqo.problem import MQOProblem
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.service.batch import BatchExecutor, execute_request
from repro.service.cache import ResultCache
from repro.service.jobs import PORTFOLIO_SOLVER, SolveRequest, SolveResult
from repro.service.portfolio import PortfolioResult, PortfolioScheduler
from repro.service.registry import SolverRegistry, default_registry

__all__ = ["ServiceFrontend"]

#: Result-cache traffic as seen from the frontend's submit() path.
_CACHE_HITS = get_registry().counter(
    "repro_service_result_cache_hits_total", "Frontend result-cache hits."
)
_CACHE_MISSES = get_registry().counter(
    "repro_service_result_cache_misses_total", "Frontend result-cache misses."
)


def _attribute_winner(winner: str) -> None:
    """Count which solver won this request (portfolio attribution)."""
    get_registry().counter(
        "repro_service_wins_total", "Requests won, by solver.", {"solver": winner or "unknown"}
    ).inc()


class ServiceFrontend:
    """High-level interface to the MQO solver service.

    Parameters
    ----------
    registry:
        Solver registry (the process-wide default when omitted).
    cache:
        Optional result cache shared by :meth:`solve` and
        :meth:`solve_batch`.
    workers:
        Worker processes for batches (0 = inline).
    portfolio_solvers:
        Default portfolio line-up (``None`` = every capable solver).
    portfolio_mode:
        ``"threads"`` (concurrent racing) or ``"split"`` (sequential
        budget slices).
    """

    def __init__(
        self,
        registry: SolverRegistry | None = None,
        cache: ResultCache | None = None,
        workers: int = 0,
        portfolio_solvers: Sequence[str] | None = None,
        portfolio_mode: str = "threads",
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.cache = cache
        self.scheduler = PortfolioScheduler(
            registry=self.registry, solvers=portfolio_solvers, mode=portfolio_mode
        )
        self.executor = BatchExecutor(
            workers=workers,
            cache=cache,
            registry=registry,  # None keeps process workers usable
            portfolio_mode=portfolio_mode,
        )

    # ------------------------------------------------------------------ #
    # Single-instance entry points
    # ------------------------------------------------------------------ #
    def solve(
        self,
        problem: MQOProblem,
        solver: str = PORTFOLIO_SOLVER,
        time_budget_ms: float = 1000.0,
        seed: Optional[int] = None,
        solvers: Sequence[str] | None = None,
    ) -> SolveResult:
        """Solve one problem through the service (cache-aware)."""
        request = SolveRequest(
            problem=problem,
            solver=solver,
            time_budget_ms=time_budget_ms,
            seed=seed,
            solvers=tuple(solvers) if solvers is not None else self.scheduler.solvers,
        )
        return self.submit(request)

    def _with_default_lineup(self, request: SolveRequest) -> SolveRequest:
        """Apply the frontend's portfolio line-up to an unrestricted request.

        Done before cache lookup so ``solve()``, ``submit()`` and
        ``solve_batch()`` compute the same cache key for the same work.
        """
        if (
            request.solver != PORTFOLIO_SOLVER
            or request.solvers is not None
            or self.scheduler.solvers is None
        ):
            return request
        return SolveRequest(
            problem=request.problem,
            solver=request.solver,
            time_budget_ms=request.time_budget_ms,
            seed=request.seed,
            job_id=request.job_id,
            solvers=self.scheduler.solvers,
            metadata=request.metadata,
        )

    def submit(self, request: SolveRequest) -> SolveResult:
        """Solve one prepared request (cache-aware)."""
        request = self._with_default_lineup(request)
        tracer = get_tracer()
        with tracer.span(
            "service.submit", {"solver": request.solver, "job_id": request.job_id or ""}
        ) as span:
            if self.cache is not None:
                cached = self.cache.get(request.cache_key())
                if cached is not None:
                    _CACHE_HITS.inc()
                    span.set_attribute("cache", "hit")
                    result = SolveResult.from_dict(cached)
                    # Identity fields echo the current request, not the one
                    # that populated the cache.
                    result.job_id = request.job_id
                    result.metadata = dict(request.metadata)
                    result.from_cache = True
                    result.total_time_ms = 0.0
                    return result
                _CACHE_MISSES.inc()
                span.set_attribute("cache", "miss")
            result = execute_request(
                request, registry=self.registry, portfolio_mode=self.scheduler.mode
            )
            if result.ok:
                _attribute_winner(result.winner)
                span.set_attribute("winner", result.winner)
            if self.cache is not None and result.ok:
                self.cache.put(request.cache_key(), result.to_dict())
            return result

    def submit_fused(self, requests: Sequence[SolveRequest]) -> List[SolveResult]:
        """Solve a window of requests with their anneals fused.

        The cross-request counterpart of :meth:`submit`, used by the
        server's fusion window: cache hits are served per request
        exactly as :meth:`submit` serves them, and the misses run
        through :func:`~repro.service.fusion.execute_fused_requests`,
        which anneals every annealing-backed request in one fused
        block-diagonal sweep and falls back to the solo path for the
        rest.  Results come back in request order; each is bit-identical
        to what :meth:`submit` would have returned (wall-clock timing
        aside).
        """
        from repro.service.fusion import execute_fused_requests

        requests = [self._with_default_lineup(request) for request in requests]
        results: List[Optional[SolveResult]] = [None] * len(requests)
        misses: List[int] = []
        tracer = get_tracer()
        with tracer.span("service.submit_fused", {"jobs": len(requests)}) as span:
            for index, request in enumerate(requests):
                if self.cache is not None:
                    cached = self.cache.get(request.cache_key())
                    if cached is not None:
                        _CACHE_HITS.inc()
                        result = SolveResult.from_dict(cached)
                        result.job_id = request.job_id
                        result.metadata = dict(request.metadata)
                        result.from_cache = True
                        result.total_time_ms = 0.0
                        results[index] = result
                        continue
                    _CACHE_MISSES.inc()
                misses.append(index)
            span.set_attribute("cache_hits", len(requests) - len(misses))
            if misses:
                executed = execute_fused_requests(
                    [requests[index] for index in misses],
                    registry=self.registry,
                    portfolio_mode=self.scheduler.mode,
                )
                for index, result in zip(misses, executed):
                    if result.ok:
                        _attribute_winner(result.winner)
                        if self.cache is not None:
                            self.cache.put(requests[index].cache_key(), result.to_dict())
                    results[index] = result
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def race(
        self,
        problem: MQOProblem,
        time_budget_ms: float,
        seed: Optional[int] = None,
        solvers: Sequence[str] | None = None,
    ) -> PortfolioResult:
        """Race the portfolio and return every member's trajectory.

        This bypasses the cache — callers like the experiment runner need
        the fresh per-solver trajectories, not a flattened cached result.
        """
        return self.scheduler.solve(problem, time_budget_ms, seed=seed, solvers=solvers)

    # ------------------------------------------------------------------ #
    # Batch entry points
    # ------------------------------------------------------------------ #
    def solve_batch(
        self,
        requests: Sequence[SolveRequest],
        base_seed: Optional[int] = None,
    ) -> List[SolveResult]:
        """Solve a batch; results in request order."""
        return self.executor.run(
            [self._with_default_lineup(request) for request in requests],
            base_seed=base_seed,
        )

    def solve_batch_iter(
        self,
        requests: Sequence[SolveRequest],
        base_seed: Optional[int] = None,
    ) -> Iterator[Tuple[int, SolveResult]]:
        """Stream batch results as they finish (``(input_index, result)``)."""
        return self.executor.run_iter(
            [self._with_default_lineup(request) for request in requests],
            base_seed=base_seed,
        )
