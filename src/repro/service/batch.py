"""Batch executor: solve many instances concurrently with process workers.

The executor takes a sequence of :class:`~repro.service.jobs.SolveRequest`
objects and runs them on a ``ProcessPoolExecutor`` (``workers=0`` runs
everything inline, which is also the fallback when a pool cannot be
spawned).  Jobs cross the process boundary as plain dictionaries, and
each worker resolves solver names against its own process-wide default
registry — custom registries therefore require inline execution.

Determinism: every job that arrives without a seed gets one derived from
the executor's base seed and the job's position
(:func:`derive_job_seed`), so a replayed batch hands every solver the
exact same stream regardless of worker count or completion order.
Results are bit-identical whenever each solver converges within its
wall-clock budget (exact solvers proving optimality always replay
identically; a heuristic truncated mid-flight by CPU contention may not).

An optional :class:`~repro.service.cache.ResultCache` short-circuits
jobs whose key is already cached and absorbs fresh results; when the
cache has a backing file it is saved once at the end of the batch.
Independently of the persistent cache, identical jobs *within* one
batch (same problem, solver, budget and seed) are deduplicated: the
first occurrence is solved and the twins receive an echo of its result.

Annealer jobs additionally benefit from two process-wide caches that
this executor warms as a side effect: the QA adapter's prepared-pipeline
LRU (embedding + physical mapping per instance, keyed by canonical
hash) and the sparse compile-structure cache of
:mod:`repro.annealer.compile`, so repeated QA solves skip recompilation.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ServiceError
from repro.obs.trace import SpanContext, configure_tracer, get_tracer
from repro.service.cache import ResultCache
from repro.service.jobs import (
    PORTFOLIO_SOLVER,
    SolveRequest,
    SolveResult,
    dedupe_key,
    echo_result_for_duplicate,
)
from repro.service.portfolio import PortfolioScheduler
from repro.service.registry import SolverRegistry, default_registry
from repro.utils.rng import derive_seed
from repro.utils.stopwatch import Stopwatch

__all__ = ["BatchExecutor", "execute_request", "derive_job_seed"]


def derive_job_seed(base_seed: Optional[int], job_index: int) -> int:
    """Deterministic per-job seed for position ``job_index`` of a batch."""
    return derive_seed(base_seed, job_index)


def execute_request(
    request: SolveRequest,
    registry: SolverRegistry | None = None,
    portfolio_mode: str = "threads",
) -> SolveResult:
    """Solve one request synchronously in the current process.

    ``solver="portfolio"`` races the portfolio scheduler; any other name
    runs that registered solver directly.  Solver failures are captured
    into :attr:`SolveResult.error` instead of propagating, so one bad job
    cannot take down a batch.
    """
    registry = registry if registry is not None else default_registry()
    stopwatch = Stopwatch().start()
    with get_tracer().span(
        "service.execute", {"solver": request.solver, "job_id": request.job_id or ""}
    ) as span:
        try:
            if request.solver == PORTFOLIO_SOLVER:
                scheduler = PortfolioScheduler(registry=registry, mode=portfolio_mode)
                outcome = scheduler.solve(
                    request.problem,
                    request.time_budget_ms,
                    seed=request.seed,
                    solvers=request.solvers,
                )
                if not outcome.winner:
                    raise ServiceError(
                        f"every portfolio member failed: {outcome.errors}"
                    )
                result = SolveResult.from_trajectory(
                    request,
                    outcome.merged_trajectory,
                    winner=outcome.winner,
                    total_time_ms=stopwatch.elapsed_ms(),
                )
            else:
                solver = registry.create(request.solver)
                trajectory = solver.solve(
                    request.problem, request.time_budget_ms, seed=request.seed
                )
                # The registry name is the stable identity; the trajectory only
                # carries the solver's display name, which may differ.
                result = SolveResult.from_trajectory(
                    request,
                    trajectory,
                    winner=request.solver,
                    total_time_ms=stopwatch.elapsed_ms(),
                )
            span.set_attribute("winner", result.winner)
            return result
        except Exception as exc:  # noqa: BLE001 — any solver failure becomes a
            # per-job error result, so one bad job cannot take down a batch
            # (and inline execution matches what a worker pool would report).
            span.set_attribute("error", type(exc).__name__)
            return SolveResult.from_error(request, f"{type(exc).__name__}: {exc}")


def _execute_job_payload(
    payload: Dict[str, Any],
    portfolio_mode: str,
    trace_context: Optional[Dict[str, str]] = None,
    collect_spans: bool = False,
) -> Dict[str, Any]:
    """Worker entry point: dict in, dict out (must stay module-level so it
    pickles for the process pool).

    With ``collect_spans`` the worker enables its own tracer, parents its
    spans onto the (serialised) ``trace_context`` of the dispatching
    process, and returns ``{"result": ..., "spans": [...]}`` so the
    parent can :meth:`~repro.obs.trace.Tracer.adopt` them.  Without it
    the historical bare result dictionary is returned.
    """
    request = SolveRequest.from_dict(payload)
    if not collect_spans:
        return execute_request(request, portfolio_mode=portfolio_mode).to_dict()
    tracer = configure_tracer(True)
    context = SpanContext.from_dict(trace_context) if trace_context else None
    try:
        with tracer.activate(context):
            result = execute_request(request, portfolio_mode=portfolio_mode)
        spans = [span.to_dict() for span in tracer.drain()]
    finally:
        configure_tracer(False)
    return {"result": result.to_dict(), "spans": spans}


class BatchExecutor:
    """Solve batches of requests, optionally on a process pool.

    Parameters
    ----------
    workers:
        Number of worker processes; ``0`` (or ``1``) solves inline in
        this process.
    cache:
        Optional result cache consulted before dispatch and updated with
        fresh results.  When the cache has a backing file it is saved at
        the end of every batch.
    registry:
        Registry for *inline* execution.  Worker processes always use
        their own default registry, so passing a custom registry
        together with ``workers > 1`` is rejected.
    base_seed:
        Default base seed for :func:`derive_job_seed`; can be overridden
        per run.
    portfolio_mode:
        Racing mode forwarded to the portfolio scheduler.
    dedupe:
        Solve identical jobs (same cache key: problem, solver, budget
        and seed) once per batch and echo the result to the duplicates
        (default).  Duplicates are marked ``from_cache`` since no solver
        ran for them.
    autosave:
        Persist a file-backed cache after every batch (default).
        Callers that run many small batches against one cache (the
        chunked CLI) disable this and save once themselves.
    keep_pool:
        Reuse one process pool across :meth:`run` / :meth:`run_iter`
        calls instead of spawning a fresh pool per call (the chunked CLI
        would otherwise pay a pool spin-up per chunk).  Callers that set
        this own the lifecycle: call :meth:`close` when done.
    """

    def __init__(
        self,
        workers: int = 0,
        cache: ResultCache | None = None,
        registry: SolverRegistry | None = None,
        base_seed: Optional[int] = None,
        portfolio_mode: str = "threads",
        dedupe: bool = True,
        autosave: bool = True,
        keep_pool: bool = False,
    ) -> None:
        if workers < 0:
            raise ServiceError(f"workers must be non-negative, got {workers}")
        if registry is not None and workers > 1:
            raise ServiceError(
                "custom registries cannot cross process boundaries; "
                "use workers=0 for inline execution"
            )
        self.workers = workers
        self.cache = cache
        self.registry = registry
        self.base_seed = base_seed
        self.portfolio_mode = portfolio_mode
        self.dedupe = dedupe
        self.autosave = autosave
        self.keep_pool = keep_pool
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    # Seeding and cache plumbing
    # ------------------------------------------------------------------ #
    def _seeded(
        self, requests: Sequence[SolveRequest], base_seed: Optional[int]
    ) -> List[SolveRequest]:
        """Copy of ``requests`` with per-job seeds and job ids filled in."""
        seeded = []
        for index, request in enumerate(requests):
            seed = (
                request.seed
                if request.seed is not None
                else derive_job_seed(base_seed, index)
            )
            seeded.append(
                SolveRequest(
                    problem=request.problem,
                    solver=request.solver,
                    time_budget_ms=request.time_budget_ms,
                    seed=seed,
                    job_id=request.job_id or f"job-{index}",
                    solvers=request.solvers,
                    metadata=request.metadata,
                )
            )
        return seeded

    def _cache_lookup(self, request: SolveRequest) -> Optional[SolveResult]:
        if self.cache is None:
            return None
        cached = self.cache.get(request.cache_key())
        if cached is None:
            return None
        result = SolveResult.from_dict(cached)
        # Identity fields echo the *current* request, not the one that
        # populated the cache (neither is part of the cache key).
        result.job_id = request.job_id
        result.metadata = dict(request.metadata)
        result.from_cache = True
        result.total_time_ms = 0.0
        return result

    def _cache_store(self, request: SolveRequest, result: SolveResult) -> None:
        if self.cache is not None and result.ok:
            self.cache.put(request.cache_key(), result.to_dict())

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self, requests: Sequence[SolveRequest], base_seed: Optional[int] = None
    ) -> List[SolveResult]:
        """Solve every request; results come back in request order."""
        results: List[Optional[SolveResult]] = [None] * len(requests)
        for index, result in self.run_iter(requests, base_seed=base_seed):
            results[index] = result
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def run_iter(
        self, requests: Sequence[SolveRequest], base_seed: Optional[int] = None
    ) -> Iterator[Tuple[int, SolveResult]]:
        """Yield ``(input_index, result)`` pairs as jobs finish.

        Cache hits are yielded first (no solving happens for them), then
        duplicates of an already-dispatched job are folded onto their
        representative; the rest stream back in completion order.  The
        cache, if any, is persisted to its backing file after the last
        job.
        """
        seeded = self._seeded(requests, base_seed if base_seed is not None else self.base_seed)
        pending: List[Tuple[int, SolveRequest]] = []
        representative_by_key: Dict[str, int] = {}
        duplicates: Dict[int, List[Tuple[int, SolveRequest]]] = {}
        for index, request in enumerate(seeded):
            hit = self._cache_lookup(request)
            if hit is not None:
                yield index, hit
                continue
            if self.dedupe:
                key = dedupe_key(request)
                rep_index = representative_by_key.get(key)
                if rep_index is not None:
                    duplicates.setdefault(rep_index, []).append((index, request))
                    continue
                representative_by_key[key] = index
            pending.append((index, request))

        try:
            if self.workers > 1 and len(pending) > 1:
                source = self._run_pool(pending)
            else:
                source = self._run_inline(pending)
            for index, result in source:
                yield index, result
                for dup_index, dup_request in duplicates.get(index, ()):
                    yield dup_index, self._duplicate_result(result, dup_request)
        finally:
            if self.autosave and self.cache is not None and self.cache.path is not None:
                self.cache.save()

    def _run_inline(
        self, pending: List[Tuple[int, SolveRequest]]
    ) -> Iterator[Tuple[int, SolveResult]]:
        """Solve pending jobs one by one in this process."""
        for index, request in pending:
            result = execute_request(
                request, registry=self.registry, portfolio_mode=self.portfolio_mode
            )
            self._cache_store(request, result)
            yield index, result

    @staticmethod
    def _duplicate_result(result: SolveResult, request: SolveRequest) -> SolveResult:
        """Echo a representative's result to a deduplicated twin request."""
        return echo_result_for_duplicate(result, request)

    def close(self) -> None:
        """Shut down a kept process pool (no-op otherwise)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _acquire_pool(self) -> Tuple[ProcessPoolExecutor, bool]:
        """The pool to dispatch on, plus whether this call owns it."""
        if self.keep_pool:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool, False
        return ProcessPoolExecutor(max_workers=self.workers), True

    def _run_pool(
        self, pending: List[Tuple[int, SolveRequest]]
    ) -> Iterator[Tuple[int, SolveResult]]:
        """Dispatch pending jobs onto a process pool, yielding as completed."""
        pool, ephemeral = self._acquire_pool()
        tracer = get_tracer()
        collect_spans = tracer.enabled
        parent = tracer.current_context() if collect_spans else None
        parent_dict = parent.to_dict() if parent is not None else None
        try:
            futures = {}
            for index, request in pending:
                future = pool.submit(
                    _execute_job_payload,
                    request.to_dict(),
                    self.portfolio_mode,
                    parent_dict,
                    collect_spans,
                )
                futures[future] = (index, request)
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index, request = futures[future]
                    try:
                        payload = future.result()
                        if collect_spans:
                            tracer.adopt(payload.get("spans", ()))
                            payload = payload["result"]
                        result = SolveResult.from_dict(payload)
                    except Exception as exc:  # worker crashed, not a solver error
                        result = SolveResult.from_error(
                            request, f"worker failure: {type(exc).__name__}: {exc}"
                        )
                    self._cache_store(request, result)
                    yield index, result
        finally:
            if ephemeral:
                pool.shutdown()
