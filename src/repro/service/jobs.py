"""Request/response model of the solver service.

A :class:`SolveRequest` bundles one MQO instance with the solver choice
(a registered name or the ``"portfolio"`` pseudo-solver), the time
budget and the seed.  A :class:`SolveResult` is the flat, JSON-friendly
outcome: winning solver, best cost, selected plans, anytime trajectory,
timing and cache provenance.  Both sides round-trip through plain
dictionaries so they can travel across process boundaries (the batch
executor's worker pool) and be streamed as JSONL by the CLI.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.anytime import SolverTrajectory
from repro.exceptions import ServiceError
from repro.mqo.problem import MQOProblem
from repro.mqo.serialization import (
    exact_problem_token,
    problem_from_dict,
    problem_to_dict,
)

__all__ = [
    "PORTFOLIO_SOLVER",
    "SolveRequest",
    "SolveResult",
    "request_from_spec",
    "dedupe_key",
    "echo_result_for_duplicate",
]

#: Pseudo-solver name routing a request through the portfolio scheduler.
PORTFOLIO_SOLVER = "portfolio"


@dataclass
class SolveRequest:
    """One unit of work for the solver service.

    Attributes
    ----------
    problem:
        The MQO instance to solve.
    solver:
        A registered solver name, or :data:`PORTFOLIO_SOLVER` to race
        the portfolio.
    time_budget_ms:
        Wall-clock budget for the run (shared by all portfolio members).
    seed:
        Integer seed for deterministic replay; ``None`` lets the batch
        executor derive one per job from its base seed.
    job_id:
        Caller-chosen identifier echoed into the result.
    solvers:
        Optional restriction of the portfolio line-up to these names.
    metadata:
        Free-form payload echoed into the result untouched.
    """

    problem: MQOProblem
    solver: str = PORTFOLIO_SOLVER
    time_budget_ms: float = 1000.0
    seed: Optional[int] = None
    job_id: str = ""
    solvers: Optional[Tuple[str, ...]] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time_budget_ms <= 0:
            raise ServiceError(
                f"time_budget_ms must be positive, got {self.time_budget_ms}"
            )
        if self.solvers is not None:
            self.solvers = tuple(self.solvers)

    def cache_key(self) -> str:
        """Cache key: canonical problem hash + solving configuration.

        The seed is part of the key because stochastic solvers produce
        seed-dependent results; two requests hit the same entry only when
        they would provably compute the same answer.
        """
        config = {
            "problem": self.problem.canonical_hash(),
            "solver": self.solver,
            "solvers": list(self.solvers) if self.solvers is not None else None,
            "time_budget_ms": self.time_budget_ms,
            "seed": self.seed,
        }
        payload = json.dumps(config, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (used to ship jobs to worker processes)."""
        return {
            "problem": problem_to_dict(self.problem),
            "solver": self.solver,
            "time_budget_ms": self.time_budget_ms,
            "seed": self.seed,
            "job_id": self.job_id,
            "solvers": list(self.solvers) if self.solvers is not None else None,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SolveRequest":
        """Rebuild a request from :meth:`to_dict` output."""
        try:
            problem = problem_from_dict(data["problem"])
        except KeyError:
            raise ServiceError("solve request data is missing the 'problem' field") from None
        solvers = data.get("solvers")
        return cls(
            problem=problem,
            solver=data.get("solver", PORTFOLIO_SOLVER),
            time_budget_ms=float(data.get("time_budget_ms", 1000.0)),
            seed=data.get("seed"),
            job_id=str(data.get("job_id", "")),
            solvers=tuple(solvers) if solvers is not None else None,
            metadata=dict(data.get("metadata", {})),
        )


@dataclass
class SolveResult:
    """The flat outcome of one solve request.

    Attributes
    ----------
    job_id / solver / time_budget_ms / seed / metadata:
        Echoed from the request.
    winner:
        Name of the solver that produced the best solution (for a plain
        request this equals ``solver``).
    best_cost:
        Objective value of the best solution (``inf`` when none found).
    selected_plans:
        Global plan indices of the best solution.
    is_valid / proved_optimal:
        Validity/optimality flags of the best solution.
    trajectory:
        Monotone best-so-far ``(elapsed_ms, cost)`` points of the winner
        (for portfolio requests: the merged trajectory).
    total_time_ms:
        Wall-clock consumed producing the result (0 on cache hits).
    from_cache / cache_key:
        Cache provenance: whether the result was served from the cache
        and under which key it is stored.
    error:
        Error message when the request failed; all solution fields are
        empty in that case.
    """

    job_id: str = ""
    solver: str = PORTFOLIO_SOLVER
    winner: str = ""
    best_cost: float = float("inf")
    selected_plans: List[int] = field(default_factory=list)
    is_valid: bool = False
    proved_optimal: bool = False
    trajectory: List[Tuple[float, float]] = field(default_factory=list)
    total_time_ms: float = 0.0
    time_budget_ms: float = 0.0
    seed: Optional[int] = None
    from_cache: bool = False
    cache_key: str = ""
    error: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the request produced a solution."""
        return self.error is None and self.winner != ""

    @classmethod
    def from_trajectory(
        cls,
        request: SolveRequest,
        trajectory: SolverTrajectory,
        winner: str | None = None,
        total_time_ms: float | None = None,
    ) -> "SolveResult":
        """Build a result from a request and the winning trajectory."""
        solution = trajectory.best_solution
        return cls(
            job_id=request.job_id,
            solver=request.solver,
            winner=winner if winner is not None else trajectory.solver_name,
            best_cost=trajectory.best_cost,
            selected_plans=sorted(solution.selected_plans) if solution else [],
            is_valid=bool(solution.is_valid) if solution else False,
            proved_optimal=trajectory.proved_optimal,
            trajectory=[(float(t), float(c)) for t, c in trajectory.points],
            total_time_ms=(
                total_time_ms if total_time_ms is not None else trajectory.total_time_ms
            ),
            time_budget_ms=request.time_budget_ms,
            seed=request.seed,
            cache_key=request.cache_key(),
            metadata=dict(request.metadata),
        )

    @classmethod
    def from_error(cls, request: SolveRequest, error: str) -> "SolveResult":
        """Build a failure result echoing the request's identity."""
        return cls(
            job_id=request.job_id,
            solver=request.solver,
            time_budget_ms=request.time_budget_ms,
            seed=request.seed,
            cache_key=request.cache_key(),
            error=error,
            metadata=dict(request.metadata),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (cache values, CLI JSONL lines)."""
        return {
            "job_id": self.job_id,
            "solver": self.solver,
            "winner": self.winner,
            # Strict JSON has no Infinity literal; "no solution" travels
            # as null so JSONL consumers can parse every line.
            "best_cost": self.best_cost if math.isfinite(self.best_cost) else None,
            "selected_plans": list(self.selected_plans),
            "is_valid": self.is_valid,
            "proved_optimal": self.proved_optimal,
            "trajectory": [[float(t), float(c)] for t, c in self.trajectory],
            "total_time_ms": self.total_time_ms,
            "time_budget_ms": self.time_budget_ms,
            "seed": self.seed,
            "from_cache": self.from_cache,
            "cache_key": self.cache_key,
            "error": self.error,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SolveResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            job_id=str(data.get("job_id", "")),
            solver=data.get("solver", PORTFOLIO_SOLVER),
            winner=data.get("winner", ""),
            best_cost=(
                float(data["best_cost"])
                if data.get("best_cost") is not None
                else float("inf")
            ),
            selected_plans=[int(p) for p in data.get("selected_plans", [])],
            is_valid=bool(data.get("is_valid", False)),
            proved_optimal=bool(data.get("proved_optimal", False)),
            trajectory=[(float(t), float(c)) for t, c in data.get("trajectory", [])],
            total_time_ms=float(data.get("total_time_ms", 0.0)),
            time_budget_ms=float(data.get("time_budget_ms", 0.0)),
            seed=data.get("seed"),
            from_cache=bool(data.get("from_cache", False)),
            cache_key=data.get("cache_key", ""),
            error=data.get("error"),
            metadata=dict(data.get("metadata", {})),
        )


def dedupe_key(request: SolveRequest) -> str:
    """The identity under which two requests may share one execution.

    :meth:`SolveRequest.cache_key` hashes the problem *canonically*
    (relabel-invariant), so the exact problem token is appended: an
    echoed result's ``selected_plans`` are concrete plan indices and must
    only be shared between requests whose indices mean the same thing.
    The batch executor's in-batch dedupe, the CLI's cross-chunk echo and
    the server's in-flight coalescing all key on this.
    """
    return f"{request.cache_key()}:{exact_problem_token(request.problem)}"


def echo_result_for_duplicate(result: SolveResult, request: SolveRequest) -> SolveResult:
    """Echo a representative's result to a deduplicated twin request.

    Used by the batch executor's in-batch dedupe and the server's
    in-flight coalescing: the twin gets a copy of the representative's
    outcome carrying its *own* identity fields, marked ``from_cache``
    (no solver ran for it) with zero attributed time.
    """
    if result.error is not None:
        return SolveResult.from_error(request, result.error)
    echo = SolveResult.from_dict(result.to_dict())
    echo.job_id = request.job_id
    echo.metadata = dict(request.metadata)
    echo.from_cache = True
    echo.total_time_ms = 0.0
    return echo


def request_from_spec(
    spec: Dict[str, Any],
    default_solver: str = PORTFOLIO_SOLVER,
    default_budget_ms: float = 1000.0,
    job_id: str = "",
) -> SolveRequest:
    """Build a :class:`SolveRequest` from a loose JSONL workload line.

    Three spec shapes are accepted:

    * a full request dictionary containing a ``"problem"`` sub-dictionary
      (the :meth:`SolveRequest.to_dict` format),
    * a bare problem dictionary (``"plans_per_query"`` at the top level),
    * a generator spec: ``{"queries": n, "plans": l, "seed": s}`` builds a
      paper-style instance via
      :func:`~repro.mqo.generator.generate_paper_testcase`.

    ``solver``, ``budget_ms``/``time_budget_ms``, ``seed`` and ``job_id``
    keys override the defaults in all three shapes.
    """
    if not isinstance(spec, dict):
        raise ServiceError(f"workload spec must be a JSON object, got {type(spec).__name__}")

    if "problem" in spec:
        problem = problem_from_dict(spec["problem"])
    elif "plans_per_query" in spec:
        problem = problem_from_dict(spec)
    elif "queries" in spec:
        from repro.mqo.generator import generate_paper_testcase

        problem = generate_paper_testcase(
            int(spec["queries"]),
            int(spec.get("plans", 2)),
            seed=spec.get("generator_seed", spec.get("seed")),
        )
    else:
        raise ServiceError(
            "workload spec needs a 'problem' dict, a bare problem "
            "('plans_per_query') or a generator spec ('queries'/'plans')"
        )

    budget = spec.get("time_budget_ms", spec.get("budget_ms", default_budget_ms))
    solvers = spec.get("solvers")
    return SolveRequest(
        problem=problem,
        solver=spec.get("solver", default_solver),
        time_budget_ms=float(budget),
        seed=spec.get("seed"),
        job_id=str(spec.get("job_id", job_id)),
        solvers=tuple(solvers) if solvers is not None else None,
        metadata=dict(spec.get("metadata", {})),
    )
