"""Solver registry: stable names plus capability metadata.

Every solver usable by the service layer — the quantum-annealing
pipeline and the classical baselines alike — registers here under a
stable name together with a :class:`SolverCapabilities` record.  The
portfolio scheduler and the batch executor look solvers up by name, and
capability metadata lets them skip solvers that cannot handle a given
instance (e.g. the QA pipeline beyond the device capacity).

Registered factories must produce objects with the
:class:`~repro.baselines.anytime.AnytimeSolver` interface:
``solve(problem, time_budget_ms, seed) -> SolverTrajectory``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.baselines.anytime import AnytimeSolver
from repro.baselines.genetic import GeneticAlgorithmSolver
from repro.baselines.greedy import GreedyConstructiveSolver
from repro.baselines.hillclimb import IteratedHillClimbing
from repro.baselines.ilp_mqo import IntegerProgrammingMQOSolver
from repro.baselines.ilp_qubo import IntegerProgrammingQUBOSolver
from repro.exceptions import DuplicateSolverError, ServiceError, UnknownSolverError
from repro.mqo.problem import MQOProblem

__all__ = [
    "SolverCapabilities",
    "SolverSpec",
    "SolverRegistry",
    "default_registry",
    "register_default_solvers",
]

SolverFactory = Callable[[], AnytimeSolver]


@dataclass(frozen=True)
class SolverCapabilities:
    """What a registered solver can (and cannot) do.

    Attributes
    ----------
    anytime:
        Whether the solver improves its incumbent over time (all current
        solvers do; a future one-shot heuristic would not).
    exact:
        Whether the solver can prove optimality of its incumbent.
    deterministic:
        Whether results are reproducible given a fixed seed and enough
        budget to converge.
    max_plans:
        Upper bound on the total number of plans the solver accepts, or
        ``None`` for unbounded.  The QA pipeline is bounded by the
        number of functional qubits of its device.
    min_plans:
        Lower bound on the total number of plans, or ``None`` for no
        bound.  Lets specialist paths (the decomposition solver) opt out
        of small instances where the direct line-up is already strictly
        better, so the portfolio only routes oversized instances to them.
    tags:
        Free-form labels for filtering (e.g. ``("quantum",)``).
    description:
        One-line human-readable summary.
    """

    anytime: bool = True
    exact: bool = False
    deterministic: bool = True
    max_plans: Optional[int] = None
    min_plans: Optional[int] = None
    tags: tuple = ()
    description: str = ""

    def supports(self, problem: MQOProblem) -> bool:
        """Whether the solver accepts ``problem`` (size-wise)."""
        if self.max_plans is not None and problem.num_plans > self.max_plans:
            return False
        return self.min_plans is None or problem.num_plans >= self.min_plans


@dataclass(frozen=True)
class SolverSpec:
    """One registry entry: name, factory and capabilities."""

    name: str
    factory: SolverFactory = field(repr=False)
    capabilities: SolverCapabilities = field(default_factory=SolverCapabilities)

    def create(self) -> AnytimeSolver:
        """Instantiate a fresh solver object."""
        solver = self.factory()
        if not hasattr(solver, "solve"):
            raise ServiceError(
                f"factory for solver {self.name!r} produced {type(solver).__name__}, "
                "which has no solve() method"
            )
        return solver


class SolverRegistry:
    """Thread-safe name -> :class:`SolverSpec` mapping.

    Registration order is preserved and used as the deterministic
    tie-break when the portfolio scheduler picks a winner.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, SolverSpec] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: SolverFactory,
        capabilities: SolverCapabilities | None = None,
        replace: bool = False,
    ) -> SolverSpec:
        """Register ``factory`` under ``name``; returns the new spec.

        Raises :class:`DuplicateSolverError` when ``name`` is taken and
        ``replace`` is false.
        """
        if not name or not isinstance(name, str):
            raise ServiceError(f"solver name must be a non-empty string, got {name!r}")
        spec = SolverSpec(
            name=name,
            factory=factory,
            capabilities=capabilities or SolverCapabilities(),
        )
        with self._lock:
            if name in self._specs and not replace:
                raise DuplicateSolverError(
                    f"solver {name!r} is already registered; pass replace=True to override"
                )
            self._specs[name] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Remove a solver; raises :class:`UnknownSolverError` if absent."""
        with self._lock:
            if name not in self._specs:
                raise UnknownSolverError(f"cannot unregister unknown solver {name!r}")
            del self._specs[name]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> SolverSpec:
        """The spec registered under ``name``."""
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownSolverError(
                f"unknown solver {name!r}; registered: {sorted(self._specs)}"
            ) from None

    def create(self, name: str) -> AnytimeSolver:
        """Instantiate the solver registered under ``name``."""
        return self.get(name).create()

    def names(self) -> List[str]:
        """All registered names in registration order."""
        return list(self._specs)

    def specs(self) -> List[SolverSpec]:
        """All specs in registration order."""
        return list(self._specs.values())

    def supporting(self, problem: MQOProblem) -> List[str]:
        """Names of solvers whose capabilities accept ``problem``."""
        return [
            spec.name for spec in self._specs.values() if spec.capabilities.supports(problem)
        ]

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SolverRegistry {self.names()}>"


def register_default_solvers(registry: SolverRegistry) -> SolverRegistry:
    """Register the paper's full solver line-up into ``registry``.

    The QA adapter is imported at call time so this module stays
    importable on its own without pulling in the annealing pipeline
    (``import repro`` loads the full stack regardless).
    """
    from repro.service.qa_adapter import QuantumAnnealingSolver

    registry.register(
        QuantumAnnealingSolver.name,
        QuantumAnnealingSolver,
        SolverCapabilities(
            anytime=True,
            exact=False,
            deterministic=True,
            max_plans=QuantumAnnealingSolver.default_max_plans(),
            tags=("quantum", "sparse", "batched"),
            description=(
                "simulated D-Wave annealing pipeline (Algorithm 1); sparse "
                "CSR sweeps, fused gauge batches, prepared-pipeline cache"
            ),
        ),
    )
    registry.register(
        IntegerProgrammingMQOSolver.name,
        IntegerProgrammingMQOSolver,
        SolverCapabilities(
            exact=True,
            tags=("exact", "ilp"),
            description="branch-and-bound on the MQO integer program",
        ),
    )
    registry.register(
        IntegerProgrammingQUBOSolver.name,
        IntegerProgrammingQUBOSolver,
        SolverCapabilities(
            exact=True,
            tags=("exact", "ilp", "slow"),
            description="branch-and-bound on the linearised QUBO",
        ),
    )
    registry.register(
        IteratedHillClimbing.name,
        IteratedHillClimbing,
        SolverCapabilities(
            tags=("heuristic",),
            description="random-restart steepest-descent hill climbing",
        ),
    )
    registry.register(
        "GA(50)",
        lambda: GeneticAlgorithmSolver(population_size=50),
        SolverCapabilities(
            tags=("heuristic", "genetic"),
            description="genetic algorithm, population 50",
        ),
    )
    registry.register(
        "GA(200)",
        lambda: GeneticAlgorithmSolver(population_size=200),
        SolverCapabilities(
            tags=("heuristic", "genetic"),
            description="genetic algorithm, population 200",
        ),
    )
    registry.register(
        GreedyConstructiveSolver.name,
        GreedyConstructiveSolver,
        SolverCapabilities(
            anytime=False,
            tags=("heuristic", "constructive"),
            description="one-pass constructive greedy (warm-start quality)",
        ),
    )

    from repro.core.decomposition import DecomposedAnytimeSolver

    registry.register(
        DecomposedAnytimeSolver.name,
        DecomposedAnytimeSolver,
        SolverCapabilities(
            anytime=True,
            exact=False,
            deterministic=True,
            # Only instances beyond the annealer's device capacity route
            # here; below it the direct line-up is strictly better.
            min_plans=QuantumAnnealingSolver.default_max_plans() + 1,
            tags=("quantum", "decomposition", "parallel"),
            description=(
                "parallel partition-solve-stitch decomposition; farms "
                "cluster sub-QUBOs through the service under a wave schedule"
            ),
        ),
    )
    return registry


_default_registry: SolverRegistry | None = None
_default_registry_lock = threading.Lock()


def default_registry() -> SolverRegistry:
    """The process-wide registry preloaded with the paper's solvers.

    Built lazily on first use; subsequent calls return the same object so
    applications can extend it with their own solvers.
    """
    global _default_registry
    with _default_registry_lock:
        if _default_registry is None:
            _default_registry = register_default_solvers(SolverRegistry())
        return _default_registry
