"""Adapter exposing the quantum-annealing pipeline as an anytime solver.

The service registry and the portfolio scheduler speak the
:class:`~repro.baselines.anytime.AnytimeSolver` interface, so the QA
pipeline needs a thin adapter that

* translates a wall-clock budget into a number of annealing reads using
  the device's per-read duration (budget / time-per-read, clamped),
* runs :class:`~repro.core.pipeline.QuantumMQO` end to end, and
* reports the anytime trajectory on the *device time* axis, exactly as
  the paper's Figures 4 and 5 account for the annealer.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.anytime import AnytimeSolver, SolverTrajectory
from repro.chimera.hardware import DWAVE_2X, DWaveSpec
from repro.core.pipeline import QuantumMQO, QuantumMQOResult
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["QuantumAnnealingSolver"]


class QuantumAnnealingSolver(AnytimeSolver):
    """Run the (simulated) annealer under the classical solver interface.

    Parameters
    ----------
    spec:
        Device generation to simulate (defect-free topology so behaviour
        is a pure function of the seed).
    embedder:
        Embedding strategy forwarded to :class:`QuantumMQO`.
    min_reads / max_reads:
        Clamp on the read count derived from the time budget.  The cap
        bounds the *host* cost of simulating the device; the paper-scale
        1000 reads cost ~140 ms of device time but far more simulation
        time.
    num_sweeps:
        Simulated-annealing sweeps per read.
    """

    name = "QA"

    def __init__(
        self,
        spec: DWaveSpec = DWAVE_2X,
        embedder: str = "auto",
        min_reads: int = 10,
        max_reads: int = 200,
        num_sweeps: int = 100,
    ) -> None:
        if not 0 < min_reads <= max_reads:
            raise ValueError(f"need 0 < min_reads <= max_reads, got {min_reads}/{max_reads}")
        self.spec = spec
        self.embedder = embedder
        self.min_reads = min_reads
        self.max_reads = max_reads
        self.num_sweeps = num_sweeps
        self.last_result: Optional[QuantumMQOResult] = None

    @classmethod
    def default_max_plans(cls) -> int:
        """Capacity bound advertised in the registry (one qubit per plan
        is the best case, so the qubit count is a safe upper bound)."""
        return DWAVE_2X.total_qubits

    def reads_for_budget(self, time_budget_ms: float) -> int:
        """Translate a wall-clock budget into a clamped read count."""
        raw = int(time_budget_ms / self.spec.time_per_read_ms)
        return max(self.min_reads, min(self.max_reads, raw))

    def solve(
        self,
        problem,
        time_budget_ms: float,
        seed: SeedLike = None,
    ) -> SolverTrajectory:
        self._check_budget(time_budget_ms)
        rng = ensure_rng(seed)
        from repro.annealer.device import DWaveSamplerSimulator
        from repro.annealer.noise import NoiseModel

        device = DWaveSamplerSimulator(
            spec=self.spec,
            topology=self.spec.build_topology(perfect=True),
            noise=NoiseModel(0.0, 0.0),
            num_sweeps=self.num_sweeps,
            seed=rng,
        )
        pipeline = QuantumMQO(device=device, embedder=self.embedder, seed=rng)
        result = pipeline.solve(
            problem, num_reads=self.reads_for_budget(time_budget_ms), seed=rng
        )
        self.last_result = result

        points = []
        best = float("inf")
        for time_ms, cost in result.trajectory:
            if cost < best - 1e-12:
                best = cost
                points.append((time_ms, cost))
        return SolverTrajectory(
            solver_name=self.name,
            points=points,
            best_solution=result.best_solution,
            proved_optimal=False,
            total_time_ms=result.device_time_ms,
        )
