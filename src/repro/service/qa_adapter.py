"""Adapter exposing the quantum-annealing pipeline as an anytime solver.

The service registry and the portfolio scheduler speak the
:class:`~repro.baselines.anytime.AnytimeSolver` interface, so the QA
pipeline needs a thin adapter that

* translates a wall-clock budget into a number of annealing reads using
  the device's per-read duration (budget / time-per-read, clamped),
* runs :class:`~repro.core.pipeline.QuantumMQO` end to end, and
* reports the anytime trajectory on the *device time* axis, exactly as
  the paper's Figures 4 and 5 account for the annealer.

Repeated solves of one instance — portfolio racing, anytime restarts,
replayed batches — dominate service traffic, so the adapter keeps a
process-wide LRU of :class:`~repro.core.pipeline.PreparedProblem`
compilations keyed by
:meth:`~repro.mqo.problem.MQOProblem.canonical_hash`: the logical
mapping, embedding search and physical mapping run once per distinct
instance and every later solve goes straight to annealing.
"""

from __future__ import annotations

from typing import Optional

from repro.annealer.compile import CompileCache
from repro.baselines.anytime import AnytimeSolver, SolverTrajectory
from repro.chimera.hardware import DWAVE_2X, DWaveSpec
from repro.core.pipeline import PreparedProblem, QuantumMQO, QuantumMQOResult
from repro.mqo.problem import MQOProblem
from repro.mqo.serialization import exact_problem_token
from repro.obs.metrics import get_registry
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["QuantumAnnealingSolver"]

#: Hit/miss counters of the process-wide prepared-pipeline cache.
_PREPARED_HITS = get_registry().counter(
    "repro_prepared_cache_hits_total", "Prepared-pipeline cache hits."
)
_PREPARED_MISSES = get_registry().counter(
    "repro_prepared_cache_misses_total", "Prepared-pipeline cache misses (compilations)."
)


class QuantumAnnealingSolver(AnytimeSolver):
    """Run the (simulated) annealer under the classical solver interface.

    Parameters
    ----------
    spec:
        Device generation to simulate (defect-free topology so behaviour
        is a pure function of the seed).
    embedder:
        Embedding strategy forwarded to :class:`QuantumMQO`.
    min_reads / max_reads:
        Clamp on the read count derived from the time budget.  The cap
        bounds the *host* cost of simulating the device; the paper-scale
        1000 reads cost ~140 ms of device time but far more simulation
        time.
    num_sweeps:
        Simulated-annealing sweeps per read.
    batch_gauges:
        Forwarded to the device: anneal all gauge batches fused in one
        block-diagonal problem (default) instead of sequentially.
    reuse_prepared:
        Consult the process-wide prepared-pipeline cache (default).
        Disable to recompile the instance on every solve.
    """

    name = "QA"

    #: Process-wide cache of prepared pipelines, keyed by
    #: ``(canonical_hash, device, embedder)``; shared by every adapter
    #: instance so portfolio members and batch jobs warm each other.
    prepared_cache = CompileCache(maxsize=32)

    def __init__(
        self,
        spec: DWaveSpec = DWAVE_2X,
        embedder: str = "auto",
        min_reads: int = 10,
        max_reads: int = 200,
        num_sweeps: int = 100,
        batch_gauges: bool = True,
        reuse_prepared: bool = True,
    ) -> None:
        if not 0 < min_reads <= max_reads:
            raise ValueError(f"need 0 < min_reads <= max_reads, got {min_reads}/{max_reads}")
        self.spec = spec
        self.embedder = embedder
        self.min_reads = min_reads
        self.max_reads = max_reads
        self.num_sweeps = num_sweeps
        self.batch_gauges = batch_gauges
        self.reuse_prepared = reuse_prepared
        self.last_result: Optional[QuantumMQOResult] = None

    @classmethod
    def default_max_plans(cls) -> int:
        """Capacity bound advertised in the registry (one qubit per plan
        is the best case, so the qubit count is a safe upper bound)."""
        return DWAVE_2X.total_qubits

    def reads_for_budget(self, time_budget_ms: float) -> int:
        """Translate a wall-clock budget into a clamped read count."""
        raw = int(time_budget_ms / self.spec.time_per_read_ms)
        return max(self.min_reads, min(self.max_reads, raw))

    # ------------------------------------------------------------------ #
    # Pipeline compilation cache
    # ------------------------------------------------------------------ #
    def _embedding_seed(self, problem: MQOProblem) -> int:
        """Deterministic seed for the embedding search of ``problem``.

        Deriving it from the canonical hash (not from the solve seed)
        makes the prepared pipeline a pure function of the instance, so
        cached and cold solves of the same (problem, seed) pair are
        indistinguishable.
        """
        return int(problem.canonical_hash()[:15], 16)

    def _build_pipeline(self, seed: SeedLike) -> QuantumMQO:
        """A fresh pipeline over an ideal (defect-free, noise-free) device."""
        from repro.annealer.device import DWaveSamplerSimulator
        from repro.annealer.noise import NoiseModel

        rng = ensure_rng(seed)
        device = DWaveSamplerSimulator(
            spec=self.spec,
            topology=self.spec.build_topology(perfect=True),
            noise=NoiseModel(0.0, 0.0),
            num_sweeps=self.num_sweeps,
            seed=rng,
            batch_gauges=self.batch_gauges,
        )
        return QuantumMQO(device=device, embedder=self.embedder, seed=rng)

    def prepare(
        self, problem: MQOProblem, pipeline: QuantumMQO | None = None
    ) -> PreparedProblem:
        """Compile ``problem`` once, caching the result process-wide.

        The portfolio scheduler calls this before racing so the
        compilation happens outside the timed region; subsequent
        :meth:`solve` calls for the same instance hit the cache.  When
        ``pipeline`` is given, a cache miss reuses its device (saving a
        topology build) — the embedding search still runs under the
        instance-derived seed so the prepared result never depends on
        the solve seed or cache state.
        """
        key = (problem.canonical_hash(), self.spec.name, str(self.embedder))
        # The canonical hash identifies relabel-equivalent problems, but a
        # prepared embedding is tied to concrete plan indices — the exact
        # token guards against serving a merely isomorphic instance.
        token = exact_problem_token(problem)
        if self.reuse_prepared:
            entry = self.prepared_cache.get(key)
            if entry is not None and entry[0] == token:
                _PREPARED_HITS.inc()
                return entry[1]
            _PREPARED_MISSES.inc()
        embedding_seed = self._embedding_seed(problem)
        if pipeline is None:
            compile_pipeline = self._build_pipeline(seed=embedding_seed)
        else:
            compile_pipeline = QuantumMQO(
                device=pipeline.device, embedder=self.embedder, seed=embedding_seed
            )
        prepared = compile_pipeline.prepare(problem)
        if self.reuse_prepared:
            self.prepared_cache.put(key, (token, prepared))
        return prepared

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        problem,
        time_budget_ms: float,
        seed: SeedLike = None,
    ) -> SolverTrajectory:
        """Anneal ``problem`` within ``time_budget_ms`` of device time."""
        self._check_budget(time_budget_ms)
        rng = ensure_rng(seed)
        pipeline = self._build_pipeline(seed=rng)
        prepared = self.prepare(problem, pipeline=pipeline)
        result = pipeline.solve(
            problem,
            num_reads=self.reads_for_budget(time_budget_ms),
            seed=rng,
            prepared=prepared,
        )
        self.last_result = result

        points = []
        best = float("inf")
        for time_ms, cost in result.trajectory:
            if cost < best - 1e-12:
                best = cost
                points.append((time_ms, cost))
        return SolverTrajectory(
            solver_name=self.name,
            points=points,
            best_solution=result.best_solution,
            proved_optimal=False,
            total_time_ms=result.device_time_ms,
        )
