"""QUBO <-> Ising conversions.

The D-Wave hardware natively minimises an Ising Hamiltonian

    H(s) = sum_i h_i s_i + sum_{i<j} J_ij s_i s_j ,    s_i in {-1, +1}.

The standard substitution ``x_i = (s_i + 1) / 2`` converts between the
QUBO form (binary 0/1 variables) and the Ising form (spin variables).
The device simulator and the gauge transformations operate on the Ising
form, mirroring how the physical machine is programmed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Tuple

from repro.exceptions import QUBOError
from repro.qubo.model import QUBOModel

__all__ = ["IsingModel", "qubo_to_ising", "ising_to_qubo"]

Variable = Hashable
Edge = Tuple[Variable, Variable]


@dataclass
class IsingModel:
    """An Ising model: fields ``h``, couplings ``J`` and a constant offset."""

    h: Dict[Variable, float] = field(default_factory=dict)
    j: Dict[Edge, float] = field(default_factory=dict)
    offset: float = 0.0

    @property
    def variables(self) -> list:
        """All spin variables (field keys plus any coupling endpoints)."""
        seen = dict.fromkeys(self.h)
        for u, v in self.j:
            seen.setdefault(u, None)
            seen.setdefault(v, None)
        return list(seen)

    def energy(self, spins: Mapping[Variable, int]) -> float:
        """Energy of a spin assignment (values must be -1 or +1)."""
        for var in self.variables:
            if spins.get(var) not in (-1, 1):
                raise QUBOError(f"spin for variable {var!r} must be -1 or +1")
        total = self.offset
        for var, field_value in self.h.items():
            total += field_value * spins[var]
        for (u, v), coupling in self.j.items():
            total += coupling * spins[u] * spins[v]
        return total

    def max_abs_weight(self) -> float:
        """Largest absolute field/coupling value (0.0 for an empty model)."""
        values = [abs(v) for v in self.h.values()] + [abs(v) for v in self.j.values()]
        return max(values) if values else 0.0


def qubo_to_ising(qubo: QUBOModel) -> IsingModel:
    """Convert a QUBO into the equivalent Ising model.

    With ``x = (s + 1) / 2`` the energies satisfy
    ``E_qubo(x) = E_ising(s)`` for corresponding assignments.
    """
    h: Dict[Variable, float] = {var: 0.0 for var in qubo.variables}
    j: Dict[Edge, float] = {}
    offset = qubo.offset

    for var, weight in qubo.linear.items():
        h[var] += weight / 2.0
        offset += weight / 2.0

    for (u, v), weight in qubo.quadratic.items():
        j[(u, v)] = j.get((u, v), 0.0) + weight / 4.0
        h[u] += weight / 4.0
        h[v] += weight / 4.0
        offset += weight / 4.0

    return IsingModel(h=h, j=j, offset=offset)


def ising_to_qubo(ising: IsingModel) -> QUBOModel:
    """Convert an Ising model into the equivalent QUBO.

    Inverse of :func:`qubo_to_ising`: with ``s = 2x - 1`` the energies of
    corresponding assignments are equal.
    """
    qubo = QUBOModel(offset=ising.offset)
    for var in ising.variables:
        qubo.add_variable(var)

    for var, field_value in ising.h.items():
        qubo.add_linear(var, 2.0 * field_value)
        qubo.add_offset(-field_value)

    for (u, v), coupling in ising.j.items():
        qubo.add_quadratic(u, v, 4.0 * coupling)
        qubo.add_linear(u, -2.0 * coupling)
        qubo.add_linear(v, -2.0 * coupling)
        qubo.add_offset(coupling)

    return qubo


def spins_to_binary(spins: Mapping[Variable, int]) -> Dict[Variable, int]:
    """Map spin values (-1/+1) to binary values (0/1)."""
    result = {}
    for var, s in spins.items():
        if s not in (-1, 1):
            raise QUBOError(f"spin for variable {var!r} must be -1 or +1, got {s}")
        result[var] = (s + 1) // 2
    return result


def binary_to_spins(binary: Mapping[Variable, int]) -> Dict[Variable, int]:
    """Map binary values (0/1) to spin values (-1/+1)."""
    result = {}
    for var, x in binary.items():
        if x not in (0, 1):
            raise QUBOError(f"binary value for variable {var!r} must be 0 or 1, got {x}")
        result[var] = 2 * x - 1
    return result
