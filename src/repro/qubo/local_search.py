"""Local-search utilities for QUBO models.

These are support routines (not paper baselines): greedy single-flip
descent is used to post-process annealing read-outs in ablation studies,
and a small tabu search provides a classical reference for generic QUBO
instances in tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Tuple

from repro.exceptions import QUBOError
from repro.qubo.model import QUBOModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["flip_gain", "greedy_descent", "tabu_search"]

Variable = Hashable


def flip_gain(qubo: QUBOModel, assignment: Mapping[Variable, int], var: Variable) -> float:
    """Energy change caused by flipping ``var`` in ``assignment``.

    A negative value means the flip lowers (improves) the energy.
    """
    if var not in qubo:
        raise QUBOError(f"unknown variable {var!r}")
    current = assignment.get(var, 0)
    direction = 1 - 2 * current  # +1 when flipping 0 -> 1, -1 when flipping 1 -> 0
    delta = qubo.get_linear(var)
    for neighbor, weight in qubo.neighbors(var).items():
        if assignment.get(neighbor, 0):
            delta += weight
    return direction * delta


def greedy_descent(
    qubo: QUBOModel,
    assignment: Mapping[Variable, int] | None = None,
    max_sweeps: int = 100,
    seed: SeedLike = None,
) -> Tuple[Dict[Variable, int], float]:
    """Single-flip steepest descent until a local optimum is reached.

    Returns the improved assignment and its energy.
    """
    rng = ensure_rng(seed)
    variables: List[Variable] = qubo.variables
    state: Dict[Variable, int] = {
        var: int((assignment or {}).get(var, 0)) for var in variables
    }
    for _ in range(max_sweeps):
        improved = False
        order = list(variables)
        rng.shuffle(order)
        for var in order:
            if flip_gain(qubo, state, var) < 0.0:
                state[var] = 1 - state[var]
                improved = True
        if not improved:
            break
    return state, qubo.energy(state)


def tabu_search(
    qubo: QUBOModel,
    max_iterations: int = 1000,
    tabu_tenure: int = 10,
    seed: SeedLike = None,
) -> Tuple[Dict[Variable, int], float]:
    """A simple single-flip tabu search over the QUBO.

    Starts from a random assignment, always applies the best non-tabu
    flip (aspiration: a tabu flip is allowed if it yields a new best),
    and returns the best assignment encountered.
    """
    if max_iterations <= 0:
        raise QUBOError("max_iterations must be positive")
    if tabu_tenure < 0:
        raise QUBOError("tabu_tenure must be non-negative")
    rng = ensure_rng(seed)
    variables = qubo.variables
    if not variables:
        return {}, qubo.offset

    state = {var: int(rng.integers(0, 2)) for var in variables}
    energy = qubo.energy(state)
    best_state = dict(state)
    best_energy = energy
    tabu_until = {var: -1 for var in variables}

    for iteration in range(max_iterations):
        best_move = None
        best_delta = float("inf")
        for var in variables:
            delta = flip_gain(qubo, state, var)
            is_tabu = tabu_until[var] > iteration
            aspiration = energy + delta < best_energy - 1e-12
            if is_tabu and not aspiration:
                continue
            if delta < best_delta:
                best_delta = delta
                best_move = var
        if best_move is None:
            break
        state[best_move] = 1 - state[best_move]
        energy += best_delta
        tabu_until[best_move] = iteration + tabu_tenure
        if energy < best_energy - 1e-12:
            best_energy = energy
            best_state = dict(state)
    return best_state, best_energy
