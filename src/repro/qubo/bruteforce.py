"""Exact brute-force QUBO solver for small instances.

Used by tests (to verify the logical mapping against ground truth) and
as the reference optimum for small benchmark instances.  The solver
enumerates all ``2^n`` assignments with vectorised energy evaluation and
is intentionally capped at a modest variable count.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.exceptions import QUBOError
from repro.qubo.model import QUBOModel

__all__ = ["solve_bruteforce", "enumerate_energies"]

_MAX_BRUTEFORCE_VARIABLES = 24


def _all_assignments(num_variables: int) -> np.ndarray:
    """All 0/1 assignments as a ``(2^n, n)`` array (column 0 = variable 0)."""
    count = 1 << num_variables
    indices = np.arange(count, dtype=np.uint32)
    bits = ((indices[:, None] >> np.arange(num_variables, dtype=np.uint32)) & 1).astype(float)
    return bits


def enumerate_energies(qubo: QUBOModel) -> Tuple[np.ndarray, List[Hashable], np.ndarray]:
    """Return (samples, variable order, energies) for all assignments."""
    order = qubo.variables
    if len(order) > _MAX_BRUTEFORCE_VARIABLES:
        raise QUBOError(
            f"brute-force enumeration supports at most {_MAX_BRUTEFORCE_VARIABLES} "
            f"variables, got {len(order)}"
        )
    samples = _all_assignments(len(order))
    energies = qubo.energies(samples, order)
    return samples, order, energies


def solve_bruteforce(qubo: QUBOModel) -> Tuple[Dict[Hashable, int], float]:
    """Return the globally optimal assignment and its energy.

    Ties are broken towards the lexicographically smallest bit pattern
    (all-zeros first) so results are deterministic.
    """
    if qubo.num_variables == 0:
        return {}, qubo.offset
    samples, order, energies = enumerate_energies(qubo)
    best_index = int(np.argmin(energies))
    best = samples[best_index]
    assignment = {var: int(best[i]) for i, var in enumerate(order)}
    return assignment, float(energies[best_index])
