"""Sparse QUBO model container.

The model stores linear weights (diagonal terms ``w_ii``) and quadratic
weights (off-diagonal terms ``w_ij`` with ``i < j``) over hashable
variable labels.  The energy of an assignment ``x`` is

    E(x) = sum_i w_ii x_i + sum_{i<j} w_ij x_i x_j .

Variables may be arbitrary hashable labels (plan indices for the logical
QUBO, qubit indices for the physical QUBO).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.exceptions import QUBOError

__all__ = ["QUBOModel"]

Variable = Hashable
Edge = Tuple[Variable, Variable]


class QUBOModel:
    """A sparse QUBO over arbitrary hashable variable labels.

    The container is mutable (weights are accumulated with
    :meth:`add_linear` / :meth:`add_quadratic`) because the logical and
    physical mappings build energy formulas incrementally, term by term.

    Models can alternatively be built in one shot from flat arrays
    (:meth:`from_arrays`, the inverse of :meth:`to_arrays`).  Such
    models keep their arrays and materialise the per-term dictionaries
    lazily on first dict-level access, so the array-in / array-out hot
    path (logical mapping -> annealer compilation) never pays for dict
    construction at all.
    """

    def __init__(
        self,
        linear: Mapping[Variable, float] | None = None,
        quadratic: Mapping[Edge, float] | None = None,
        offset: float = 0.0,
    ) -> None:
        self._linear_store: Dict[Variable, float] | None = {}
        self._quadratic_store: Dict[Edge, float] | None = {}
        self._adjacency_store: Dict[Variable, Dict[Variable, float]] | None = {}
        #: Deferred array form (variables, linear, edges, weights) not yet
        #: expanded into the dict stores; exclusive with non-None stores.
        self._pending: Tuple[List[Variable], np.ndarray, np.ndarray, np.ndarray] | None = None
        #: Cached flat-array export in insertion order; dropped on mutation.
        self._array_cache: Tuple[List[Variable], np.ndarray, np.ndarray, np.ndarray] | None = None
        self.offset = float(offset)
        for var, weight in (linear or {}).items():
            self.add_linear(var, weight)
        for (u, v), weight in (quadratic or {}).items():
            self.add_quadratic(u, v, weight)

    # ------------------------------------------------------------------ #
    # Array backing (lazy dict materialisation)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        variables: Sequence[Variable],
        linear: np.ndarray,
        edges: np.ndarray,
        weights: np.ndarray,
        offset: float = 0.0,
    ) -> "QUBOModel":
        """Build a model from the flat arrays :meth:`to_arrays` produces.

        ``linear`` holds one weight per entry of ``variables``;
        ``edges`` is an ``(m, 2)`` integer array of variable *positions*
        with the matching quadratic ``weights``.  Edges must reference
        distinct variables and each unordered pair may appear at most
        once (the whole-array builders guarantee this; violations
        raise).  The per-term dictionaries are materialised lazily, so
        consumers that only ever read the arrays back (the annealer
        compiler) skip dict construction entirely.
        """
        variables = list(variables)
        # Copied: the arrays become the model's canonical export, so a
        # caller mutating its inputs afterwards must not corrupt it.
        linear = np.array(linear, dtype=np.float64)
        edges = np.array(edges, dtype=np.int64)
        weights = np.array(weights, dtype=np.float64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        n = len(variables)
        if len(set(variables)) != n:
            raise QUBOError("from_arrays received duplicate variable labels")
        if linear.shape != (n,):
            raise QUBOError(f"linear must have shape ({n},), got {linear.shape}")
        if edges.ndim != 2 or edges.shape[1] != 2 or weights.shape != (edges.shape[0],):
            raise QUBOError(
                f"edges must have shape (m, 2) with matching weights, "
                f"got {edges.shape} and {weights.shape}"
            )
        if not np.isfinite(linear).all() or not np.isfinite(weights).all():
            raise QUBOError("QUBO weights must be finite")
        if edges.size:
            if edges.min() < 0 or edges.max() >= n:
                raise QUBOError("edge endpoints must index into variables")
            lo = np.minimum(edges[:, 0], edges[:, 1])
            hi = np.maximum(edges[:, 0], edges[:, 1])
            if (lo == hi).any():
                raise QUBOError("edges may not couple a variable with itself")
            if len(np.unique(lo * np.int64(n) + hi)) != len(lo):
                raise QUBOError("from_arrays received a duplicate edge")
        model = cls.__new__(cls)
        model.offset = cls._check_weight(offset)
        model._linear_store = None
        model._quadratic_store = None
        model._adjacency_store = None
        model._pending = (variables, linear, edges, weights)
        model._array_cache = (variables, linear, edges, weights)
        return model

    def _materialize(self) -> None:
        """Expand the deferred array backing into the dict stores."""
        assert self._pending is not None
        variables, linear, edges, weights = self._pending
        self._pending = None
        self._linear_store = dict(zip(variables, linear.tolist()))
        adjacency: Dict[Variable, Dict[Variable, float]] = {var: {} for var in variables}
        quadratic: Dict[Edge, float] = {}
        for ui, vi, weight in zip(edges[:, 0].tolist(), edges[:, 1].tolist(), weights.tolist()):
            u, v = variables[ui], variables[vi]
            quadratic[self._edge_key(u, v)] = weight
            adjacency[u][v] = weight
            adjacency[v][u] = weight
        self._quadratic_store = quadratic
        self._adjacency_store = adjacency

    @property
    def _linear(self) -> Dict[Variable, float]:
        if self._linear_store is None:
            self._materialize()
        return self._linear_store

    @property
    def _quadratic(self) -> Dict[Edge, float]:
        if self._quadratic_store is None:
            self._materialize()
        return self._quadratic_store

    @property
    def _adjacency(self) -> Dict[Variable, Dict[Variable, float]]:
        if self._adjacency_store is None:
            self._materialize()
        return self._adjacency_store

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_weight(weight: float) -> float:
        weight = float(weight)
        if not math.isfinite(weight):
            raise QUBOError(f"QUBO weights must be finite, got {weight!r}")
        return weight

    def add_variable(self, var: Variable) -> None:
        """Register ``var`` (with zero linear weight) if not yet present."""
        if var not in self._linear:
            self._array_cache = None
            self._linear[var] = 0.0
            self._adjacency.setdefault(var, {})

    def add_linear(self, var: Variable, weight: float) -> None:
        """Accumulate ``weight`` onto the linear term of ``var``."""
        weight = self._check_weight(weight)
        self.add_variable(var)
        self._array_cache = None
        self._linear[var] += weight

    def add_quadratic(self, u: Variable, v: Variable, weight: float) -> None:
        """Accumulate ``weight`` onto the quadratic term between ``u`` and ``v``.

        Adding a quadratic term between a variable and itself folds into
        the linear term because ``x^2 = x`` for binary variables.
        """
        weight = self._check_weight(weight)
        if u == v:
            self.add_linear(u, weight)
            return
        self.add_variable(u)
        self.add_variable(v)
        self._array_cache = None
        key = self._edge_key(u, v)
        self._quadratic[key] = self._quadratic.get(key, 0.0) + weight
        self._adjacency[u][v] = self._adjacency[u].get(v, 0.0) + weight
        self._adjacency[v][u] = self._adjacency[v].get(u, 0.0) + weight

    def add_offset(self, value: float) -> None:
        """Accumulate a constant offset onto the energy."""
        self.offset += self._check_weight(value)

    @staticmethod
    def _edge_key(u: Variable, v: Variable) -> Edge:
        # A deterministic canonical order for the pair; fall back to repr
        # ordering when the labels are not mutually comparable.
        try:
            return (u, v) if u <= v else (v, u)  # type: ignore[operator]
        except TypeError:
            return (u, v) if repr(u) <= repr(v) else (v, u)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> List[Variable]:
        """All variables in insertion order."""
        if self._pending is not None:
            return list(self._pending[0])
        return list(self._linear)

    @property
    def num_variables(self) -> int:
        """Number of variables."""
        if self._pending is not None:
            return len(self._pending[0])
        return len(self._linear)

    @property
    def num_interactions(self) -> int:
        """Number of non-zero quadratic entries."""
        if self._pending is not None:
            return len(self._pending[3])
        return len(self._quadratic)

    @property
    def linear(self) -> Dict[Variable, float]:
        """Copy of the linear weights."""
        return dict(self._linear)

    @property
    def quadratic(self) -> Dict[Edge, float]:
        """Copy of the quadratic weights keyed by canonical pairs."""
        return dict(self._quadratic)

    def get_linear(self, var: Variable) -> float:
        """Linear weight of ``var`` (0.0 if the variable is unknown)."""
        return self._linear.get(var, 0.0)

    def get_quadratic(self, u: Variable, v: Variable) -> float:
        """Quadratic weight between ``u`` and ``v`` (0.0 if absent)."""
        if u == v:
            return 0.0
        return self._quadratic.get(self._edge_key(u, v), 0.0)

    def neighbors(self, var: Variable) -> Dict[Variable, float]:
        """Quadratic partners of ``var`` with their coupling weights."""
        return dict(self._adjacency.get(var, {}))

    def degree(self, var: Variable) -> int:
        """Number of variables coupled to ``var``."""
        return len(self._adjacency.get(var, {}))

    def max_degree(self) -> int:
        """Maximum coupling degree over all variables (0 for empty models)."""
        if not self._adjacency:
            return 0
        return max(len(partners) for partners in self._adjacency.values())

    def __contains__(self, var: Variable) -> bool:
        return var in self._linear

    def __iter__(self) -> Iterator[Variable]:
        if self._pending is not None:
            return iter(list(self._pending[0]))
        return iter(self._linear)

    def __len__(self) -> int:
        return self.num_variables

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QUBOModel {self.num_variables} variables, "
            f"{self.num_interactions} interactions, offset={self.offset:.3f}>"
        )

    # ------------------------------------------------------------------ #
    # Energy evaluation
    # ------------------------------------------------------------------ #
    def energy(self, assignment: Mapping[Variable, int]) -> float:
        """Energy of a single assignment (missing variables default to 0)."""
        total = self.offset
        for var, weight in self._linear.items():
            if weight and assignment.get(var, 0):
                total += weight
        for (u, v), weight in self._quadratic.items():
            if weight and assignment.get(u, 0) and assignment.get(v, 0):
                total += weight
        return total

    def energies(self, samples: np.ndarray, variable_order: Sequence[Variable]) -> np.ndarray:
        """Vectorised energies for a 2-D array of samples.

        Parameters
        ----------
        samples:
            Array of shape ``(num_samples, num_variables)`` with 0/1 entries.
        variable_order:
            The variable corresponding to each sample column.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2 or samples.shape[1] != len(variable_order):
            raise QUBOError(
                f"samples must have shape (n, {len(variable_order)}), got {samples.shape}"
            )
        _, lin, edges, weights = self.to_arrays(variable_order)
        energies = samples @ lin + self.offset
        if len(weights):
            energies += (samples[:, edges[:, 0]] * samples[:, edges[:, 1]]) @ weights
        return energies

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def relabeled(self, mapping: Mapping[Variable, Variable]) -> "QUBOModel":
        """Return a copy with variables renamed according to ``mapping``.

        Variables absent from ``mapping`` keep their label.  The mapping
        must be injective on the model's variables.
        """
        new_labels = [mapping.get(v, v) for v in self._linear]
        if len(set(new_labels)) != len(new_labels):
            raise QUBOError("relabeling collapses distinct variables onto the same label")
        relabeled = QUBOModel(offset=self.offset)
        for var, weight in self._linear.items():
            relabeled.add_linear(mapping.get(var, var), weight)
        for (u, v), weight in self._quadratic.items():
            relabeled.add_quadratic(mapping.get(u, u), mapping.get(v, v), weight)
        return relabeled

    def copy(self) -> "QUBOModel":
        """Deep copy of the model."""
        return QUBOModel(self._linear, self._quadratic, self.offset)

    def scaled(self, factor: float) -> "QUBOModel":
        """Return a copy with all weights (and offset) multiplied by ``factor``."""
        factor = self._check_weight(factor)
        scaled = QUBOModel(offset=self.offset * factor)
        for var, weight in self._linear.items():
            scaled.add_linear(var, weight * factor)
        for (u, v), weight in self._quadratic.items():
            scaled.add_quadratic(u, v, weight * factor)
        return scaled

    def to_dense(self, variable_order: Sequence[Variable] | None = None) -> np.ndarray:
        """Upper-triangular dense matrix ``W`` with ``E(x) = x^T W x + offset``."""
        order = list(variable_order) if variable_order is not None else self.variables
        index = {var: i for i, var in enumerate(order)}
        matrix = np.zeros((len(order), len(order)))
        for var, weight in self._linear.items():
            matrix[index[var], index[var]] = weight
        for (u, v), weight in self._quadratic.items():
            i, j = index[u], index[v]
            if i > j:
                i, j = j, i
            matrix[i, j] += weight
        return matrix

    def to_arrays(
        self, variable_order: Sequence[Variable] | None = None
    ) -> Tuple[List[Variable], np.ndarray, np.ndarray, np.ndarray]:
        """Flat-array export of the model for the annealing hot path.

        Returns ``(variables, linear, edges, weights)`` where ``linear``
        has one entry per variable, ``edges`` is an ``(m, 2)`` int64
        array of variable *indices* (each interaction appears exactly
        once, in the model's insertion order) and ``weights`` holds the
        matching quadratic weights.  Unlike :meth:`to_dense` the output
        size scales with the number of interactions, not with the square
        of the variable count.
        """
        cache = self._array_cache
        if cache is not None:
            cached_order, linear, edges, weights = cache
            if variable_order is None or list(variable_order) == cached_order:
                # Copies so callers can never corrupt the cached export.
                return list(cached_order), linear.copy(), edges.copy(), weights.copy()
        order = list(variable_order) if variable_order is not None else self.variables
        index = {var: i for i, var in enumerate(order)}
        missing = [var for var in self._linear if var not in index]
        if missing:
            raise QUBOError(f"variable_order is missing QUBO variables: {missing[:5]}")
        linear = np.zeros(len(order))
        for var, weight in self._linear.items():
            linear[index[var]] = weight
        num_edges = len(self._quadratic)
        edges = np.empty((num_edges, 2), dtype=np.int64)
        weights = np.empty(num_edges)
        for slot, ((u, v), weight) in enumerate(self._quadratic.items()):
            edges[slot, 0] = index[u]
            edges[slot, 1] = index[v]
            weights[slot] = weight
        if variable_order is None and self._pending is None:
            self._array_cache = (order, linear.copy(), edges.copy(), weights.copy())
        return order, linear, edges, weights

    def energy_range_bounds(self) -> Tuple[float, float]:
        """Loose lower/upper bounds on the reachable energy.

        The bounds simply accumulate all negative (resp. positive) weights
        and are used to sanity-check penalty scaling, not for optimisation.
        """
        low = self.offset
        high = self.offset
        for weight in self._linear.values():
            low += min(0.0, weight)
            high += max(0.0, weight)
        for weight in self._quadratic.values():
            low += min(0.0, weight)
            high += max(0.0, weight)
        return low, high

    def subinteractions(self, variables: Iterable[Variable]) -> "QUBOModel":
        """Restriction of the model to the given variable subset."""
        keep = set(variables)
        sub = QUBOModel(offset=self.offset)
        for var in keep:
            if var in self._linear:
                sub.add_linear(var, self._linear[var])
        for (u, v), weight in self._quadratic.items():
            if u in keep and v in keep:
                sub.add_quadratic(u, v, weight)
        return sub
