"""Sparse QUBO model container.

The model stores linear weights (diagonal terms ``w_ii``) and quadratic
weights (off-diagonal terms ``w_ij`` with ``i < j``) over hashable
variable labels.  The energy of an assignment ``x`` is

    E(x) = sum_i w_ii x_i + sum_{i<j} w_ij x_i x_j .

Variables may be arbitrary hashable labels (plan indices for the logical
QUBO, qubit indices for the physical QUBO).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.exceptions import QUBOError

__all__ = ["QUBOModel"]

Variable = Hashable
Edge = Tuple[Variable, Variable]


class QUBOModel:
    """A sparse QUBO over arbitrary hashable variable labels.

    The container is mutable (weights are accumulated with
    :meth:`add_linear` / :meth:`add_quadratic`) because the logical and
    physical mappings build energy formulas incrementally, term by term.
    """

    def __init__(
        self,
        linear: Mapping[Variable, float] | None = None,
        quadratic: Mapping[Edge, float] | None = None,
        offset: float = 0.0,
    ) -> None:
        self._linear: Dict[Variable, float] = {}
        self._quadratic: Dict[Edge, float] = {}
        self._adjacency: Dict[Variable, Dict[Variable, float]] = {}
        self.offset = float(offset)
        for var, weight in (linear or {}).items():
            self.add_linear(var, weight)
        for (u, v), weight in (quadratic or {}).items():
            self.add_quadratic(u, v, weight)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_weight(weight: float) -> float:
        weight = float(weight)
        if not math.isfinite(weight):
            raise QUBOError(f"QUBO weights must be finite, got {weight!r}")
        return weight

    def add_variable(self, var: Variable) -> None:
        """Register ``var`` (with zero linear weight) if not yet present."""
        if var not in self._linear:
            self._linear[var] = 0.0
            self._adjacency.setdefault(var, {})

    def add_linear(self, var: Variable, weight: float) -> None:
        """Accumulate ``weight`` onto the linear term of ``var``."""
        weight = self._check_weight(weight)
        self.add_variable(var)
        self._linear[var] += weight

    def add_quadratic(self, u: Variable, v: Variable, weight: float) -> None:
        """Accumulate ``weight`` onto the quadratic term between ``u`` and ``v``.

        Adding a quadratic term between a variable and itself folds into
        the linear term because ``x^2 = x`` for binary variables.
        """
        weight = self._check_weight(weight)
        if u == v:
            self.add_linear(u, weight)
            return
        self.add_variable(u)
        self.add_variable(v)
        key = self._edge_key(u, v)
        self._quadratic[key] = self._quadratic.get(key, 0.0) + weight
        self._adjacency[u][v] = self._adjacency[u].get(v, 0.0) + weight
        self._adjacency[v][u] = self._adjacency[v].get(u, 0.0) + weight

    def add_offset(self, value: float) -> None:
        """Accumulate a constant offset onto the energy."""
        self.offset += self._check_weight(value)

    @staticmethod
    def _edge_key(u: Variable, v: Variable) -> Edge:
        # A deterministic canonical order for the pair; fall back to repr
        # ordering when the labels are not mutually comparable.
        try:
            return (u, v) if u <= v else (v, u)  # type: ignore[operator]
        except TypeError:
            return (u, v) if repr(u) <= repr(v) else (v, u)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> List[Variable]:
        """All variables in insertion order."""
        return list(self._linear)

    @property
    def num_variables(self) -> int:
        """Number of variables."""
        return len(self._linear)

    @property
    def num_interactions(self) -> int:
        """Number of non-zero quadratic entries."""
        return len(self._quadratic)

    @property
    def linear(self) -> Dict[Variable, float]:
        """Copy of the linear weights."""
        return dict(self._linear)

    @property
    def quadratic(self) -> Dict[Edge, float]:
        """Copy of the quadratic weights keyed by canonical pairs."""
        return dict(self._quadratic)

    def get_linear(self, var: Variable) -> float:
        """Linear weight of ``var`` (0.0 if the variable is unknown)."""
        return self._linear.get(var, 0.0)

    def get_quadratic(self, u: Variable, v: Variable) -> float:
        """Quadratic weight between ``u`` and ``v`` (0.0 if absent)."""
        if u == v:
            return 0.0
        return self._quadratic.get(self._edge_key(u, v), 0.0)

    def neighbors(self, var: Variable) -> Dict[Variable, float]:
        """Quadratic partners of ``var`` with their coupling weights."""
        return dict(self._adjacency.get(var, {}))

    def degree(self, var: Variable) -> int:
        """Number of variables coupled to ``var``."""
        return len(self._adjacency.get(var, {}))

    def max_degree(self) -> int:
        """Maximum coupling degree over all variables (0 for empty models)."""
        if not self._adjacency:
            return 0
        return max(len(partners) for partners in self._adjacency.values())

    def __contains__(self, var: Variable) -> bool:
        return var in self._linear

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._linear)

    def __len__(self) -> int:
        return len(self._linear)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QUBOModel {self.num_variables} variables, "
            f"{self.num_interactions} interactions, offset={self.offset:.3f}>"
        )

    # ------------------------------------------------------------------ #
    # Energy evaluation
    # ------------------------------------------------------------------ #
    def energy(self, assignment: Mapping[Variable, int]) -> float:
        """Energy of a single assignment (missing variables default to 0)."""
        total = self.offset
        for var, weight in self._linear.items():
            if weight and assignment.get(var, 0):
                total += weight
        for (u, v), weight in self._quadratic.items():
            if weight and assignment.get(u, 0) and assignment.get(v, 0):
                total += weight
        return total

    def energies(self, samples: np.ndarray, variable_order: Sequence[Variable]) -> np.ndarray:
        """Vectorised energies for a 2-D array of samples.

        Parameters
        ----------
        samples:
            Array of shape ``(num_samples, num_variables)`` with 0/1 entries.
        variable_order:
            The variable corresponding to each sample column.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2 or samples.shape[1] != len(variable_order):
            raise QUBOError(
                f"samples must have shape (n, {len(variable_order)}), got {samples.shape}"
            )
        index = {var: i for i, var in enumerate(variable_order)}
        missing = [var for var in self._linear if var not in index]
        if missing:
            raise QUBOError(f"variable_order is missing QUBO variables: {missing[:5]}")
        lin = np.zeros(len(variable_order))
        for var, weight in self._linear.items():
            lin[index[var]] = weight
        energies = samples @ lin + self.offset
        for (u, v), weight in self._quadratic.items():
            if weight:
                energies += weight * samples[:, index[u]] * samples[:, index[v]]
        return energies

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def relabeled(self, mapping: Mapping[Variable, Variable]) -> "QUBOModel":
        """Return a copy with variables renamed according to ``mapping``.

        Variables absent from ``mapping`` keep their label.  The mapping
        must be injective on the model's variables.
        """
        new_labels = [mapping.get(v, v) for v in self._linear]
        if len(set(new_labels)) != len(new_labels):
            raise QUBOError("relabeling collapses distinct variables onto the same label")
        relabeled = QUBOModel(offset=self.offset)
        for var, weight in self._linear.items():
            relabeled.add_linear(mapping.get(var, var), weight)
        for (u, v), weight in self._quadratic.items():
            relabeled.add_quadratic(mapping.get(u, u), mapping.get(v, v), weight)
        return relabeled

    def copy(self) -> "QUBOModel":
        """Deep copy of the model."""
        return QUBOModel(self._linear, self._quadratic, self.offset)

    def scaled(self, factor: float) -> "QUBOModel":
        """Return a copy with all weights (and offset) multiplied by ``factor``."""
        factor = self._check_weight(factor)
        scaled = QUBOModel(offset=self.offset * factor)
        for var, weight in self._linear.items():
            scaled.add_linear(var, weight * factor)
        for (u, v), weight in self._quadratic.items():
            scaled.add_quadratic(u, v, weight * factor)
        return scaled

    def to_dense(self, variable_order: Sequence[Variable] | None = None) -> np.ndarray:
        """Upper-triangular dense matrix ``W`` with ``E(x) = x^T W x + offset``."""
        order = list(variable_order) if variable_order is not None else self.variables
        index = {var: i for i, var in enumerate(order)}
        matrix = np.zeros((len(order), len(order)))
        for var, weight in self._linear.items():
            matrix[index[var], index[var]] = weight
        for (u, v), weight in self._quadratic.items():
            i, j = index[u], index[v]
            if i > j:
                i, j = j, i
            matrix[i, j] += weight
        return matrix

    def to_arrays(
        self, variable_order: Sequence[Variable] | None = None
    ) -> Tuple[List[Variable], np.ndarray, np.ndarray, np.ndarray]:
        """Flat-array export of the model for the annealing hot path.

        Returns ``(variables, linear, edges, weights)`` where ``linear``
        has one entry per variable, ``edges`` is an ``(m, 2)`` int64
        array of variable *indices* (each interaction appears exactly
        once, in the model's insertion order) and ``weights`` holds the
        matching quadratic weights.  Unlike :meth:`to_dense` the output
        size scales with the number of interactions, not with the square
        of the variable count.
        """
        order = list(variable_order) if variable_order is not None else self.variables
        index = {var: i for i, var in enumerate(order)}
        missing = [var for var in self._linear if var not in index]
        if missing:
            raise QUBOError(f"variable_order is missing QUBO variables: {missing[:5]}")
        linear = np.zeros(len(order))
        for var, weight in self._linear.items():
            linear[index[var]] = weight
        num_edges = len(self._quadratic)
        edges = np.empty((num_edges, 2), dtype=np.int64)
        weights = np.empty(num_edges)
        for slot, ((u, v), weight) in enumerate(self._quadratic.items()):
            edges[slot, 0] = index[u]
            edges[slot, 1] = index[v]
            weights[slot] = weight
        return order, linear, edges, weights

    def energy_range_bounds(self) -> Tuple[float, float]:
        """Loose lower/upper bounds on the reachable energy.

        The bounds simply accumulate all negative (resp. positive) weights
        and are used to sanity-check penalty scaling, not for optimisation.
        """
        low = self.offset
        high = self.offset
        for weight in self._linear.values():
            low += min(0.0, weight)
            high += max(0.0, weight)
        for weight in self._quadratic.values():
            low += min(0.0, weight)
            high += max(0.0, weight)
        return low, high

    def subinteractions(self, variables: Iterable[Variable]) -> "QUBOModel":
        """Restriction of the model to the given variable subset."""
        keep = set(variables)
        sub = QUBOModel(offset=self.offset)
        for var in keep:
            if var in self._linear:
                sub.add_linear(var, self._linear[var])
        for (u, v), weight in self._quadratic.items():
            if u in keep and v in keep:
                sub.add_quadratic(u, v, weight)
        return sub
