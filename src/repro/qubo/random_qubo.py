"""Random QUBO instance generators.

Used for property-based tests of the solvers/embeddings and for the
ablation benchmarks that need problems unrelated to MQO (e.g. comparing
chain-strength rules on generic Chimera-structured instances).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.exceptions import QUBOError
from repro.qubo.model import QUBOModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["random_qubo", "random_chimera_qubo"]


def random_qubo(
    num_variables: int,
    density: float = 0.5,
    weight_range: Tuple[float, float] = (-1.0, 1.0),
    seed: SeedLike = None,
) -> QUBOModel:
    """A random QUBO on ``num_variables`` variables labelled ``0..n-1``.

    Every pair couples with probability ``density``; linear and quadratic
    weights are drawn uniformly from ``weight_range``.
    """
    if num_variables <= 0:
        raise QUBOError("num_variables must be positive")
    if not 0.0 <= density <= 1.0:
        raise QUBOError(f"density must be in [0, 1], got {density}")
    lo, hi = weight_range
    if hi < lo:
        raise QUBOError(f"invalid weight_range {weight_range}")
    rng = ensure_rng(seed)
    qubo = QUBOModel()
    for i in range(num_variables):
        qubo.add_linear(i, float(rng.uniform(lo, hi)))
    for i in range(num_variables):
        for j in range(i + 1, num_variables):
            if rng.random() < density:
                qubo.add_quadratic(i, j, float(rng.uniform(lo, hi)))
    return qubo


def random_chimera_qubo(
    edges: Iterable[Tuple[int, int]],
    nodes: Iterable[int],
    weight_range: Tuple[float, float] = (-1.0, 1.0),
    edge_probability: float = 1.0,
    seed: SeedLike = None,
) -> QUBOModel:
    """A random QUBO whose couplings are restricted to the given edge set.

    ``nodes``/``edges`` typically come from a :class:`ChimeraGraph`, which
    makes the instance directly executable on the device simulator with a
    one-to-one (identity) embedding.
    """
    lo, hi = weight_range
    if hi < lo:
        raise QUBOError(f"invalid weight_range {weight_range}")
    if not 0.0 <= edge_probability <= 1.0:
        raise QUBOError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = ensure_rng(seed)
    qubo = QUBOModel()
    for node in nodes:
        qubo.add_linear(node, float(rng.uniform(lo, hi)))
    for u, v in edges:
        if rng.random() < edge_probability:
            qubo.add_quadratic(u, v, float(rng.uniform(lo, hi)))
    return qubo
