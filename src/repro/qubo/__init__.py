"""Quadratic unconstrained binary optimization (QUBO) substrate.

A QUBO problem minimises ``sum_{i<=j} w_ij x_i x_j`` over binary
variables.  This package provides the sparse model container used by the
logical and physical mappings, QUBO/Ising conversions, an exact
brute-force solver for small instances, random-instance generators and a
tabu-style local-search improver.
"""

from repro.qubo.model import QUBOModel
from repro.qubo.ising import IsingModel, ising_to_qubo, qubo_to_ising
from repro.qubo.bruteforce import solve_bruteforce
from repro.qubo.random_qubo import random_qubo, random_chimera_qubo
from repro.qubo.local_search import greedy_descent, tabu_search

__all__ = [
    "QUBOModel",
    "IsingModel",
    "qubo_to_ising",
    "ising_to_qubo",
    "solve_bruteforce",
    "random_qubo",
    "random_chimera_qubo",
    "greedy_descent",
    "tabu_search",
]
