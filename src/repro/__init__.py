"""repro — Multiple Query Optimization on a (simulated) adiabatic quantum annealer.

A from-scratch reproduction of Trummer & Koch, "Multiple Query
Optimization on the D-Wave 2X Adiabatic Quantum Computer" (VLDB 2016).

The public API groups into five layers:

* :mod:`repro.mqo` — the MQO problem model and workload generators,
* :mod:`repro.qubo` — the QUBO/Ising substrate,
* :mod:`repro.chimera` / :mod:`repro.embedding` — the hardware topology
  and minor-embedding patterns (TRIAD, clustered, per-cell packing),
* :mod:`repro.core` — the paper's contribution: logical and physical
  mappings plus the end-to-end :class:`~repro.core.pipeline.QuantumMQO`
  pipeline and the qubit-complexity analysis,
* :mod:`repro.annealer` / :mod:`repro.baselines` /
  :mod:`repro.experiments` — the device simulator, the classical
  competitors and the evaluation harness for every table and figure.

Quick start::

    from repro import MQOProblem, QuantumMQO

    problem = MQOProblem(
        plans_per_query=[[2.0, 4.0], [3.0, 1.0]],
        savings={(1, 2): 5.0},
    )
    result = QuantumMQO(seed=0).solve(problem, num_reads=100)
    print(result.best_solution.cost, sorted(result.best_solution.selected_plans))
"""

from repro.exceptions import (
    AdmissionError,
    DeviceCapacityError,
    DeviceError,
    DuplicateSolverError,
    EmbeddingError,
    EmbeddingNotFoundError,
    InvalidProblemError,
    InvalidSolutionError,
    ProtocolError,
    QUBOError,
    ReproError,
    ServerError,
    ServiceError,
    SolverError,
    TopologyError,
    UnknownSolverError,
)
from repro.mqo import (
    MQOGeneratorConfig,
    MQOProblem,
    MQOSolution,
    Plan,
    Query,
    generate_chimera_native_problem,
    generate_clustered_problem,
    generate_paper_testcase,
    generate_random_problem,
)
from repro.qubo import IsingModel, QUBOModel, ising_to_qubo, qubo_to_ising, solve_bruteforce
from repro.chimera import DWAVE_2X, DWAVE_TWO, ChimeraGraph, DWaveSpec
from repro.embedding import (
    ClusteredEmbedder,
    Embedding,
    GreedyEmbedder,
    NativeClusteredEmbedder,
    TriadEmbedder,
)
from repro.core import (
    DecomposedQuantumMQO,
    DecompositionResult,
    LogicalMapping,
    LogicalMappingConfig,
    PhysicalMapping,
    PhysicalMappingConfig,
    QuantumMQO,
    QuantumMQOResult,
    capacity_frontier,
    embed_logical_qubo,
    map_mqo_to_qubo,
)
from repro.annealer import (
    BatchedAnnealer,
    CompileCache,
    CompiledQUBO,
    DWaveSamplerSimulator,
    NoiseModel,
    SimulatedAnnealingSampler,
    compile_qubo,
)
from repro.baselines import (
    AnytimeSolver,
    GeneticAlgorithmSolver,
    GreedyConstructiveSolver,
    IntegerProgrammingMQOSolver,
    IntegerProgrammingQUBOSolver,
    IteratedHillClimbing,
    SolverTrajectory,
)
from repro.service import (
    BatchExecutor,
    PortfolioResult,
    PortfolioScheduler,
    QuantumAnnealingSolver,
    ResultCache,
    ServiceFrontend,
    SolveRequest,
    SolveResult,
    SolverCapabilities,
    SolverRegistry,
    default_registry,
)

__version__ = "1.5.0"

from repro.server import (  # noqa: E402 — needs __version__ for the hello frame
    ServerConfig,
    ServerHandle,
    SolverClient,
    SolverServer,
    run_server_in_thread,
)
from repro.workloads import (  # noqa: E402
    ArrivalProcess,
    ScenarioSpec,
    WorkloadFamily,
    WorkloadSuite,
    get_family,
    get_suite,
    list_families,
    list_suites,
    workload_family,
)
from repro.bench import (  # noqa: E402
    BenchOrchestrator,
    BenchRunConfig,
    validate_bench_document,
)
from repro.obs import (  # noqa: E402
    MetricsRegistry,
    Tracer,
    configure_tracer,
    get_registry,
    get_tracer,
    render_prometheus,
    write_ndjson,
)

__all__ = [
    # workloads + bench
    "ArrivalProcess",
    "ScenarioSpec",
    "WorkloadFamily",
    "WorkloadSuite",
    "get_family",
    "get_suite",
    "list_families",
    "list_suites",
    "workload_family",
    "BenchOrchestrator",
    "BenchRunConfig",
    "validate_bench_document",
    # obs
    "Tracer",
    "get_tracer",
    "configure_tracer",
    "MetricsRegistry",
    "get_registry",
    "render_prometheus",
    "write_ndjson",
    # server
    "SolverServer",
    "ServerConfig",
    "ServerHandle",
    "SolverClient",
    "run_server_in_thread",
    # service
    "ServiceFrontend",
    "SolverRegistry",
    "SolverCapabilities",
    "default_registry",
    "PortfolioScheduler",
    "PortfolioResult",
    "BatchExecutor",
    "ResultCache",
    "SolveRequest",
    "SolveResult",
    "QuantumAnnealingSolver",
    # exceptions
    "ReproError",
    "InvalidProblemError",
    "InvalidSolutionError",
    "QUBOError",
    "TopologyError",
    "EmbeddingError",
    "EmbeddingNotFoundError",
    "DeviceError",
    "DeviceCapacityError",
    "SolverError",
    "ServiceError",
    "UnknownSolverError",
    "DuplicateSolverError",
    "ServerError",
    "ProtocolError",
    "AdmissionError",
    # mqo
    "Plan",
    "Query",
    "MQOProblem",
    "MQOSolution",
    "MQOGeneratorConfig",
    "generate_random_problem",
    "generate_clustered_problem",
    "generate_chimera_native_problem",
    "generate_paper_testcase",
    # qubo
    "QUBOModel",
    "IsingModel",
    "qubo_to_ising",
    "ising_to_qubo",
    "solve_bruteforce",
    # hardware / embedding
    "ChimeraGraph",
    "DWaveSpec",
    "DWAVE_2X",
    "DWAVE_TWO",
    "Embedding",
    "TriadEmbedder",
    "ClusteredEmbedder",
    "NativeClusteredEmbedder",
    "GreedyEmbedder",
    # core
    "LogicalMapping",
    "LogicalMappingConfig",
    "map_mqo_to_qubo",
    "PhysicalMapping",
    "PhysicalMappingConfig",
    "embed_logical_qubo",
    "QuantumMQO",
    "QuantumMQOResult",
    "DecomposedQuantumMQO",
    "DecompositionResult",
    "capacity_frontier",
    # annealer
    "DWaveSamplerSimulator",
    "SimulatedAnnealingSampler",
    "BatchedAnnealer",
    "CompileCache",
    "CompiledQUBO",
    "compile_qubo",
    "NoiseModel",
    # baselines
    "AnytimeSolver",
    "SolverTrajectory",
    "IteratedHillClimbing",
    "GeneticAlgorithmSolver",
    "GreedyConstructiveSolver",
    "IntegerProgrammingMQOSolver",
    "IntegerProgrammingQUBOSolver",
    "__version__",
]
