"""Minor-embedding of logical QUBO variables onto Chimera qubit chains.

The paper's *physical mapping* (Section 5) first chooses, for every
logical variable, a connected group of physical qubits (a *chain*), such
that every pair of logical variables that interact in the energy formula
is connected by at least one physical coupler between their chains.
This package provides:

* :class:`Embedding` — the variable-to-chain map plus validation,
* the TRIAD pattern of Choi (Figure 2) for fully connected problems,
* the clustered multi-TRIAD pattern (Figure 3),
* a compact per-cell packing used for the paper's evaluation workloads,
* a general greedy chain-growth embedder for arbitrary interaction graphs,
* chain read-out (unembedding) strategies.
"""

from repro.embedding.base import Embedding
from repro.embedding.cell_patterns import intra_cell_clique_chains, max_clique_size_per_cell
from repro.embedding.triad import TriadEmbedder, triad_capacity, triad_qubit_count
from repro.embedding.clustered import ClusteredEmbedder
from repro.embedding.native import NativeClusteredEmbedder
from repro.embedding.greedy import GreedyEmbedder
from repro.embedding.unembed import ChainReadout, majority_vote, resolve_chains

__all__ = [
    "Embedding",
    "intra_cell_clique_chains",
    "max_clique_size_per_cell",
    "TriadEmbedder",
    "triad_capacity",
    "triad_qubit_count",
    "ClusteredEmbedder",
    "NativeClusteredEmbedder",
    "GreedyEmbedder",
    "ChainReadout",
    "majority_vote",
    "resolve_chains",
]
