"""The clustered multi-TRIAD embedding pattern (paper Section 5, Figure 3).

Instead of one global TRIAD connecting every pair of logical variables,
the clustered pattern allocates one TRIAD per query cluster: all
variables of a cluster (the plans of its queries) are fully connected
inside their TRIAD, while variables in different clusters are only
connected through whatever physical couplers happen to join the two
TRIAD blocks.  This trades connectivity for a qubit count that grows
linearly in the number of clusters (Theorem 3: ``Theta(n * (m*l)^2)``).

Cluster TRIADs are packed onto the Chimera grid with a simple shelf
(row-by-row) packing: clusters are placed left to right along a shelf of
unit-cell rows whose height is the largest TRIAD in the shelf; when a
cluster no longer fits, a new shelf is opened below.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.chimera.topology import ChimeraGraph
from repro.embedding.base import Embedding
from repro.embedding.triad import TriadEmbedder
from repro.exceptions import EmbeddingError, EmbeddingNotFoundError

__all__ = ["ClusteredEmbedder", "clustered_qubit_count"]

Variable = Hashable


def clustered_qubit_count(
    num_clusters: int, variables_per_cluster: int, shore: int = 4
) -> int:
    """Qubits used by the clustered pattern with equal-size clusters.

    Each cluster of ``v`` variables occupies a TRIAD of
    ``v * (ceil(v / shore) + 1)`` qubits; the total is the Theorem 3
    bound ``Theta(n * (m*l)^2)`` with ``v = m*l``.
    """
    if num_clusters <= 0 or variables_per_cluster <= 0:
        raise EmbeddingError("cluster dimensions must be positive")
    t = math.ceil(variables_per_cluster / shore)
    return num_clusters * variables_per_cluster * (t + 1)


class ClusteredEmbedder:
    """Embed cluster-structured problems with one TRIAD per cluster."""

    def __init__(self, topology: ChimeraGraph) -> None:
        self.topology = topology
        self._triad = TriadEmbedder(topology)

    def _placements(
        self, cluster_sizes: Sequence[int]
    ) -> List[Tuple[int, int, int]]:
        """Shelf-pack the cluster TRIADs; returns (row_offset, col_offset, t) per cluster.

        The footprint ``t`` is the defect-free TRIAD size; the actual
        embedding may grow it locally when broken qubits invalidate
        chains, so the packing leaves no slack by design and relies on
        :meth:`embed` to fail cleanly when the grid is exhausted.
        """
        topo = self.topology
        placements: List[Tuple[int, int, int]] = []
        shelf_row = 0
        shelf_height = 0
        next_col = 0
        for size in cluster_sizes:
            t = self._triad.footprint(size)
            if t > topo.cols or t > topo.rows:
                raise EmbeddingNotFoundError(
                    f"a cluster of {size} variables needs a {t}x{t} TRIAD which does not "
                    f"fit on a {topo.rows}x{topo.cols} Chimera grid"
                )
            if next_col + t > topo.cols:
                shelf_row += shelf_height
                shelf_height = 0
                next_col = 0
            if shelf_row + t > topo.rows:
                raise EmbeddingNotFoundError(
                    "the clustered pattern does not fit: ran out of unit-cell rows "
                    f"after placing {len(placements)} of {len(cluster_sizes)} clusters"
                )
            placements.append((shelf_row, next_col, t))
            next_col += t
            shelf_height = max(shelf_height, t)
        return placements

    def embed(
        self,
        clusters: Sequence[Sequence[Variable]],
        interactions: Sequence[Tuple[Variable, Variable]] = (),
    ) -> Embedding:
        """Embed the given clusters; optionally validate cross-cluster interactions.

        Parameters
        ----------
        clusters:
            One sequence of logical variables per cluster.  Variables must
            be globally unique.
        interactions:
            Logical interactions to validate.  Intra-cluster interactions
            are always realisable; inter-cluster interactions are only
            realisable if the packed TRIADs happen to share couplers, and
            validation raises :class:`EmbeddingError` otherwise.
        """
        if not clusters or any(not cluster for cluster in clusters):
            raise EmbeddingError("clusters must be non-empty sequences of variables")
        flat: List[Variable] = [var for cluster in clusters for var in cluster]
        if len(set(flat)) != len(flat):
            raise EmbeddingError("variables must be unique across clusters")

        placements = self._placements([len(cluster) for cluster in clusters])
        chains: Dict[Variable, Tuple[int, ...]] = {}
        for cluster, (row_offset, col_offset, t) in zip(clusters, placements):
            sub = self._triad.embed_clique(
                list(cluster), row_offset=row_offset, col_offset=col_offset, max_size=t
            )
            for var in cluster:
                chains[var] = sub.chain(var)

        embedding = Embedding(chains)
        intra: List[Tuple[Variable, Variable]] = []
        for cluster in clusters:
            cluster_list = list(cluster)
            for i in range(len(cluster_list)):
                for j in range(i + 1, len(cluster_list)):
                    intra.append((cluster_list[i], cluster_list[j]))
        embedding.validate(self.topology, list(interactions) + intra)
        return embedding

    def realizable_cross_cluster_pairs(
        self, embedding: Embedding, clusters: Sequence[Sequence[Variable]]
    ) -> List[Tuple[Variable, Variable]]:
        """Cross-cluster variable pairs whose chains share a physical coupler.

        The paper notes that inter-cluster couplers are sparse and "can
        only represent work sharing opportunities"; this helper exposes
        which sharing links a workload may use for a given placement.
        """
        cluster_of: Dict[Variable, int] = {}
        for c_index, cluster in enumerate(clusters):
            for var in cluster:
                cluster_of[var] = c_index
        pairs: List[Tuple[Variable, Variable]] = []
        variables = embedding.variables
        for i, u in enumerate(variables):
            for v in variables[i + 1 :]:
                if cluster_of.get(u) == cluster_of.get(v):
                    continue
                if embedding.coupler_between(u, v, self.topology) is not None:
                    pairs.append((u, v))
        return pairs
