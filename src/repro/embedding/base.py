"""The :class:`Embedding` container: logical variables mapped to qubit chains."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.chimera.topology import ChimeraGraph
from repro.exceptions import EmbeddingError

__all__ = ["Embedding"]

Variable = Hashable


class Embedding:
    """A mapping from logical variables to disjoint chains of physical qubits.

    Parameters
    ----------
    chains:
        Mapping from each logical variable to the collection of physical
        qubit indices representing it.  Chains must be non-empty and
        pairwise disjoint.
    """

    def __init__(self, chains: Mapping[Variable, Iterable[int]]) -> None:
        self._chains: Dict[Variable, Tuple[int, ...]] = {}
        self._qubit_to_variable: Dict[int, Variable] = {}
        for var, qubits in chains.items():
            chain = tuple(dict.fromkeys(int(q) for q in qubits))
            if not chain:
                raise EmbeddingError(f"variable {var!r} has an empty chain")
            for q in chain:
                if q in self._qubit_to_variable:
                    raise EmbeddingError(
                        f"qubit {q} is used by both {self._qubit_to_variable[q]!r} "
                        f"and {var!r}"
                    )
                self._qubit_to_variable[q] = var
            self._chains[var] = chain

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> List[Variable]:
        """Embedded logical variables in insertion order."""
        return list(self._chains)

    @property
    def num_variables(self) -> int:
        """Number of embedded logical variables."""
        return len(self._chains)

    @property
    def num_qubits(self) -> int:
        """Total number of physical qubits used by all chains."""
        return len(self._qubit_to_variable)

    def chain(self, var: Variable) -> Tuple[int, ...]:
        """The chain of physical qubits representing ``var``."""
        try:
            return self._chains[var]
        except KeyError:
            raise EmbeddingError(f"variable {var!r} is not embedded") from None

    def chains(self) -> Dict[Variable, Tuple[int, ...]]:
        """Copy of the full variable-to-chain mapping."""
        return dict(self._chains)

    def chain_length(self, var: Variable) -> int:
        """Number of qubits in the chain of ``var``."""
        return len(self.chain(var))

    def max_chain_length(self) -> int:
        """Longest chain length (0 for an empty embedding)."""
        if not self._chains:
            return 0
        return max(len(chain) for chain in self._chains.values())

    def average_chain_length(self) -> float:
        """Mean chain length, i.e. qubits per logical variable."""
        if not self._chains:
            return 0.0
        return self.num_qubits / self.num_variables

    def variable_of_qubit(self, qubit: int) -> Variable:
        """The logical variable represented by ``qubit``."""
        try:
            return self._qubit_to_variable[qubit]
        except KeyError:
            raise EmbeddingError(f"qubit {qubit} is not part of any chain") from None

    def used_qubits(self) -> Set[int]:
        """All physical qubits used by the embedding."""
        return set(self._qubit_to_variable)

    def __contains__(self, var: Variable) -> bool:
        return var in self._chains

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Embedding {self.num_variables} variables -> {self.num_qubits} qubits, "
            f"max chain {self.max_chain_length()}>"
        )

    # ------------------------------------------------------------------ #
    # Structure queries against a topology
    # ------------------------------------------------------------------ #
    def chain_is_connected(self, var: Variable, topology: ChimeraGraph) -> bool:
        """Whether the chain of ``var`` induces a connected subgraph."""
        chain = self.chain(var)
        if len(chain) == 1:
            return topology.has_qubit(chain[0])
        chain_set = set(chain)
        if not all(topology.has_qubit(q) for q in chain_set):
            return False
        visited = {chain[0]}
        frontier = [chain[0]]
        while frontier:
            current = frontier.pop()
            for neighbor in topology.neighbors(current):
                if neighbor in chain_set and neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        return len(visited) == len(chain_set)

    def coupler_between(
        self, var_u: Variable, var_v: Variable, topology: ChimeraGraph
    ) -> Tuple[int, int] | None:
        """One physical coupler joining the chains of two variables, if any."""
        chain_u = self.chain(var_u)
        chain_v_set = set(self.chain(var_v))
        for qu in chain_u:
            if not topology.has_qubit(qu):
                continue
            for neighbor in topology.neighbors(qu):
                if neighbor in chain_v_set:
                    return (qu, neighbor)
        return None

    def couplers_between(
        self, var_u: Variable, var_v: Variable, topology: ChimeraGraph
    ) -> List[Tuple[int, int]]:
        """All physical couplers joining the chains of two variables."""
        chain_u = self.chain(var_u)
        chain_v_set = set(self.chain(var_v))
        couplers = []
        for qu in chain_u:
            if not topology.has_qubit(qu):
                continue
            for neighbor in topology.neighbors(qu):
                if neighbor in chain_v_set:
                    couplers.append((qu, neighbor))
        return couplers

    def chain_edges(self, var: Variable, topology: ChimeraGraph) -> List[Tuple[int, int]]:
        """Spanning-tree couplers that hold the chain of ``var`` together.

        The physical mapping adds equality-enforcing terms along these
        edges.  For a single-qubit chain the list is empty.
        """
        chain = self.chain(var)
        if len(chain) == 1:
            return []
        chain_set = set(chain)
        visited = {chain[0]}
        frontier = [chain[0]]
        edges: List[Tuple[int, int]] = []
        while frontier:
            current = frontier.pop()
            for neighbor in topology.neighbors(current):
                if neighbor in chain_set and neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
                    edges.append((current, neighbor))
        if len(visited) != len(chain_set):
            raise EmbeddingError(
                f"chain of variable {var!r} is not connected on the topology"
            )
        return edges

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(
        self,
        topology: ChimeraGraph,
        interactions: Iterable[Tuple[Variable, Variable]] = (),
    ) -> None:
        """Check the three embedding constraints of paper Section 5.

        1. Every chain uses only functional qubits and is connected.
        2. Chains are pairwise disjoint (guaranteed at construction).
        3. For every logical interaction there is at least one physical
           coupler joining the two chains.

        Raises :class:`EmbeddingError` on the first violation.
        """
        for var, chain in self._chains.items():
            for q in chain:
                if not topology.has_qubit(q):
                    raise EmbeddingError(
                        f"chain of {var!r} uses broken or unknown qubit {q}"
                    )
            if not self.chain_is_connected(var, topology):
                raise EmbeddingError(f"chain of {var!r} is not connected: {chain}")
        for u, v in interactions:
            if u == v:
                continue
            if u not in self._chains or v not in self._chains:
                raise EmbeddingError(
                    f"interaction ({u!r}, {v!r}) references a variable without a chain"
                )
            if self.coupler_between(u, v, topology) is None:
                raise EmbeddingError(
                    f"no physical coupler connects the chains of {u!r} and {v!r}"
                )

    def statistics(self) -> Dict[str, float]:
        """Summary statistics used by the experiment reports."""
        lengths = [len(chain) for chain in self._chains.values()]
        if not lengths:
            return {
                "num_variables": 0,
                "num_qubits": 0,
                "max_chain_length": 0,
                "qubits_per_variable": 0.0,
            }
        return {
            "num_variables": float(len(lengths)),
            "num_qubits": float(sum(lengths)),
            "max_chain_length": float(max(lengths)),
            "qubits_per_variable": sum(lengths) / len(lengths),
        }

    def subembedding(self, variables: Sequence[Variable]) -> "Embedding":
        """Restriction of the embedding to a subset of variables."""
        return Embedding({var: self.chain(var) for var in variables})
