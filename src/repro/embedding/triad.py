"""The TRIAD embedding pattern of Choi (paper Section 5, Figure 2).

The TRIAD pattern embeds a *complete* interaction graph: every pair of
logical variables is joined by at least one physical coupler, so it can
represent arbitrary QUBO problems.  The price is a quadratic qubit count
(Theorem 3): embedding ``n`` variables on a Chimera with shore ``L``
needs a ``t x t`` block of unit cells with ``t = ceil(n / L)`` and chains
of length ``t + 1``, i.e. ``n * (t + 1)`` qubits in total.

Construction (variables ``v = L*b + k`` with block ``b`` and position ``k``):

* the *horizontal* chain segment occupies the right-column qubit at
  position ``k`` of cells ``(b, 0) .. (b, b)``,
* the *vertical* segment occupies the left-column qubit at position ``k``
  of cells ``(b, b) .. (t-1, b)``.

The two segments meet in the diagonal cell ``(b, b)`` through an
intra-cell coupler.  Two chains from blocks ``a < b`` always meet in cell
``(b, a)``; two chains of the same block meet in the diagonal cell.

Broken qubits make entire chains unusable (Figure 2d); the embedder
discards such chains and, if necessary, grows the pattern until enough
intact chains remain.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Sequence

from repro.chimera.topology import ChimeraCoordinate, ChimeraGraph
from repro.embedding.base import Embedding
from repro.exceptions import EmbeddingError, EmbeddingNotFoundError

__all__ = ["TriadEmbedder", "triad_qubit_count", "triad_capacity"]

Variable = Hashable


def triad_qubit_count(num_variables: int, shore: int = 4) -> int:
    """Number of qubits the TRIAD pattern needs for ``num_variables`` chains.

    With ``t = ceil(n / shore)`` each chain has ``t + 1`` qubits, hence
    ``n * (t + 1)`` qubits in total — the Theta(n^2 / shore) growth of
    Theorem 3 (for a single cluster).
    """
    if num_variables <= 0:
        raise EmbeddingError(f"num_variables must be positive, got {num_variables}")
    if shore <= 0:
        raise EmbeddingError(f"shore must be positive, got {shore}")
    t = math.ceil(num_variables / shore)
    return num_variables * (t + 1)


def triad_capacity(rows: int, cols: int, shore: int = 4) -> int:
    """Largest clique embeddable by a TRIAD on a ``rows x cols`` Chimera grid."""
    if rows <= 0 or cols <= 0 or shore <= 0:
        raise EmbeddingError("grid dimensions must be positive")
    return shore * min(rows, cols)


class TriadEmbedder:
    """Embeds complete interaction graphs with the TRIAD pattern.

    Parameters
    ----------
    topology:
        Target Chimera topology (possibly with broken qubits).
    """

    def __init__(self, topology: ChimeraGraph) -> None:
        self.topology = topology

    # ------------------------------------------------------------------ #
    # Pattern construction
    # ------------------------------------------------------------------ #
    def _pattern_chain(
        self, block: int, position: int, t: int, row_offset: int, col_offset: int
    ) -> List[int]:
        """Qubits of the TRIAD chain for (block, position) in a ``t x t`` block."""
        topo = self.topology
        chain: List[int] = []
        # Horizontal segment: right-column qubits in row `block`, columns 0..block.
        for j in range(block + 1):
            coord = ChimeraCoordinate(row_offset + block, col_offset + j, 1, position)
            chain.append(topo.coordinate_to_index(coord))
        # Vertical segment: left-column qubits in column `block`, rows block..t-1.
        for i in range(block, t):
            coord = ChimeraCoordinate(row_offset + i, col_offset + block, 0, position)
            chain.append(topo.coordinate_to_index(coord))
        return chain

    def pattern_chains(
        self, t: int, row_offset: int = 0, col_offset: int = 0
    ) -> List[List[int]]:
        """All ``shore * t`` chains of the TRIAD pattern of size ``t``.

        Chains containing broken qubits are still returned (callers filter
        them), which is what Figure 2d visualises.
        """
        if t <= 0:
            raise EmbeddingError(f"TRIAD size must be positive, got {t}")
        topo = self.topology
        if row_offset < 0 or col_offset < 0:
            raise EmbeddingError("TRIAD offsets must be non-negative")
        if row_offset + t > topo.rows or col_offset + t > topo.cols:
            raise EmbeddingNotFoundError(
                f"a TRIAD of size {t} at offset ({row_offset}, {col_offset}) does not fit "
                f"on a {topo.rows}x{topo.cols} Chimera grid"
            )
        chains = []
        for block in range(t):
            for position in range(topo.shore):
                chains.append(
                    self._pattern_chain(block, position, t, row_offset, col_offset)
                )
        return chains

    def usable_pattern_chains(
        self, t: int, row_offset: int = 0, col_offset: int = 0
    ) -> List[List[int]]:
        """Pattern chains whose qubits are all functional."""
        topo = self.topology
        return [
            chain
            for chain in self.pattern_chains(t, row_offset, col_offset)
            if all(topo.has_qubit(q) for q in chain)
        ]

    # ------------------------------------------------------------------ #
    # Embedding
    # ------------------------------------------------------------------ #
    def embed_clique(
        self,
        variables: Sequence[Variable],
        row_offset: int = 0,
        col_offset: int = 0,
        max_size: int | None = None,
    ) -> Embedding:
        """Embed a complete graph over ``variables``.

        The smallest TRIAD size with enough intact chains is used; broken
        chains are skipped.  ``max_size`` caps the TRIAD size (in unit
        cells per side), e.g. to keep the pattern inside a reserved
        sub-grid of the clustered layout.

        Raises
        ------
        EmbeddingNotFoundError
            If no TRIAD fitting on the topology provides enough intact chains.
        """
        variables = list(variables)
        if not variables:
            raise EmbeddingError("cannot embed an empty variable set")
        if len(set(variables)) != len(variables):
            raise EmbeddingError("variables must be unique")
        topo = self.topology
        min_t = math.ceil(len(variables) / topo.shore)
        limit = min(topo.rows - row_offset, topo.cols - col_offset)
        if max_size is not None:
            limit = min(limit, max_size)
        for t in range(min_t, limit + 1):
            usable = self.usable_pattern_chains(t, row_offset, col_offset)
            if len(usable) >= len(variables):
                chains = {var: tuple(chain) for var, chain in zip(variables, usable)}
                embedding = Embedding(chains)
                interactions = [
                    (variables[i], variables[j])
                    for i in range(len(variables))
                    for j in range(i + 1, len(variables))
                ]
                embedding.validate(topo, interactions)
                return embedding
        raise EmbeddingNotFoundError(
            f"cannot embed a clique of {len(variables)} variables with a TRIAD at offset "
            f"({row_offset}, {col_offset}); largest usable pattern size is {limit}"
        )

    def footprint(self, num_variables: int) -> int:
        """TRIAD side length (in unit cells) needed for ``num_variables`` chains
        assuming no broken qubits."""
        if num_variables <= 0:
            raise EmbeddingError(f"num_variables must be positive, got {num_variables}")
        return math.ceil(num_variables / self.topology.shore)
