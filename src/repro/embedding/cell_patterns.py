"""Compact clique embeddings inside a single Chimera unit cell.

A unit cell is a complete bipartite graph ``K_{shore,shore}`` between a
left and a right column of qubits.  A clique on up to ``shore + 1``
logical variables embeds inside one cell with the pattern

    {L_a}, {R_b}, {L_c, R_c}, {L_d, R_d}, ...

i.e. two singleton chains (one left-column qubit and one right-column
qubit) plus two-qubit chains occupying both columns of one position.
Every pair of chains is joined by an intra-cell coupler:

* ``{L_a}`` -- ``{R_b}`` via the coupler ``(L_a, R_b)``,
* ``{L_a}`` -- ``{L_c, R_c}`` via ``(L_a, R_c)``,
* ``{R_b}`` -- ``{L_c, R_c}`` via ``(L_c, R_b)``,
* ``{L_c, R_c}`` -- ``{L_d, R_d}`` via ``(L_c, R_d)``.

This pattern is what lets the paper's evaluation instances use close to
one qubit per logical variable for two plans per query and roughly 1.3-2
qubits per variable for three to five plans per query (Figure 6).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import EmbeddingError

__all__ = ["CellPosition", "intra_cell_clique_chains", "max_clique_size_per_cell", "positions_needed"]

#: One usable position ``k`` of a unit cell: the pair (left qubit, right qubit).
CellPosition = Tuple[int, int]


def max_clique_size_per_cell(shore: int) -> int:
    """Largest clique embeddable inside a single unit cell with ``shore`` qubits per column."""
    if shore <= 0:
        raise EmbeddingError(f"shore must be positive, got {shore}")
    return shore + 1


def positions_needed(clique_size: int) -> int:
    """Number of intact cell positions required to embed a clique of the given size."""
    if clique_size <= 0:
        raise EmbeddingError(f"clique_size must be positive, got {clique_size}")
    if clique_size == 1:
        return 1
    return clique_size - 1


def intra_cell_clique_chains(
    positions: Sequence[CellPosition],
    clique_size: int,
) -> List[Tuple[int, ...]]:
    """Chains embedding a clique of ``clique_size`` variables inside one cell.

    Parameters
    ----------
    positions:
        Usable cell positions as ``(left_qubit, right_qubit)`` pairs; both
        qubits of a used position must be functional.
    clique_size:
        Number of mutually interacting logical variables to embed.

    Returns
    -------
    list of tuples
        ``clique_size`` chains.  The first two chains are singletons, the
        remaining chains contain the two qubits of one position.

    Raises
    ------
    EmbeddingError
        If the cell does not have enough usable positions.
    """
    needed = positions_needed(clique_size)
    if len(positions) < needed:
        raise EmbeddingError(
            f"embedding a {clique_size}-clique needs {needed} intact cell positions, "
            f"only {len(positions)} available"
        )
    if clique_size == 1:
        left, _right = positions[0]
        return [(left,)]
    left0, right0 = positions[0]
    chains: List[Tuple[int, ...]] = [(left0,), (right0,)]
    for k in range(1, clique_size - 1):
        left_k, right_k = positions[k]
        chains.append((left_k, right_k))
    return chains
