"""Chain read-out (unembedding) of physical samples.

After an annealing run, every physical qubit carries a binary value.  All
qubits of a chain *should* agree (the equality penalties of the physical
mapping drive them to), but disturbed runs can produce *broken chains*.
This module converts physical samples back into logical assignments and
offers the standard resolution strategies for broken chains.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Hashable, Mapping, Tuple

from repro.embedding.base import Embedding
from repro.exceptions import EmbeddingError

__all__ = ["ChainReadout", "majority_vote", "resolve_chains"]

Variable = Hashable


class ChainReadout(str, Enum):
    """Strategy for resolving broken chains during read-out.

    ``MAJORITY``
        Take the value held by the majority of the chain's qubits
        (ties resolve to 1, matching the convention of breaking towards
        selecting a plan, which the validity penalties then correct).
    ``FIRST``
        Take the value of the first qubit in the chain.
    ``DISCARD``
        Mark the whole sample as unusable when any chain is broken.
    """

    MAJORITY = "majority"
    FIRST = "first"
    DISCARD = "discard"


def majority_vote(values: Tuple[int, ...]) -> int:
    """Majority value of a tuple of 0/1 readings (ties resolve to 1)."""
    if not values:
        raise EmbeddingError("cannot take a majority vote over an empty chain")
    ones = sum(values)
    return 1 if 2 * ones >= len(values) else 0


def resolve_chains(
    physical_sample: Mapping[int, int],
    embedding: Embedding,
    readout: ChainReadout = ChainReadout.MAJORITY,
) -> Tuple[Dict[Variable, int], bool]:
    """Convert one physical sample into a logical assignment.

    Parameters
    ----------
    physical_sample:
        Mapping from physical qubit index to its 0/1 value.
    embedding:
        The embedding whose chains define the logical variables.
    readout:
        Broken-chain resolution strategy.

    Returns
    -------
    (assignment, any_chain_broken)
        The logical assignment and a flag telling whether at least one
        chain had inconsistent qubit values.  With
        :attr:`ChainReadout.DISCARD` the assignment is empty when a chain
        is broken.
    """
    assignment: Dict[Variable, int] = {}
    any_broken = False
    for var in embedding.variables:
        chain = embedding.chain(var)
        try:
            values = tuple(int(physical_sample[q]) for q in chain)
        except KeyError as exc:
            raise EmbeddingError(
                f"physical sample is missing qubit {exc} of the chain for {var!r}"
            ) from exc
        for value in values:
            if value not in (0, 1):
                raise EmbeddingError(
                    f"physical sample holds non-binary value {value} for variable {var!r}"
                )
        broken = len(set(values)) > 1
        any_broken = any_broken or broken
        if readout is ChainReadout.DISCARD and broken:
            return {}, True
        if readout is ChainReadout.FIRST:
            assignment[var] = values[0]
        else:
            assignment[var] = majority_vote(values)
    return assignment, any_broken
