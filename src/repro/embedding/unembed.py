"""Chain read-out (unembedding) of physical samples.

After an annealing run, every physical qubit carries a binary value.  All
qubits of a chain *should* agree (the equality penalties of the physical
mapping drive them to), but disturbed runs can produce *broken chains*.
This module converts physical samples back into logical assignments and
offers the standard resolution strategies for broken chains.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.embedding.base import Embedding
from repro.exceptions import EmbeddingError

__all__ = [
    "ChainReadout",
    "ChainGather",
    "majority_vote",
    "resolve_chains",
    "resolve_chains_batch",
]

Variable = Hashable


class ChainReadout(str, Enum):
    """Strategy for resolving broken chains during read-out.

    ``MAJORITY``
        Take the value held by the majority of the chain's qubits
        (ties resolve to 1, matching the convention of breaking towards
        selecting a plan, which the validity penalties then correct).
    ``FIRST``
        Take the value of the first qubit in the chain.
    ``DISCARD``
        Mark the whole sample as unusable when any chain is broken.
    """

    MAJORITY = "majority"
    FIRST = "first"
    DISCARD = "discard"


def majority_vote(values: Tuple[int, ...]) -> int:
    """Majority value of a tuple of 0/1 readings (ties resolve to 1)."""
    if not values:
        raise EmbeddingError("cannot take a majority vote over an empty chain")
    ones = sum(values)
    return 1 if 2 * ones >= len(values) else 0


def resolve_chains(
    physical_sample: Mapping[int, int],
    embedding: Embedding,
    readout: ChainReadout = ChainReadout.MAJORITY,
) -> Tuple[Dict[Variable, int], bool]:
    """Convert one physical sample into a logical assignment.

    Parameters
    ----------
    physical_sample:
        Mapping from physical qubit index to its 0/1 value.
    embedding:
        The embedding whose chains define the logical variables.
    readout:
        Broken-chain resolution strategy.

    Returns
    -------
    (assignment, any_chain_broken)
        The logical assignment and a flag telling whether at least one
        chain had inconsistent qubit values.  With
        :attr:`ChainReadout.DISCARD` the assignment is empty when a chain
        is broken.
    """
    assignment: Dict[Variable, int] = {}
    any_broken = False
    for var in embedding.variables:
        chain = embedding.chain(var)
        try:
            values = tuple(int(physical_sample[q]) for q in chain)
        except KeyError as exc:
            raise EmbeddingError(
                f"physical sample is missing qubit {exc} of the chain for {var!r}"
            ) from exc
        for value in values:
            if value not in (0, 1):
                raise EmbeddingError(
                    f"physical sample holds non-binary value {value} for variable {var!r}"
                )
        broken = len(set(values)) > 1
        any_broken = any_broken or broken
        if readout is ChainReadout.DISCARD and broken:
            return {}, True
        if readout is ChainReadout.FIRST:
            assignment[var] = values[0]
        else:
            assignment[var] = majority_vote(values)
    return assignment, any_broken


class ChainGather:
    """Precomputed flat gather for vectorised chain read-out.

    Resolving chains sample by sample costs a Python loop per qubit per
    read.  This helper flattens every chain's qubit positions (relative
    to a fixed qubit order) once, so a whole batch of reads resolves
    with one fancy-index plus one ``np.add.reduceat`` — the same
    gather/segment pattern the sparse annealer uses for local fields.

    Parameters
    ----------
    embedding:
        The embedding whose chains define the logical variables.
    qubit_order:
        The physical qubit corresponding to each column of the state
        matrices that will be resolved.
    """

    def __init__(self, embedding: Embedding, qubit_order: Sequence[int]) -> None:
        position = {qubit: column for column, qubit in enumerate(qubit_order)}
        self.variables: List[Variable] = list(embedding.variables)
        flat: List[int] = []
        lengths: List[int] = []
        for var in self.variables:
            chain = embedding.chain(var)
            try:
                flat.extend(position[qubit] for qubit in chain)
            except KeyError as exc:
                raise EmbeddingError(
                    f"qubit order is missing qubit {exc} of the chain for {var!r}"
                ) from exc
            lengths.append(len(chain))
        self.flat = np.asarray(flat, dtype=np.int64)
        self.lengths = np.asarray(lengths, dtype=np.int64)
        self.starts = np.cumsum(self.lengths) - self.lengths

    def resolve(
        self, states: np.ndarray, readout: ChainReadout = ChainReadout.MAJORITY
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Resolve a ``(num_reads, num_qubits)`` 0/1 state matrix.

        Returns ``(assignments, broken)`` where ``assignments`` is a
        ``(num_reads, num_variables)`` int8 matrix in the order of
        :attr:`variables` and ``broken`` flags reads with at least one
        inconsistent chain.  With :attr:`ChainReadout.DISCARD` the
        assignment rows of broken reads are *not* blanked here — the
        dictionary-level wrappers implement the discard convention.
        """
        states = np.asarray(states)
        if states.ndim != 2:
            raise EmbeddingError(f"states must be 2-D, got shape {states.shape}")
        values = states[:, self.flat]
        if not np.isin(values, (0, 1)).all():
            raise EmbeddingError("physical samples hold non-binary values")
        values = values.astype(np.int64, copy=False)
        ones = np.add.reduceat(values, self.starts, axis=1)
        broken_chains = (ones > 0) & (ones < self.lengths)
        broken = broken_chains.any(axis=1)
        if readout is ChainReadout.FIRST:
            assignments = values[:, self.starts]
        else:
            # Majority with ties resolving to 1, matching majority_vote.
            assignments = (2 * ones >= self.lengths).astype(np.int64)
        return assignments.astype(np.int8), broken


def resolve_chains_batch(
    states: np.ndarray,
    qubit_order: Sequence[int],
    embedding: Embedding,
    readout: ChainReadout = ChainReadout.MAJORITY,
) -> Tuple[List[Dict[Variable, int]], List[bool]]:
    """Convert a batch of physical state rows into logical assignments.

    Vectorised equivalent of calling :func:`resolve_chains` on every row
    of ``states`` (columns ordered by ``qubit_order``): one gather and
    one segmented reduction resolve all reads at once.  Returns the
    per-read assignment dictionaries and broken-chain flags; with
    :attr:`ChainReadout.DISCARD` broken reads get an empty assignment,
    matching the scalar function.
    """
    gather = ChainGather(embedding, qubit_order)
    matrix, broken = gather.resolve(states, readout)
    assignments: List[Dict[Variable, int]] = []
    for row, row_broken in zip(matrix, broken):
        if readout is ChainReadout.DISCARD and row_broken:
            assignments.append({})
        else:
            assignments.append(
                {var: int(row[i]) for i, var in enumerate(gather.variables)}
            )
    return assignments, [bool(flag) for flag in broken]
