"""Compact per-cell embedding for the paper's evaluation workloads.

The evaluation instances of Section 7 treat every query as its own
cluster with 2-5 alternative plans.  Packing each such small cluster into
a single Chimera unit cell (see :mod:`repro.embedding.cell_patterns`)
achieves the qubit-per-variable ratios reported in Figure 6 — close to
one qubit per variable for two plans per query, growing towards two as
the number of plans per query increases — and therefore also the maximal
problem sizes that fit on the 1097 functional qubits of the D-Wave 2X.

Clusters are assigned to unit cells along a serpentine (boustrophedon)
walk over the cell grid, so consecutive clusters sit in the same or in
adjacent cells and the leftover couplers can carry sharing links between
plans of neighbouring queries.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Sequence, Tuple

from repro.chimera.topology import ChimeraCoordinate, ChimeraGraph
from repro.embedding.base import Embedding
from repro.embedding.cell_patterns import (
    intra_cell_clique_chains,
    max_clique_size_per_cell,
    positions_needed,
)
from repro.exceptions import EmbeddingError, EmbeddingNotFoundError

__all__ = ["NativeClusteredEmbedder"]

Variable = Hashable


class NativeClusteredEmbedder:
    """Pack small fully connected clusters into individual Chimera unit cells."""

    def __init__(self, topology: ChimeraGraph) -> None:
        self.topology = topology

    # ------------------------------------------------------------------ #
    # Cell inventory
    # ------------------------------------------------------------------ #
    def serpentine_cells(self) -> Iterator[Tuple[int, int]]:
        """Unit-cell coordinates in serpentine order (row 0 left-to-right, row 1
        right-to-left, ...)."""
        for row in range(self.topology.rows):
            cols = range(self.topology.cols)
            if row % 2 == 1:
                cols = reversed(cols)  # type: ignore[assignment]
            for col in cols:
                yield row, col

    def intact_positions(self, row: int, col: int) -> List[Tuple[int, int]]:
        """Usable ``(left_qubit, right_qubit)`` position pairs of one cell."""
        topo = self.topology
        positions = []
        for k in range(topo.shore):
            left = topo.coordinate_to_index(ChimeraCoordinate(row, col, 0, k))
            right = topo.coordinate_to_index(ChimeraCoordinate(row, col, 1, k))
            if topo.has_qubit(left) and topo.has_qubit(right) and topo.has_coupler(left, right):
                positions.append((left, right))
        return positions

    def capacity(self, cluster_size: int) -> int:
        """Maximum number of equal-size clusters this topology can host.

        This is the quantity the paper uses to choose "the associated
        maximal number of queries that can be treated using the available
        qubits" for each plans-per-query setting.
        """
        if cluster_size > max_clique_size_per_cell(self.topology.shore):
            return 0
        needed = positions_needed(cluster_size)
        total = 0
        for row, col in self.serpentine_cells():
            total += len(self.intact_positions(row, col)) // needed
        return total

    def qubits_per_variable(self, cluster_size: int) -> float:
        """Qubits consumed per logical variable for clusters of the given size."""
        if cluster_size <= 0:
            raise EmbeddingError(f"cluster_size must be positive, got {cluster_size}")
        if cluster_size == 1:
            return 1.0
        chains = intra_cell_clique_chains(
            [(2 * k, 2 * k + 1) for k in range(positions_needed(cluster_size))],
            cluster_size,
        )
        return sum(len(chain) for chain in chains) / cluster_size

    # ------------------------------------------------------------------ #
    # Embedding
    # ------------------------------------------------------------------ #
    def embed(
        self,
        clusters: Sequence[Sequence[Variable]],
        interactions: Sequence[Tuple[Variable, Variable]] = (),
    ) -> Embedding:
        """Embed each cluster as a clique inside (part of) one unit cell.

        Clusters are consumed in order; a cluster is never split across
        cells.  ``interactions`` (typically the sharing links between
        plans of different queries) are validated against the produced
        embedding and raise :class:`EmbeddingError` if a required physical
        coupler is missing.
        """
        if not clusters or any(not cluster for cluster in clusters):
            raise EmbeddingError("clusters must be non-empty sequences of variables")
        flat = [var for cluster in clusters for var in cluster]
        if len(set(flat)) != len(flat):
            raise EmbeddingError("variables must be unique across clusters")
        max_size = max_clique_size_per_cell(self.topology.shore)
        for cluster in clusters:
            if len(cluster) > max_size:
                raise EmbeddingNotFoundError(
                    f"a cluster of {len(cluster)} variables does not fit into a single "
                    f"unit cell (maximum {max_size}); use the TRIAD/clustered embedder"
                )

        chains: Dict[Variable, Tuple[int, ...]] = {}
        cell_iter = self.serpentine_cells()
        available: List[Tuple[int, int]] = []
        exhausted = False
        for cluster_index, cluster in enumerate(clusters):
            needed = positions_needed(len(cluster))
            while len(available) < needed:
                try:
                    row, col = next(cell_iter)
                except StopIteration:
                    exhausted = True
                    break
                # Positions left over in the previous cell cannot be combined
                # with a new cell for the same cluster (chains would be
                # disconnected), so start fresh per cell.
                available = self.intact_positions(row, col)
            if exhausted or len(available) < needed:
                raise EmbeddingNotFoundError(
                    f"ran out of unit cells after embedding {cluster_index} of "
                    f"{len(clusters)} clusters"
                )
            used, available = available[:needed], available[needed:]
            cluster_chains = intra_cell_clique_chains(used, len(cluster))
            for var, chain in zip(cluster, cluster_chains):
                chains[var] = tuple(chain)

        embedding = Embedding(chains)
        intra: List[Tuple[Variable, Variable]] = []
        for cluster in clusters:
            members = list(cluster)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    intra.append((members[i], members[j]))
        embedding.validate(self.topology, list(interactions) + intra)
        return embedding

    def couplable_pairs(self, embedding: Embedding) -> List[Tuple[Variable, Variable]]:
        """All variable pairs whose chains are joined by a physical coupler.

        Workload generators use this to place sharing links only where the
        hardware can represent them ("test cases that map well to the
        quantum annealer", Section 7.1).
        """
        topo = self.topology
        chains = embedding.chains()
        qubit_to_var = {q: var for var, chain in chains.items() for q in chain}
        pairs = set()
        for u, v in topo.edges():
            var_u = qubit_to_var.get(u)
            var_v = qubit_to_var.get(v)
            if var_u is None or var_v is None or var_u == var_v:
                continue
            key = (var_u, var_v) if repr(var_u) <= repr(var_v) else (var_v, var_u)
            pairs.add(key)
        return sorted(pairs, key=repr)
