"""A general-purpose greedy chain-growth embedder with rip-up and retry.

The TRIAD and clustered patterns are *structured* embeddings tailored to
fully connected (sub)problems.  For arbitrary sparse interaction graphs,
this module provides a heuristic in the spirit of the classical
Cai-Macready-Roy algorithm:

* variables are embedded one at a time in breadth-first order over the
  logical graph (so interacting variables land physically close),
* each new variable grows a chain as a Steiner tree of shortest paths
  through *free* qubits connecting a root qubit to the chains of its
  already embedded neighbours,
* when an embedded neighbour chain has become unreachable (all its
  adjacent qubits were consumed by other chains), the blocking chains are
  *ripped up* — their variables return to the placement queue — and the
  current variable is retried, up to a bounded number of rip-ups,
* several fully randomised restarts are attempted before giving up.

This embedder is not used on the paper's evaluation workloads (those use
the structured patterns above); it is the fallback path for ad-hoc
problems and for the ablation benchmarks.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Hashable, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.chimera.topology import ChimeraGraph
from repro.embedding.base import Embedding
from repro.exceptions import EmbeddingError, EmbeddingNotFoundError
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["GreedyEmbedder"]

Variable = Hashable


class GreedyEmbedder:
    """Greedy shortest-path chain-growth embedding for sparse problems.

    Parameters
    ----------
    topology:
        Target hardware graph.
    max_attempts:
        Number of randomised restarts before giving up.
    ripup_factor:
        Rip-up budget per attempt, as a multiple of the number of
        variables (a bounded form of negotiated congestion).
    """

    def __init__(
        self,
        topology: ChimeraGraph,
        max_attempts: int = 5,
        ripup_factor: float = 3.0,
    ) -> None:
        if max_attempts <= 0:
            raise EmbeddingError("max_attempts must be positive")
        if ripup_factor < 0:
            raise EmbeddingError("ripup_factor must be non-negative")
        self.topology = topology
        self.max_attempts = max_attempts
        self.ripup_factor = ripup_factor

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def embed(
        self,
        interactions: Iterable[Tuple[Variable, Variable]],
        variables: Sequence[Variable] | None = None,
        seed: SeedLike = None,
    ) -> Embedding:
        """Embed the interaction graph given by ``interactions``.

        Parameters
        ----------
        interactions:
            Logical variable pairs that must end up with a physical coupler
            between their chains.
        variables:
            Optional full variable list (to include isolated variables that
            appear in no interaction).
        seed:
            Seed for the randomised restarts.

        Raises
        ------
        EmbeddingNotFoundError
            If all attempts fail to place every variable.
        """
        adjacency = self._logical_adjacency(interactions, variables)
        if not adjacency:
            raise EmbeddingError("nothing to embed: no variables given")
        rng = ensure_rng(seed)
        checked_interactions = [
            (u, v) for u, partners in adjacency.items() for v in partners if repr(u) < repr(v)
        ]
        last_error: EmbeddingNotFoundError | None = None
        for _ in range(self.max_attempts):
            try:
                chains = self._attempt(adjacency, rng)
            except EmbeddingNotFoundError as exc:
                last_error = exc
                continue
            embedding = Embedding(chains)
            embedding.validate(self.topology, checked_interactions)
            return embedding
        raise last_error or EmbeddingNotFoundError("greedy embedding failed")

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _logical_adjacency(
        interactions: Iterable[Tuple[Variable, Variable]],
        variables: Sequence[Variable] | None,
    ) -> Dict[Variable, Set[Variable]]:
        adjacency: Dict[Variable, Set[Variable]] = {}
        for var in variables or ():
            adjacency.setdefault(var, set())
        for u, v in interactions:
            if u == v:
                raise EmbeddingError(f"self-interaction on variable {u!r} is not allowed")
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        return adjacency

    @staticmethod
    def _placement_order(
        adjacency: Mapping[Variable, Set[Variable]], rng
    ) -> List[Variable]:
        """Breadth-first order over the logical graph, seeded at high degree.

        Placing variables in graph order keeps the chains of interacting
        variables physically close, which matters far more for success
        than processing high-degree variables first across the whole graph.
        Ties are broken randomly so restarts explore different layouts.
        """
        by_degree = sorted(adjacency, key=lambda var: (-len(adjacency[var]), repr(var)))
        remaining = dict.fromkeys(by_degree)
        order: List[Variable] = []
        while remaining:
            seed = next(iter(remaining))
            queue: Deque[Variable] = deque([seed])
            del remaining[seed]
            while queue:
                current = queue.popleft()
                order.append(current)
                neighbors = [n for n in adjacency[current] if n in remaining]
                rng.shuffle(neighbors)
                for neighbor in neighbors:
                    del remaining[neighbor]
                    queue.append(neighbor)
        return order

    def _attempt(
        self, adjacency: Mapping[Variable, Set[Variable]], rng
    ) -> Dict[Variable, Tuple[int, ...]]:
        topo = self.topology
        queue: Deque[Variable] = deque(self._placement_order(adjacency, rng))
        free: Set[int] = set(topo.qubits)
        chains: Dict[Variable, List[int]] = {}
        ripup_budget = int(self.ripup_factor * len(adjacency)) + 1

        while queue:
            var = queue.popleft()
            embedded_neighbors = [n for n in adjacency[var] if n in chains]
            if not embedded_neighbors:
                chain = self._place_isolated(free, rng)
            else:
                chain = self._grow_chain(embedded_neighbors, chains, free)
            if chain is not None:
                chains[var] = chain
                free.difference_update(chain)
                continue

            # Failure: find the neighbour chains that are walled in and rip
            # up the chains blocking them, then retry this variable.
            blockers = self._blocking_chains(var, embedded_neighbors, chains, free)
            if not blockers or ripup_budget <= 0:
                raise EmbeddingNotFoundError(
                    f"could not grow a chain for variable {var!r} "
                    f"({len(chains)}/{len(adjacency)} variables placed)"
                )
            ripup_budget -= len(blockers)
            for blocked_var in blockers:
                free.update(chains.pop(blocked_var))
                queue.append(blocked_var)
            queue.appendleft(var)
        return {var: tuple(chain) for var, chain in chains.items()}

    def _blocking_chains(
        self,
        var: Variable,
        embedded_neighbors: Sequence[Variable],
        chains: Mapping[Variable, List[int]],
        free: Set[int],
    ) -> List[Variable]:
        """Chains around the hardest-to-reach neighbour chains.

        Two failure modes are handled: a neighbour chain with no free
        adjacent qubit at all (walled in), and a neighbour chain whose
        free surroundings form a small pocket disconnected from the rest
        of the free graph.  In both cases the chains physically adjacent
        to that neighbour are ripped up.
        """
        topo = self.topology
        owners: Dict[int, Variable] = {
            qubit: owner for owner, chain in chains.items() for qubit in chain
        }

        def adjacent_owners(neighbor: Variable) -> List[Variable]:
            found: List[Variable] = []
            for qubit in chains[neighbor]:
                for adjacent in topo.neighbors(qubit):
                    owner = owners.get(adjacent)
                    if owner is not None and owner not in (neighbor, var) and owner not in found:
                        found.append(owner)
            return found

        reach_sizes = {
            neighbor: len(self._dijkstra_from_chain(chains[neighbor], free))
            for neighbor in embedded_neighbors
        }
        walled = [neighbor for neighbor, size in reach_sizes.items() if size == 0]
        if walled:
            blockers: List[Variable] = []
            for neighbor in walled:
                for owner in adjacent_owners(neighbor):
                    if owner not in blockers:
                        blockers.append(owner)
            return blockers
        # No chain is fully walled in, yet no common root exists: free the
        # surroundings of the neighbour with the smallest reachable region.
        most_confined = min(reach_sizes, key=lambda n: reach_sizes[n])
        return adjacent_owners(most_confined)

    def _place_isolated(self, free: Set[int], rng) -> List[int] | None:
        if not free:
            return None
        candidates = sorted(free)
        # Prefer high-degree free qubits so later chains keep room to grow.
        candidates.sort(key=lambda q: -len(self.topology.neighbors(q) & free))
        top = candidates[: max(1, len(candidates) // 8)]
        return [top[int(rng.integers(0, len(top)))]]

    def _grow_chain(
        self,
        embedded_neighbors: Sequence[Variable],
        chains: Mapping[Variable, List[int]],
        free: Set[int],
    ) -> List[int] | None:
        """Connect a new chain to every embedded neighbour via free qubits.

        A multi-source Dijkstra is run from each neighbour chain over free
        qubits; the free qubit minimising the summed distances becomes the
        chain root and the union of the shortest paths becomes the chain.
        """
        used: Set[int] = {qubit for chain in chains.values() for qubit in chain}
        distance_maps: List[Dict[int, Tuple[int, int]]] = []
        for neighbor in embedded_neighbors:
            distances = self._dijkstra_from_chain(chains[neighbor], free, used)
            if not distances:
                return None
            distance_maps.append(distances)

        best_root: int | None = None
        best_key = None
        for q in free:
            total = 0
            worst = 0
            reachable = True
            for distances in distance_maps:
                if q not in distances:
                    reachable = False
                    break
                total += distances[q][0]
                worst = max(worst, distances[q][0])
            if reachable and (best_key is None or (worst, total) < best_key):
                best_key = (worst, total)
                best_root = q
        if best_root is None:
            return None

        chain: List[int] = [best_root]
        chain_set = {best_root}
        for distances in distance_maps:
            current = best_root
            while True:
                _dist, parent = distances[current]
                if parent == current:
                    break  # reached a qubit adjacent to the neighbour chain
                if parent not in chain_set:
                    chain.append(parent)
                    chain_set.add(parent)
                current = parent
        return chain

    def _dijkstra_from_chain(
        self,
        chain: Sequence[int],
        free: Set[int],
        used: Set[int] | None = None,
    ) -> Dict[int, Tuple[int, int]]:
        """Congestion-aware shortest paths from ``chain`` through free qubits.

        Returns a map ``qubit -> (cost, parent)`` where following the
        parents leads back towards the source chain; qubits directly
        adjacent to the chain are their own parent.  Entering a qubit
        costs one plus a congestion penalty proportional to how many of
        its neighbours are already used by other chains, which steers new
        chains away from crowded regions and keeps corridors open.
        """
        topo = self.topology
        used = used or set()

        def entry_cost(node: int) -> int:
            congestion = sum(1 for adjacent in topo.neighbors(node) if adjacent in used)
            return 1 + congestion

        distances: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[int, int, int]] = []
        for q in chain:
            for neighbor in topo.neighbors(q):
                if neighbor in free:
                    heapq.heappush(heap, (entry_cost(neighbor), neighbor, neighbor))
        while heap:
            dist, node, parent = heapq.heappop(heap)
            if node in distances:
                continue
            distances[node] = (dist, parent)
            for neighbor in topo.neighbors(node):
                if neighbor in free and neighbor not in distances:
                    heapq.heappush(heap, (dist + entry_cost(neighbor), neighbor, node))
        return distances
