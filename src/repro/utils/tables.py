"""Plain-text table rendering for benchmark and CLI output.

The benchmark harness prints the same rows/series the paper reports
(Table 1, Figures 4-7).  Rendering is kept dependency-free: fixed-width
columns, a header separator, and right-aligned numbers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def _render_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; each row must have ``len(headers)`` cells.
    float_fmt:
        ``format()`` spec applied to ``float`` cells.
    title:
        Optional title printed above the table.
    """
    header_cells = [str(h) for h in headers]
    body: list[list[str]] = []
    for row in rows:
        cells = [_render_cell(cell, float_fmt) for cell in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row {cells!r} has {len(cells)} cells, expected {len(header_cells)}"
            )
        body.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in body:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header_cells))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(cells) for cells in body)
    return "\n".join(lines)
