"""Small shared utilities: RNG handling, stopwatches, and text tables."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.stopwatch import Stopwatch, VirtualClock
from repro.utils.tables import format_table

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "Stopwatch",
    "VirtualClock",
    "format_table",
]
