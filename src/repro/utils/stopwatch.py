"""Wall-clock and virtual clocks used by the anytime-solver framework.

The experiment harness measures *how solution quality evolves over
optimization time* (paper Section 7.2).  Classical solvers are measured
against the host wall clock (:class:`Stopwatch`), while the simulated
annealing device reports *device time* from the paper's timing model;
both are expressed in milliseconds so trajectories are comparable.

:class:`VirtualClock` exists so unit tests can drive time deterministically.
"""

from __future__ import annotations

import time

__all__ = ["Stopwatch", "VirtualClock"]


class Stopwatch:
    """A restartable monotonic stopwatch reporting elapsed milliseconds."""

    def __init__(self) -> None:
        self._start: float | None = None

    def start(self) -> "Stopwatch":
        """Start (or restart) the stopwatch and return ``self``."""
        self._start = time.perf_counter()
        return self

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has been called."""
        return self._start is not None

    def elapsed_ms(self) -> float:
        """Milliseconds elapsed since :meth:`start`.

        Raises
        ------
        RuntimeError
            If the stopwatch was never started.
        """
        if self._start is None:
            raise RuntimeError("Stopwatch.elapsed_ms() called before start()")
        return (time.perf_counter() - self._start) * 1000.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        return None


class VirtualClock:
    """A manually advanced clock with the same ``elapsed_ms`` interface.

    Used in tests and in the device simulator, where elapsed time is a
    *model output* (number of reads times per-read duration) rather than
    host wall-clock time.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError(f"start_ms must be non-negative, got {start_ms}")
        self._now_ms = float(start_ms)

    def advance(self, delta_ms: float) -> None:
        """Move the clock forward by ``delta_ms`` milliseconds."""
        if delta_ms < 0:
            raise ValueError(f"cannot advance by a negative duration ({delta_ms} ms)")
        self._now_ms += delta_ms

    def elapsed_ms(self) -> float:
        """Current clock reading in milliseconds."""
        return self._now_ms

    def start(self) -> "VirtualClock":
        """No-op for interface compatibility with :class:`Stopwatch`."""
        return self
