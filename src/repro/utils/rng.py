"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator` so experiments are reproducible end to
end.  These helpers normalise the accepted inputs in one place.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["SeedLike", "ensure_rng", "spawn_rng", "derive_seed"]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a random generator from {type(seed).__name__}: {seed!r}")


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    The children are produced by drawing fresh 64-bit seeds from the
    parent stream, which keeps experiment scripts deterministic while
    letting each solver/instance own an independent stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(base_seed: Optional[int], index: int) -> int:
    """Deterministic child seed for position ``index`` under ``base_seed``.

    Used by the service layer to give every batch job and every portfolio
    member its own reproducible stream: the pair is fed through a
    :class:`numpy.random.SeedSequence` so nearby indices yield unrelated
    seeds.  ``base_seed=None`` still derives per-index seeds (from the
    index alone), keeping unseeded runs replayable within one batch.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    # SeedSequence only takes non-negative entropy; fold negative base
    # seeds into uint64 space so e.g. --seed -1 works deterministically.
    base = None if base_seed is None else int(base_seed) & 0xFFFFFFFFFFFFFFFF
    entropy = [index] if base is None else [base, index]
    sequence = np.random.SeedSequence(entropy)
    return int(sequence.generate_state(1, dtype=np.uint64)[0])
