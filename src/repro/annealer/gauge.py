"""Gauge (spin-reversal) transformations.

On the physical annealer, small analog biases favour one qubit state
over the other.  A gauge transformation [Boixo et al.] randomly chooses,
for each qubit, which physical state represents a logical one; sampling
the same problem under several gauges averages those biases out.  The
paper runs 10 gauges of 100 reads each.

In Ising form a gauge is a vector ``g`` of +/-1 factors: the transformed
problem has ``h'_i = g_i h_i`` and ``J'_ij = g_i g_j J_ij``; a sample
``s'`` of the transformed problem corresponds to the sample
``s_i = g_i s'_i`` of the original problem, with identical energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Sequence

from repro.exceptions import DeviceError
from repro.qubo.ising import IsingModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["GaugeTransform", "random_gauge"]

Variable = Hashable


@dataclass(frozen=True)
class GaugeTransform:
    """A per-variable +/-1 gauge factor."""

    factors: Dict[Variable, int]

    def __post_init__(self) -> None:
        for var, factor in self.factors.items():
            if factor not in (-1, 1):
                raise DeviceError(f"gauge factor for {var!r} must be -1 or +1, got {factor}")

    def factor(self, var: Variable) -> int:
        """Gauge factor of one variable (identity for unknown variables)."""
        return self.factors.get(var, 1)

    def apply_to_ising(self, ising: IsingModel) -> IsingModel:
        """The gauge-transformed Ising model."""
        h = {var: self.factor(var) * value for var, value in ising.h.items()}
        j = {
            (u, v): self.factor(u) * self.factor(v) * value
            for (u, v), value in ising.j.items()
        }
        return IsingModel(h=h, j=j, offset=ising.offset)

    def apply_to_spins(self, spins: Mapping[Variable, int]) -> Dict[Variable, int]:
        """Map spins between the original and the gauged frame (involution)."""
        return {var: self.factor(var) * int(value) for var, value in spins.items()}

    def apply_to_binary(self, sample: Mapping[Variable, int]) -> Dict[Variable, int]:
        """Map a 0/1 sample between the original and the gauged frame."""
        result = {}
        for var, value in sample.items():
            if value not in (0, 1):
                raise DeviceError(f"binary value for {var!r} must be 0 or 1, got {value}")
            result[var] = value if self.factor(var) == 1 else 1 - value
        return result

    @classmethod
    def identity(cls, variables: Sequence[Variable]) -> "GaugeTransform":
        """The identity gauge over the given variables."""
        return cls(factors={var: 1 for var in variables})


def random_gauge(variables: Sequence[Variable], seed: SeedLike = None) -> GaugeTransform:
    """Draw an independent uniform +/-1 gauge factor for every variable."""
    rng = ensure_rng(seed)
    signs = rng.integers(0, 2, size=len(variables)) * 2 - 1
    return GaugeTransform(factors={var: int(sign) for var, sign in zip(variables, signs)})
