"""Block-diagonal batched annealing of many QUBOs in one fused state tensor.

numpy dispatch overhead dominates the sparse sweep on small-to-medium
problems: every colour-class update is a handful of array operations
whose fixed cost is paid per problem, per sweep, per class.  The device
simulator runs *many* structurally identical problems back to back —
one gauge-transformed QUBO per read batch, one compiled problem per
portfolio re-race — so :class:`BatchedAnnealer` packs them into a
single block-diagonal problem:

* variables of block ``b`` are shifted by the block's offset and the
  per-class gather plans are concatenated (colour class ``k`` of every
  block merges into fused class ``k`` — blocks never interact, so the
  union of independent sets stays independent),
* the whole batch anneals in one fused ``(num_reads, total_n)`` state
  tensor, amortising the dispatch cost across blocks,
* every block keeps its own temperature ladder: the Metropolis factor
  uses a per-variable beta vector, so blocks with different weight
  scales are cooled exactly as they would be alone.

With a single block the fused sweep degenerates to the plain sparse
sweep and (given the same seed) reproduces
:class:`~repro.annealer.simulated_annealing.SimulatedAnnealingSampler`
bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.annealer.compile import (
    CompileCache,
    CompiledQUBO,
    compile_qubo,
    csr_field_kernel,
    default_compile_cache,
    segment_sum,
)
from repro.annealer.schedule import AnnealingSchedule, default_schedule_for
from repro.annealer.simulated_annealing import _metropolis_flips
from repro.exceptions import DeviceError
from repro.qubo.model import QUBOModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["BatchedAnnealer", "BlockResult"]

Variable = Hashable


@dataclass
class BlockResult:
    """Annealing outcome of one block of a batched run.

    Attributes
    ----------
    assignments:
        One assignment dictionary per read, in read order.
    energies:
        Energy of each read under the block's own QUBO.
    """

    assignments: List[Dict[Variable, int]]
    energies: List[float]


@dataclass(frozen=True)
class _FusedClass:
    """One fused colour class: concatenated gather plans plus block ids."""

    members: np.ndarray
    linear: np.ndarray
    neighbor_cols: np.ndarray
    neighbor_data: np.ndarray
    reduce_starts: np.ndarray
    empty_members: Optional[np.ndarray]
    member_blocks: np.ndarray
    #: Bound CSR field kernel (``dense -> coupling @ dense``), or ``None``
    #: to fall back to the gather/segment path.
    matrix: Optional[object] = None


class BatchedAnnealer:
    """Anneal many QUBOs as one block-diagonal fused problem.

    Parameters
    ----------
    num_sweeps:
        Sweeps per read, shared by every block.
    schedule:
        Optional explicit schedule used for *all* blocks; when omitted
        each block gets the default geometric schedule scaled to its own
        weight magnitude.
    compile_cache:
        Structure cache for block compilation (the process-wide cache by
        default) — gauge batches share one sparsity pattern, so all but
        the first block compile as cache hits.
    """

    def __init__(
        self,
        num_sweeps: int = 100,
        schedule: AnnealingSchedule | None = None,
        compile_cache: CompileCache | None = None,
    ) -> None:
        if num_sweeps <= 0:
            raise DeviceError(f"num_sweeps must be positive, got {num_sweeps}")
        self.num_sweeps = num_sweeps
        self.schedule = schedule
        self.compile_cache = compile_cache if compile_cache is not None else default_compile_cache()

    def sample_block_states(
        self,
        qubos: Sequence[QUBOModel],
        num_reads: int = 1,
        seed: SeedLike = None,
    ) -> Tuple[List[np.ndarray], List[CompiledQUBO]]:
        """Anneal the fused batch and return raw per-block state matrices.

        Returns ``(block_states, compiled)`` where ``block_states[b]``
        is the ``(num_reads, n_b)`` 0/1 matrix of block ``b`` and
        ``compiled[b]`` its compiled model.  This is the array form the
        device simulator consumes directly — no energies are computed
        and no per-read dictionaries are built (see
        :meth:`sample_blocks` for that convenience).
        """
        if not qubos:
            raise DeviceError("sample_blocks needs at least one QUBO")
        if num_reads <= 0:
            raise DeviceError(f"num_reads must be positive, got {num_reads}")
        rng = ensure_rng(seed)
        compiled = [compile_qubo(qubo, cache=self.compile_cache) for qubo in qubos]
        for block in compiled:
            if not block.num_variables:
                raise DeviceError("cannot sample an empty QUBO")

        sizes = np.array([block.num_variables for block in compiled], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        total_n = int(offsets[-1])
        betas = self._beta_table(compiled)

        states_t = np.ascontiguousarray(
            rng.integers(0, 2, size=(num_reads, total_n)).astype(float).T
        )
        fused_classes = self._fuse_classes(compiled, offsets)
        beta_columns = [
            fused.member_blocks[:, None] for fused in fused_classes
        ]
        metropolis_buffers = [
            tuple(np.empty((fused.members.size, num_reads)) for _ in range(2))
            + tuple(np.empty((fused.members.size, num_reads), dtype=bool) for _ in range(2))
            for fused in fused_classes
        ]

        for sweep in range(self.num_sweeps):
            beta_row = betas[sweep]
            for fused, blocks_column, buffers in zip(
                fused_classes, beta_columns, metropolis_buffers
            ):
                local_field = self._local_field(states_t, fused)
                current = states_t[fused.members]
                delta = (1.0 - 2.0 * current) * local_field
                flips = _metropolis_flips(
                    delta, beta_row[blocks_column], rng, buffers=buffers
                )
                states_t[fused.members] = np.where(flips, 1.0 - current, current)

        block_states = [
            np.ascontiguousarray(states_t[int(offsets[b]) : int(offsets[b + 1])].T)
            for b in range(len(compiled))
        ]
        return block_states, compiled

    def sample_blocks(
        self,
        qubos: Sequence[QUBOModel],
        num_reads: int = 1,
        seed: SeedLike = None,
    ) -> List[BlockResult]:
        """Anneal every QUBO in ``qubos`` with ``num_reads`` fused reads.

        Returns one :class:`BlockResult` per input, in input order —
        per-read assignment dictionaries plus energies under each
        block's own QUBO.  All blocks share the read count and the
        random stream of ``seed``; results are deterministic for a fixed
        batch composition.
        """
        block_states, compiled = self.sample_block_states(
            qubos, num_reads=num_reads, seed=seed
        )
        results: List[BlockResult] = []
        for states, block in zip(block_states, compiled):
            energies = block.energies(states)
            variables = block.variables
            assignments = [
                {var: int(states[r, i]) for i, var in enumerate(variables)}
                for r in range(num_reads)
            ]
            results.append(
                BlockResult(assignments=assignments, energies=[float(e) for e in energies])
            )
        return results

    # ------------------------------------------------------------------ #
    # Fused problem construction
    # ------------------------------------------------------------------ #
    def _beta_table(self, compiled: Sequence[CompiledQUBO]) -> np.ndarray:
        """Per-sweep, per-block inverse temperatures, shape ``(sweeps, B)``."""
        columns = []
        for block in compiled:
            schedule = self.schedule or default_schedule_for(
                block.max_abs_weight, self.num_sweeps
            )
            if schedule.num_sweeps != self.num_sweeps:
                raise DeviceError(
                    f"schedule has {schedule.num_sweeps} sweeps, annealer expects "
                    f"{self.num_sweeps}"
                )
            columns.append(schedule.as_array())
        return np.stack(columns, axis=1)

    @staticmethod
    def _fuse_classes(
        compiled: Sequence[CompiledQUBO], offsets: np.ndarray
    ) -> List[_FusedClass]:
        """Merge colour class ``k`` of every block into one fused class."""
        try:
            from scipy.sparse import csr_matrix
        except ImportError:  # pragma: no cover - scipy is a standard dependency
            csr_matrix = None
        total_n = int(offsets[-1])
        num_classes = max(block.num_classes for block in compiled)
        fused: List[_FusedClass] = []
        for k in range(num_classes):
            members_parts: List[np.ndarray] = []
            linear_parts: List[np.ndarray] = []
            cols_parts: List[np.ndarray] = []
            data_parts: List[np.ndarray] = []
            lengths_parts: List[np.ndarray] = []
            block_parts: List[np.ndarray] = []
            for block_id, block in enumerate(compiled):
                if k >= block.num_classes:
                    continue
                plan = block.structure.classes[k]
                offset = int(offsets[block_id])
                members_parts.append(plan.members + offset)
                linear_parts.append(block.linear[plan.members])
                cols_parts.append(plan.neighbor_cols + offset)
                data_parts.append(block.class_neighbor_data[k])
                lengths_parts.append(plan.segment_lengths)
                block_parts.append(np.full(plan.members.size, block_id, dtype=np.int64))
            members = np.concatenate(members_parts)
            neighbor_cols = np.concatenate(cols_parts)
            neighbor_data = np.concatenate(data_parts)
            lengths = np.concatenate(lengths_parts)
            raw_starts = np.cumsum(lengths) - lengths
            total_nnz = int(neighbor_cols.size)
            reduce_starts = raw_starts[raw_starts < total_nnz].astype(np.int64)
            empty = lengths == 0
            matrix = None
            if csr_matrix is not None and total_nnz:
                indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
                matrix = csr_field_kernel(
                    csr_matrix(
                        (neighbor_data, neighbor_cols, indptr),
                        shape=(members.size, total_n),
                    )
                )
            fused.append(
                _FusedClass(
                    members=members,
                    linear=np.concatenate(linear_parts),
                    neighbor_cols=neighbor_cols,
                    neighbor_data=neighbor_data,
                    reduce_starts=reduce_starts,
                    empty_members=empty if bool(empty.any()) else None,
                    member_blocks=np.concatenate(block_parts),
                    matrix=matrix,
                )
            )
        return fused

    # ------------------------------------------------------------------ #
    # Fused sweep pieces
    # ------------------------------------------------------------------ #
    @staticmethod
    def _local_field(states_t: np.ndarray, fused: _FusedClass) -> np.ndarray:
        """Local field of a fused class on the ``(total_n, reads)`` layout."""
        base = fused.linear[:, None]
        if fused.neighbor_cols.size == 0:
            return np.broadcast_to(base, (base.shape[0], states_t.shape[1])).copy()
        if fused.matrix is not None:
            field = fused.matrix(states_t)
            field += base
            return field
        product = states_t[fused.neighbor_cols] * fused.neighbor_data[:, None]
        contribution = segment_sum(
            product.T, fused.reduce_starts, fused.members.size, fused.empty_members
        )
        return base + contribution.T

