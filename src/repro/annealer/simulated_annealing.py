"""Vectorised simulated-annealing sampler over QUBO models.

This sampler is the classical stand-in for the quantum annealing
dynamics of the D-Wave hardware.  It runs many independent reads in
parallel: the state of all reads is a ``(num_reads, num_variables)``
0/1 matrix, and per sweep the variables are updated colour class by
colour class (a proper colouring of the interaction graph guarantees
that simultaneously updated variables do not interact, so the update is
equivalent to sequential single-flip Metropolis within the class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from repro.annealer.schedule import AnnealingSchedule, default_schedule_for
from repro.exceptions import DeviceError
from repro.qubo.model import QUBOModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["SimulatedAnnealingSampler"]

Variable = Hashable


def _greedy_coloring(adjacency: List[List[int]]) -> List[List[int]]:
    """Partition variable indices into independent sets (colour classes)."""
    num_vars = len(adjacency)
    colors = [-1] * num_vars
    order = sorted(range(num_vars), key=lambda i: -len(adjacency[i]))
    for node in order:
        taken = {colors[neighbor] for neighbor in adjacency[node] if colors[neighbor] >= 0}
        color = 0
        while color in taken:
            color += 1
        colors[node] = color
    classes: Dict[int, List[int]] = {}
    for node, color in enumerate(colors):
        classes.setdefault(color, []).append(node)
    return [classes[color] for color in sorted(classes)]


@dataclass
class _CompiledQUBO:
    """Array form of a QUBO used by the vectorised sweeps."""

    variables: List[Variable]
    linear: np.ndarray
    coupling: np.ndarray  # symmetric dense matrix with zero diagonal
    offset: float
    color_classes: List[np.ndarray]
    max_abs_weight: float


class SimulatedAnnealingSampler:
    """Single-flip Metropolis annealer running many reads in parallel.

    Parameters
    ----------
    num_sweeps:
        Sweeps (full variable passes) per read.
    schedule:
        Optional explicit :class:`AnnealingSchedule`; when omitted a
        geometric schedule scaled to the problem's weights is used.
    """

    def __init__(
        self,
        num_sweeps: int = 100,
        schedule: AnnealingSchedule | None = None,
    ) -> None:
        if num_sweeps <= 0:
            raise DeviceError(f"num_sweeps must be positive, got {num_sweeps}")
        self.num_sweeps = num_sweeps
        self.schedule = schedule

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _compile(qubo: QUBOModel) -> _CompiledQUBO:
        variables = qubo.variables
        if not variables:
            raise DeviceError("cannot sample an empty QUBO")
        index = {var: i for i, var in enumerate(variables)}
        n = len(variables)
        linear = np.zeros(n)
        coupling = np.zeros((n, n))
        adjacency: List[List[int]] = [[] for _ in range(n)]
        for var, weight in qubo.linear.items():
            linear[index[var]] = weight
        for (u, v), weight in qubo.quadratic.items():
            i, j = index[u], index[v]
            coupling[i, j] += weight
            coupling[j, i] += weight
            adjacency[i].append(j)
            adjacency[j].append(i)
        color_classes = [np.asarray(cls, dtype=int) for cls in _greedy_coloring(adjacency)]
        max_abs = max(
            float(np.max(np.abs(linear))) if n else 0.0,
            float(np.max(np.abs(coupling))) if n else 0.0,
        )
        return _CompiledQUBO(
            variables=variables,
            linear=linear,
            coupling=coupling,
            offset=qubo.offset,
            color_classes=color_classes,
            max_abs_weight=max_abs,
        )

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(
        self,
        qubo: QUBOModel,
        num_reads: int = 1,
        seed: SeedLike = None,
        initial_states: np.ndarray | None = None,
    ) -> Tuple[List[Dict[Variable, int]], List[float]]:
        """Draw ``num_reads`` annealed samples from ``qubo``.

        Returns
        -------
        (assignments, energies)
            One assignment dictionary and its energy per read, in read order.
        """
        if num_reads <= 0:
            raise DeviceError(f"num_reads must be positive, got {num_reads}")
        rng = ensure_rng(seed)
        compiled = self._compile(qubo)
        n = len(compiled.variables)

        if initial_states is not None:
            states = np.array(initial_states, dtype=float)
            if states.shape != (num_reads, n):
                raise DeviceError(
                    f"initial_states must have shape ({num_reads}, {n}), got {states.shape}"
                )
        else:
            states = rng.integers(0, 2, size=(num_reads, n)).astype(float)

        schedule = self.schedule or default_schedule_for(
            compiled.max_abs_weight, self.num_sweeps
        )
        betas = schedule.as_array()

        for beta in betas:
            for color_class in compiled.color_classes:
                self._update_class(states, compiled, color_class, beta, rng)

        energies = self._energies(states, compiled)
        assignments = [
            {var: int(states[r, i]) for i, var in enumerate(compiled.variables)}
            for r in range(num_reads)
        ]
        return assignments, [float(e) for e in energies]

    @staticmethod
    def _update_class(
        states: np.ndarray,
        compiled: _CompiledQUBO,
        color_class: np.ndarray,
        beta: float,
        rng: np.random.Generator,
    ) -> None:
        """Metropolis update of one independent variable class for all reads."""
        # Energy change of flipping variable i in read r:
        #   delta = (1 - 2 x_ri) * (h_i + sum_j J_ij x_rj)
        local_field = compiled.linear[color_class] + states @ compiled.coupling[:, color_class]
        current = states[:, color_class]
        delta = (1.0 - 2.0 * current) * local_field
        accept_prob = np.where(delta <= 0.0, 1.0, np.exp(-beta * np.clip(delta, 0.0, 700.0)))
        flips = rng.random(size=current.shape) < accept_prob
        states[:, color_class] = np.where(flips, 1.0 - current, current)

    @staticmethod
    def _energies(states: np.ndarray, compiled: _CompiledQUBO) -> np.ndarray:
        linear_part = states @ compiled.linear
        quadratic_part = 0.5 * np.einsum("ri,ij,rj->r", states, compiled.coupling, states)
        return linear_part + quadratic_part + compiled.offset
