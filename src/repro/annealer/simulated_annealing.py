"""Vectorised simulated-annealing sampler over QUBO models.

This sampler is the classical stand-in for the quantum annealing
dynamics of the D-Wave hardware.  It runs many independent reads in
parallel: the state of all reads is a ``(num_reads, num_variables)``
0/1 matrix, and per sweep the variables are updated colour class by
colour class (a proper colouring of the interaction graph guarantees
that simultaneously updated variables do not interact, so the update is
equivalent to sequential single-flip Metropolis within the class).

Three backends share the Metropolis logic and the random stream:

* ``"sparse"`` (the default) computes each class's local field with the
  CSR gather plans of :mod:`repro.annealer.compile`, so a sweep costs
  ``O(num_reads * nnz)`` — on bounded-degree Chimera problems that is
  orders of magnitude below the dense cost,
* ``"dense"`` multiplies against the full coupling matrix exactly as
  the original implementation did; it is kept as the reference for the
  sparse-vs-dense equivalence tests and the benchmark baseline,
* ``"numba"`` (opt-in; requires the optional numba package, see
  :mod:`repro.annealer.numba_kernels`) fuses the field gather, the
  acceptance test and the state update of each class into one compiled
  loop, removing the per-ufunc dispatch cost entirely.

All backends draw the same random numbers in the same order, so equal
seeds produce equal samples (up to floating-point ties of measure zero).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.annealer.compile import (
    CompileCache,
    CompiledQUBO,
    compile_qubo,
    csr_field_kernel,
    default_compile_cache,
    greedy_coloring,
)
from repro.annealer.schedule import AnnealingSchedule, default_schedule_for
from repro.exceptions import DeviceError
from repro.qubo.model import QUBOModel
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["SimulatedAnnealingSampler"]

Variable = Hashable


def _greedy_coloring(adjacency: List[List[int]]) -> List[List[int]]:
    """Partition variable indices into independent sets (colour classes).

    Thin alias kept for backwards compatibility; the implementation
    lives in :func:`repro.annealer.compile.greedy_coloring`.
    """
    return greedy_coloring(adjacency)


def _metropolis_flips(
    delta: np.ndarray,
    beta: float | np.ndarray,
    rng: np.random.Generator,
    buffers: tuple | None = None,
) -> np.ndarray:
    """Metropolis acceptance mask for energy changes ``delta``.

    Flips with ``delta <= 0`` are always accepted; the Boltzmann factor
    ``exp(-beta * delta)`` is evaluated *only* on the positive branch
    (via the ufunc ``where`` mask) so large-weight QUBOs cannot overflow
    ``exp`` — the old implementation fed the masked-out branch through
    ``np.where``, which still evaluated both sides and spewed overflow
    warnings.  Masked-out lanes keep an acceptance probability of 1, and
    a uniform in ``[0, 1)`` is always below it, so a single comparison
    decides every lane.  The uniform draw covers the full class so every
    backend consumes the random stream identically.

    ``buffers`` is an optional ``(uniforms, probability, positive,
    flips)`` tuple of preallocated arrays matching ``delta``'s shape
    (two float, two bool): the hot sweep loops pass it so no memory is
    allocated per update.  ``delta`` is clobbered either way.
    """
    if buffers is None:
        uniforms = np.empty_like(delta)
        probability = np.empty_like(delta)
        positive = np.empty(delta.shape, dtype=bool)
        flips = np.empty(delta.shape, dtype=bool)
    else:
        uniforms, probability, positive, flips = buffers
    rng.random(out=uniforms)
    np.greater(delta, 0.0, out=positive)
    np.multiply(delta, -beta, out=delta)
    probability.fill(1.0)
    np.exp(delta, out=probability, where=positive)
    np.less(uniforms, probability, out=flips)
    return flips


class SimulatedAnnealingSampler:
    """Single-flip Metropolis annealer running many reads in parallel.

    Parameters
    ----------
    num_sweeps:
        Sweeps (full variable passes) per read.
    schedule:
        Optional explicit :class:`AnnealingSchedule`; when omitted a
        geometric schedule scaled to the problem's weights is used.
    backend:
        ``"sparse"`` (default) for the CSR gather path, ``"dense"`` for
        the reference dense-matrix path, ``"numba"`` for the optional
        compiled kernel (raises :class:`DeviceError` at construction
        when numba is not installed).
    compile_cache:
        Structure cache consulted when compiling QUBOs; defaults to the
        process-wide cache.  Pass ``CompileCache(maxsize=0)`` to disable.
    """

    BACKENDS = ("sparse", "dense", "numba")

    def __init__(
        self,
        num_sweeps: int = 100,
        schedule: AnnealingSchedule | None = None,
        backend: str = "sparse",
        compile_cache: CompileCache | None = None,
    ) -> None:
        if num_sweeps <= 0:
            raise DeviceError(f"num_sweeps must be positive, got {num_sweeps}")
        if backend not in self.BACKENDS:
            raise DeviceError(f"unknown backend {backend!r}; expected one of {self.BACKENDS}")
        if backend == "numba":
            from repro.annealer.numba_kernels import require_numba

            require_numba()
        self.num_sweeps = num_sweeps
        self.schedule = schedule
        self.backend = backend
        self.compile_cache = compile_cache if compile_cache is not None else default_compile_cache()

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(
        self,
        qubo: QUBOModel,
        num_reads: int = 1,
        seed: SeedLike = None,
        initial_states: np.ndarray | None = None,
    ) -> Tuple[List[Dict[Variable, int]], List[float]]:
        """Draw ``num_reads`` annealed samples from ``qubo``.

        Returns
        -------
        (assignments, energies)
            One assignment dictionary and its energy per read, in read order.
        """
        states, compiled = self.sample_states(
            qubo, num_reads=num_reads, seed=seed, initial_states=initial_states
        )
        energies = compiled.energies(states)
        variables = compiled.variables
        assignments = [
            {var: int(states[r, i]) for i, var in enumerate(variables)}
            for r in range(num_reads)
        ]
        return assignments, [float(e) for e in energies]

    def sample_states(
        self,
        qubo: QUBOModel,
        num_reads: int = 1,
        seed: SeedLike = None,
        initial_states: np.ndarray | None = None,
    ) -> Tuple[np.ndarray, CompiledQUBO]:
        """Anneal and return the raw ``(num_reads, n)`` state matrix.

        The array form skips the per-read dictionary construction of
        :meth:`sample`; batch consumers (vectorised chain read-out, the
        benchmarks) use it directly together with the compiled model.
        """
        if num_reads <= 0:
            raise DeviceError(f"num_reads must be positive, got {num_reads}")
        if not qubo.num_variables:
            raise DeviceError("cannot sample an empty QUBO")
        rng = ensure_rng(seed)
        compiled = compile_qubo(qubo, cache=self.compile_cache)
        n = compiled.num_variables

        if initial_states is not None:
            states = np.array(initial_states, dtype=float)
            if states.shape != (num_reads, n):
                raise DeviceError(
                    f"initial_states must have shape ({num_reads}, {n}), got {states.shape}"
                )
        else:
            states = rng.integers(0, 2, size=(num_reads, n)).astype(float)

        schedule = self.schedule or default_schedule_for(
            compiled.max_abs_weight, self.num_sweeps
        )
        betas = schedule.as_array()

        # The sweeps run on the transposed (n, num_reads) layout: a colour
        # class is then a contiguous row gather and the CSR matvec needs
        # no transposes.
        states_t = np.ascontiguousarray(states.T)
        if self.backend == "dense":
            self._anneal_dense(states_t, compiled, betas, rng)
        elif self.backend == "numba":
            self._anneal_numba(states_t, compiled, betas, rng)
        else:
            self._anneal_sparse(states_t, compiled, betas, rng)
        return np.ascontiguousarray(states_t.T), compiled

    # ------------------------------------------------------------------ #
    # Backends
    # ------------------------------------------------------------------ #
    @staticmethod
    def _run_sweeps(
        states_t: np.ndarray,
        compiled: CompiledQUBO,
        betas: np.ndarray,
        rng: np.random.Generator,
        field_fns,
    ) -> None:
        """Shared Metropolis sweep driver for both backends.

        ``field_fns[k](states_t)`` returns the local field of colour
        class ``k`` (linear term included) as a fresh ``(|class|, R)``
        array that the driver may overwrite.  Everything else runs on
        preallocated per-class buffers with in-place ufuncs — at
        Chimera sparsity the elementwise bookkeeping, not the field
        computation, would otherwise dominate the sweep.  The Boltzmann
        factor is evaluated only on the positive-delta lanes via the
        ufunc ``where`` mask (the masked lanes keep probability 1, which
        every uniform in ``[0, 1)`` is below), so large-weight QUBOs
        cannot overflow ``exp``.
        """
        classes = compiled.structure.classes
        num_reads = states_t.shape[1]
        buffers = [
            (
                np.empty((plan.members.size, num_reads)),  # current
                np.empty((plan.members.size, num_reads)),  # tilt
                tuple(np.empty((plan.members.size, num_reads)) for _ in range(2))
                + tuple(
                    np.empty((plan.members.size, num_reads), dtype=bool) for _ in range(2)
                ),  # _metropolis_flips scratch
            )
            for plan in classes
        ]
        for beta in betas:
            beta = float(beta)
            for plan, field_fn, (current, tilt, metropolis_buffers) in zip(
                classes, field_fns, buffers
            ):
                np.take(states_t, plan.members, axis=0, out=current)
                delta = field_fn(states_t)
                np.multiply(current, -2.0, out=tilt)
                tilt += 1.0  # tilt = 1 - 2x: the sign of each candidate flip
                delta *= tilt
                flips = _metropolis_flips(delta, beta, rng, buffers=metropolis_buffers)
                np.multiply(flips, tilt, out=delta)  # accepted flips as +-1 steps
                delta += current
                states_t[plan.members] = delta

    def _anneal_sparse(
        self,
        states_t: np.ndarray,
        compiled: CompiledQUBO,
        betas: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Sweep using the per-class CSR kernels (cost scales with nnz)."""

        def make_field_fn(class_index: int):
            plan = compiled.structure.classes[class_index]
            base = compiled.linear[plan.members][:, None]
            matrices = compiled.class_matrices
            if matrices is not None and plan.neighbor_cols.size:
                kernel = csr_field_kernel(matrices[class_index])

                def field(states_t: np.ndarray) -> np.ndarray:
                    out = kernel(states_t)
                    out += base
                    return out

                return field
            return lambda states_t: compiled.local_field_t(states_t, class_index)

        field_fns = [make_field_fn(k) for k in range(compiled.num_classes)]
        self._run_sweeps(states_t, compiled, betas, rng, field_fns)

    def _anneal_numba(
        self,
        states_t: np.ndarray,
        compiled: CompiledQUBO,
        betas: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Sweep via the fused compiled kernel (optional numba backend).

        The uniforms are drawn here, per class per sweep, with exactly
        the shape the numpy backends draw inside
        :func:`_metropolis_flips` — the kernel itself never touches the
        generator, so all backends consume one identical random stream.
        The CSR arrays are taken straight from the compiled gather plans
        (not from scipy), so the backend works wherever compilation
        does; the kernel accumulates each row's field in the same index
        order as the CSR matvec.
        """
        from repro.annealer.numba_kernels import metropolis_class_update

        classes = compiled.structure.classes
        num_reads = states_t.shape[1]
        per_class = []
        for k, plan in enumerate(classes):
            lengths = plan.segment_lengths
            per_class.append(
                (
                    np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64),
                    plan.neighbor_cols.astype(np.int64),
                    np.ascontiguousarray(compiled.class_neighbor_data[k], dtype=float),
                    np.ascontiguousarray(compiled.linear[plan.members], dtype=float),
                    plan.members.astype(np.int64),
                    np.empty((plan.members.size, num_reads)),
                )
            )
        for beta in betas:
            beta = float(beta)
            for indptr, indices, data, linear, members, uniforms in per_class:
                rng.random(out=uniforms)
                metropolis_class_update(
                    indptr, indices, data, linear, members, states_t, uniforms, beta
                )

    def _anneal_dense(
        self,
        states_t: np.ndarray,
        compiled: CompiledQUBO,
        betas: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Reference sweep against the dense coupling matrix (O(n^2))."""
        coupling = compiled.dense_coupling()

        def make_field_fn(class_index: int):
            plan = compiled.structure.classes[class_index]
            base = compiled.linear[plan.members][:, None]
            block = coupling[plan.members]

            def field(states_t: np.ndarray) -> np.ndarray:
                out = block @ states_t
                out += base
                return out

            return field

        field_fns = [make_field_fn(k) for k in range(compiled.num_classes)]
        self._run_sweeps(states_t, compiled, betas, rng, field_fns)
